//! # imre — Implicit Mutual Relations for Neural Relation Extraction
//!
//! A from-scratch Rust reproduction of Kuang, Cao, Zheng, He, Gao & Zhou,
//! *Improving Neural Relation Extraction with Implicit Mutual Relations*
//! (ICDE 2020, arXiv:1907.05333), including every substrate the paper's
//! system depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`tensor`] | dense f32 tensors, matmul, reductions (no BLAS) |
//! | [`nn`] | tape-based autograd, CNN/PCNN/GRU layers, SGD/Adam |
//! | [`corpus`] | synthetic distant-supervision corpora (NYT-sim, GDS-sim) and the unlabeled corpus standing in for Wikipedia |
//! | [`graph`] | entity proximity graph + LINE embeddings (the implicit mutual relations) |
//! | [`core`] | the paper's models: PCNN(+ATT), CNN+ATT, GRU+ATT, BGWA, CNN+RL, Mintz/MultiR/MIMLRE, PA-T / PA-MR / PA-TMR |
//! | [`dist`] | deterministic data-parallel training: replica sharding, fixed-order tree all-reduce, checkpoints, parallel multi-seed runner |
//! | [`eval`] | held-out PR/AUC/P@N metrics, slice analyses, the experiment pipeline |
//! | [`serve`] | batched multi-threaded inference serving: model registry, micro-batching engine, TCP front-end, latency metrics |
//! | [`stream`] | streaming corpus ingestion: incremental proximity graph, online LINE refinement, live bundle hot-swap publishing |
//!
//! ## Quickstart
//!
//! ```no_run
//! use imre::eval::{smoke_config, Pipeline};
//! use imre::core::{HyperParams, ModelSpec};
//!
//! let pipeline = Pipeline::build(&smoke_config(7), HyperParams::tiny());
//! let evaluation = pipeline.run_system(ModelSpec::pa_tmr(), 42);
//! println!("PA-TMR AUC = {:.4}", evaluation.auc);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench/`
//! for the harness that regenerates every table and figure of the paper.

pub use imre_corpus as corpus;
pub use imre_dist as dist;
pub use imre_eval as eval;
pub use imre_graph as graph;
pub use imre_nn as nn;
pub use imre_serve as serve;
pub use imre_stream as stream;
pub use imre_tensor as tensor;

/// The paper's models and training loops (re-export of `imre-core`; named
/// `core` here for discoverability — use the full path `imre::core`).
pub mod core {
    pub use imre_core::*;
}
