//! Integration tests for the baseline systems (Mintz, MultiR, MIMLRE,
//! CNN+RL) running against real generated corpora.

use imre::core::baselines::{CnnRl, Mimlre, Mintz, MultiR, RlConfig};
use imre::core::{entity_type_table, prepare_bags, BagContext, HyperParams};
use imre::corpus::Dataset;
use imre::eval::{evaluate_system, smoke_config};

struct Fixture {
    dataset: Dataset,
    hp: HyperParams,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            dataset: Dataset::generate(&smoke_config(21)),
            hp: HyperParams::tiny(),
        }
    }
}

#[test]
fn mintz_beats_random_on_heldout() {
    let f = Fixture::new();
    let train = prepare_bags(&f.dataset.train, &f.hp);
    let test = prepare_bags(&f.dataset.test, &f.hp);
    let types = entity_type_table(&f.dataset.world);
    let m_rel = f.dataset.num_relations();

    let mut mintz = Mintz::new(m_rel, 14);
    mintz.train(&train, &types, 5, 0.1, 1);
    let ev = evaluate_system(&test, m_rel, |b| mintz.predict(b, &types));

    // random scores for comparison
    let mut c = 0u32;
    let ev_rand = evaluate_system(&test, m_rel, |_| {
        (0..m_rel)
            .map(|r| {
                c = c.wrapping_mul(1103515245).wrapping_add(12345 + r as u32);
                (c % 1000) as f32 / 1000.0
            })
            .collect()
    });
    assert!(
        ev.auc > ev_rand.auc + 0.1,
        "Mintz {:.3} should beat random {:.3}",
        ev.auc,
        ev_rand.auc
    );
}

#[test]
fn multir_and_mimlre_produce_sane_heldout_metrics() {
    let f = Fixture::new();
    let train = prepare_bags(&f.dataset.train, &f.hp);
    let test = prepare_bags(&f.dataset.test, &f.hp);
    let types = entity_type_table(&f.dataset.world);
    let m_rel = f.dataset.num_relations();

    let mut multir = MultiR::new(m_rel, 14);
    multir.train(&train, &types, 5, 0.5, 2);
    let ev = evaluate_system(&test, m_rel, |b| multir.predict(b, &types));
    assert!(ev.auc > 0.1 && ev.auc <= 1.0, "MultiR auc {}", ev.auc);

    let mut mimlre = Mimlre::new(m_rel, 14);
    mimlre.train(&train, &types, 3, 0.1, 3);
    let ev = evaluate_system(&test, m_rel, |b| mimlre.predict(b, &types));
    assert!(ev.auc > 0.1 && ev.auc <= 1.0, "MIMLRE auc {}", ev.auc);
}

#[test]
fn cnn_rl_trains_end_to_end() {
    let f = Fixture::new();
    let train = prepare_bags(&f.dataset.train, &f.hp);
    let test = prepare_bags(&f.dataset.test, &f.hp);
    let types = entity_type_table(&f.dataset.world);
    let ctx = BagContext {
        entity_embedding: None,
        entity_types: &types,
    };
    let m_rel = f.dataset.num_relations();

    let mut rl = CnnRl::new(&f.hp, f.dataset.vocab.len(), m_rel, 5);
    rl.train(
        &train,
        &ctx,
        &RlConfig {
            pretrain_epochs: 3,
            joint_epochs: 2,
            batch_size: 8,
            ..Default::default()
        },
    );
    let ev = evaluate_system(&test, m_rel, |b| rl.predict(b, &ctx));
    assert!(ev.auc > 0.05 && ev.auc <= 1.0, "CNN+RL auc {}", ev.auc);
}
