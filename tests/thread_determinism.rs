//! End-to-end determinism contract for the thread-pool compute backend:
//! forward passes, gradients, and a full PCNN train step (including the SGD
//! update) must be **bit-identical** between a 1-thread and a 4-thread pool.
//! Everything here compares raw f32 buffers with exact `==` — no tolerance.
//!
//! This is what keeps `IMRE_THREADS` a pure throughput knob: training
//! curves, checkpoints, and served scores cannot depend on how many cores
//! the machine happens to have.

use imre_core::{BagContext, HyperParams, ModelSpec, ReModel};
use imre_corpus::Dataset;
use imre_eval::smoke_config;
use imre_nn::{Sgd, Tape};
use imre_tensor::pool::{with_pool, ThreadPool};
use imre_tensor::{Tensor, TensorRng};

/// Runs `f` under a 1-thread pool and again under a 4-thread pool.
fn on_1_and_4<T>(f: impl Fn() -> T) -> (T, T) {
    let p1 = ThreadPool::new(1);
    let p4 = ThreadPool::new(4);
    (with_pool(&p1, &f), with_pool(&p4, &f))
}

/// Conv1d (unfold + matmul) forward AND backward: input sized well past the
/// parallel grain so the 4-thread run splits both kernels across workers.
#[test]
fn conv_forward_and_gradients_bit_identical() {
    let mut rng = TensorRng::seed(11);
    let mut store = imre_nn::ParamStore::new();
    let conv = imre_nn::Conv1d::new(&mut store, "conv", 64, 128, 3, &mut rng);
    let x_data = Tensor::rand_uniform(&[96, 64], -1.0, 1.0, &mut rng);

    let run = || {
        let mut tape = Tape::new(&store);
        let x = tape.leaf(x_data.clone());
        let y = conv.forward(&mut tape, x);
        let pooled = tape.mean_rows(y); // [filters]
        let col = tape.reshape(pooled, &[128, 1]);
        let loss = tape.mean_rows(col); // scalar: mean over all filters
        let y_out = tape.value(y).data().to_vec();
        let mut grads = imre_nn::GradStore::zeros_like(&store);
        tape.backward_scaled(loss, 1.0, &mut grads);
        let g: Vec<Vec<f32>> = store
            .iter()
            .map(|(id, _, _)| grads.get(id).data().to_vec())
            .collect();
        (y_out, g)
    };
    let ((y1, g1), (y4, g4)) = on_1_and_4(run);
    assert_eq!(y1, y4, "conv forward must be bit-identical");
    assert_eq!(g1, g4, "conv gradients must be bit-identical");
}

/// One full PCNN+ATT train step on the smoke dataset (fixed seed): loss,
/// every gradient, and the post-SGD parameters agree bit-for-bit.
#[test]
fn full_pcnn_train_step_bit_identical() {
    let ds = Dataset::generate(&smoke_config(1));
    let hp = HyperParams::tiny();
    let bags = imre_core::prepare_bags(&ds.train, &hp);
    let types = imre_core::entity_type_table(&ds.world);
    let ctx = BagContext {
        entity_embedding: None,
        entity_types: &types,
    };
    let bag = bags
        .iter()
        .max_by_key(|b| b.sentences.len())
        .expect("smoke dataset has bags")
        .clone();

    let run = || {
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            imre_corpus::NUM_COARSE_TYPES,
            hp.entity_dim,
            7,
        );
        let mut rng = TensorRng::seed(3);
        let loss = model.bag_loss_and_backward(&bag, &ctx, 1.0, &mut rng);
        let grads: Vec<Vec<f32>> = model
            .store
            .iter()
            .map(|(id, _, _)| model.grads.get(id).data().to_vec())
            .collect();
        let sgd = Sgd::new(0.1).with_clip_norm(5.0);
        let ReModel {
            store: s, grads: g, ..
        } = &mut model;
        sgd.step(s, g);
        let params: Vec<Vec<f32>> = model
            .store
            .iter()
            .map(|(_, _, t)| t.data().to_vec())
            .collect();
        (loss, grads, params)
    };

    let ((l1, g1, p1), (l4, g4, p4)) = on_1_and_4(run);
    assert_eq!(l1.to_bits(), l4.to_bits(), "loss must be bit-identical");
    assert_eq!(g1, g4, "train-step gradients must be bit-identical");
    assert_eq!(p1, p4, "post-SGD parameters must be bit-identical");
}

/// Batched prediction on a 4-thread pool (parallel across bags, one tape per
/// bag) matches per-bag prediction on a 1-thread pool exactly — the serving
/// engine's batched == unbatched contract extended across thread counts.
#[test]
fn predict_batch_parallel_matches_sequential_per_bag() {
    let ds = Dataset::generate(&smoke_config(5));
    let hp = HyperParams::tiny();
    let bags = imre_core::prepare_bags(&ds.train, &hp);
    let types = imre_core::entity_type_table(&ds.world);
    let ctx = BagContext {
        entity_embedding: None,
        entity_types: &types,
    };
    let model = ReModel::new(
        ModelSpec::pcnn_att(),
        &hp,
        ds.vocab.len(),
        ds.num_relations(),
        imre_corpus::NUM_COARSE_TYPES,
        hp.entity_dim,
        7,
    );
    let batch: Vec<&imre_core::PreparedBag> = bags.iter().take(8).collect();
    assert!(batch.len() >= 2, "need a real batch");

    let p1 = ThreadPool::new(1);
    let p4 = ThreadPool::new(4);
    let sequential: Vec<Vec<f32>> = with_pool(&p1, || {
        batch.iter().map(|b| model.predict(b, &ctx)).collect()
    });
    let batched = with_pool(&p4, || model.predict_batch(&batch, &ctx));
    assert_eq!(sequential, batched);
}

/// Single-bag predict under both pool sizes — the serving front door.
#[test]
fn single_bag_predict_bit_identical() {
    let ds = Dataset::generate(&smoke_config(7));
    let hp = HyperParams::tiny();
    let bags = imre_core::prepare_bags(&ds.train, &hp);
    let types = imre_core::entity_type_table(&ds.world);
    let ctx = BagContext {
        entity_embedding: None,
        entity_types: &types,
    };
    let model = ReModel::new(
        ModelSpec::pcnn_att(),
        &hp,
        ds.vocab.len(),
        ds.num_relations(),
        imre_corpus::NUM_COARSE_TYPES,
        hp.entity_dim,
        7,
    );
    let (s1, s4) = on_1_and_4(|| model.predict(&bags[0], &ctx));
    assert_eq!(s1, s4);
}
