//! Cross-crate integration tests: the full pipeline (corpus → proximity
//! graph → LINE → model → held-out metrics) at smoke scale.

use imre::core::{HyperParams, ModelSpec, ReModel};
use imre::eval::{smoke_config, Pipeline};

fn smoke_pipeline(seed: u64) -> Pipeline {
    let mut hp = HyperParams::tiny();
    hp.epochs = 12; // the smoke corpus is tiny; shorter runs underfit
    Pipeline::build(&smoke_config(seed), hp)
}

#[test]
fn full_pipeline_trains_and_evaluates() {
    let p = smoke_pipeline(3);
    let ev = p.run_system(ModelSpec::pcnn_att(), 42);
    assert!(ev.auc > 0.0 && ev.auc <= 1.0);
    assert!(ev.f1 > 0.0 && ev.f1 <= 1.0);
    assert!(!ev.curve.is_empty());
}

#[test]
fn training_beats_untrained_model() {
    let p = smoke_pipeline(5);
    let untrained = ReModel::new(
        ModelSpec::pcnn_att(),
        &p.hp,
        p.dataset.vocab.len(),
        p.dataset.num_relations(),
        imre::corpus::NUM_COARSE_TYPES,
        p.embedding.dim(),
        9,
    );
    let before = p.evaluate_model(&untrained).auc;
    let after = p.run_system(ModelSpec::pcnn_att(), 9).auc;
    assert!(
        after > before + 0.02,
        "training must help: {before} → {after}"
    );
}

#[test]
fn every_paper_system_runs_end_to_end() {
    let p = smoke_pipeline(7);
    for spec in [
        ModelSpec::pcnn(),
        ModelSpec::pcnn_att(),
        ModelSpec::cnn_att(),
        ModelSpec::gru_att(),
        ModelSpec::bgwa(),
        ModelSpec::pa_t(),
        ModelSpec::pa_mr(),
        ModelSpec::pa_tmr(),
    ] {
        let ev = p.run_system(spec, 11);
        assert!(
            ev.auc.is_finite() && ev.auc > 0.0,
            "{} produced degenerate AUC {}",
            spec.name(),
            ev.auc
        );
    }
}

#[test]
fn pipeline_is_deterministic_under_seeds() {
    let a = smoke_pipeline(13).run_system(ModelSpec::pcnn(), 21);
    let b = smoke_pipeline(13).run_system(ModelSpec::pcnn(), 21);
    assert_eq!(a.auc, b.auc);
    assert_eq!(a.f1, b.f1);
}

#[test]
fn entity_embedding_supports_mr_queries() {
    let p = smoke_pipeline(17);
    let f = p.dataset.world.facts[0];
    let mr = p.embedding.mutual_relation(f.head.0, f.tail.0);
    assert_eq!(mr.len(), p.hp.entity_dim);
    assert!(mr.data().iter().all(|x| x.is_finite()));
}
