//! Integration tests exercising substrate crates *together* in ways unit
//! tests cannot: corpus → graph, graph → core, corpus → nn.

use imre::corpus::{generate_unlabeled, Dataset, UnlabeledConfig};
use imre::eval::smoke_config;
use imre::graph::{nearest, train_line, LineConfig, ProximityGraph};
use imre::nn::{GradStore, ParamStore, Sgd, Tape};
use imre::tensor::{Tensor, TensorRng};

#[test]
fn proximity_graph_from_generated_unlabeled_corpus() {
    let ds = Dataset::generate(&smoke_config(31));
    let co = generate_unlabeled(&ds.world, &UnlabeledConfig::default());
    let graph =
        ProximityGraph::from_counts(co.iter().map(|(&p, &c)| (p, c)), ds.world.num_entities(), 2);
    assert!(
        graph.n_edges() > ds.world.facts.len() / 2,
        "graph too sparse: {} edges",
        graph.n_edges()
    );
    // weights respect the paper's normalisation
    for &(_, _, w) in graph.edges() {
        assert!(w > 0.0 && w <= 1.0);
    }
}

#[test]
fn line_embeddings_respect_world_clusters() {
    let ds = Dataset::generate(&smoke_config(33));
    let co = generate_unlabeled(&ds.world, &UnlabeledConfig::default());
    let graph =
        ProximityGraph::from_counts(co.iter().map(|(&p, &c)| (p, c)), ds.world.num_entities(), 2);
    let emb = train_line(
        &graph,
        &LineConfig {
            dim: 32,
            samples_per_epoch: 60_000,
            epochs: 2,
            ..Default::default()
        },
    );

    // For entities with edges, nearest neighbours should over-represent the
    // query's own cluster relative to chance.
    let mut same_cluster_hits = 0usize;
    let mut total = 0usize;
    for cluster in ds.world.clusters.iter().take(6) {
        if cluster.members.len() < 3 {
            continue;
        }
        let q = cluster.members[0].0;
        if graph.out_degree(q) == 0 {
            continue;
        }
        for (v, _) in nearest(&emb, q, 5) {
            total += 1;
            if ds.world.entities[v].cluster == ds.world.entities[q].cluster {
                same_cluster_hits += 1;
            }
        }
    }
    assert!(total > 0);
    let hit_rate = same_cluster_hits as f32 / total as f32;
    let chance = 1.0 / ds.world.clusters.len() as f32;
    assert!(
        hit_rate > chance * 3.0,
        "cluster structure not reflected: hit rate {hit_rate:.3} vs chance {chance:.3}"
    );
}

#[test]
fn autograd_trains_on_generated_tokens() {
    // Sanity: a linear bag-of-embeddings classifier over generated sentences
    // learns to separate two relations (substrate-level smoke of corpus+nn).
    let ds = Dataset::generate(&smoke_config(35));
    let mut rng = TensorRng::seed(3);
    let mut params = ParamStore::new();
    let emb = params.uniform("emb", &[ds.vocab.len(), 16], 0.3, &mut rng);
    let w = params.xavier("w", 16, ds.num_relations(), &mut rng);
    let mut grads = GradStore::zeros_like(&params);
    let sgd = Sgd::new(0.3);

    let examples: Vec<(&Vec<usize>, usize)> = ds
        .train
        .iter()
        .flat_map(|b| b.sentences.iter().map(move |s| (&s.tokens, b.label.0)))
        .collect();

    let mut first_loss = 0.0;
    let mut last_loss = 0.0;
    for epoch in 0..5 {
        let mut total = 0.0f32;
        for &(tokens, label) in examples.iter().take(300) {
            let mut tape = Tape::new(&params);
            let rows = tape.gather(emb, tokens);
            let pooled = tape.mean_rows(rows);
            let p2 = tape.reshape(pooled, &[1, 16]);
            let wv = tape.param(w);
            let logits2 = tape.matmul(p2, wv);
            let logits = tape.reshape(logits2, &[ds.num_relations()]);
            let loss = tape.softmax_cross_entropy(logits, label);
            total += tape.value(loss).data()[0];
            tape.backward(loss, &mut grads);
            sgd.step(&mut params, &mut grads);
        }
        if epoch == 0 {
            first_loss = total;
        }
        last_loss = total;
    }
    assert!(
        last_loss < first_loss * 0.8,
        "bag-of-embeddings failed to learn: {first_loss} → {last_loss}"
    );
}

#[test]
fn tensor_rng_streams_reproduce_dataset_exactly() {
    let a = Dataset::generate(&smoke_config(37));
    let b = Dataset::generate(&smoke_config(37));
    assert_eq!(a.vocab.len(), b.vocab.len());
    let sa: usize = a.train.iter().map(|x| x.sentences.len()).sum();
    let sb: usize = b.train.iter().map(|x| x.sentences.len()).sum();
    assert_eq!(sa, sb);
    let t1 = Tensor::rand_uniform(&[8], -1.0, 1.0, &mut TensorRng::seed(5));
    let t2 = Tensor::rand_uniform(&[8], -1.0, 1.0, &mut TensorRng::seed(5));
    assert_eq!(t1.data(), t2.data());
}
