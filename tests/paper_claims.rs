//! Integration tests asserting the *qualitative* claims the paper's
//! evaluation section makes, at reduced scale. These are the reproduction's
//! contract: orderings, not absolute numbers.
//!
//! They run at a mid scale (bigger than `smoke`, far smaller than the bench
//! presets) so the suite stays minutes-fast; the bench harness checks the
//! same claims at full scale.

use imre::core::{HyperParams, ModelSpec};
use imre::corpus::{DatasetConfig, SentenceGenConfig, WorldConfig};
use imre::eval::{mean_evaluation, Pipeline};

/// Mid-scale dataset: 12 relations, noisy, long-tailed.
fn mid_config(seed: u64) -> DatasetConfig {
    DatasetConfig {
        name: "mid".into(),
        world: WorldConfig {
            n_relations: 12,
            entities_per_cluster: 10,
            facts_per_relation: 40,
            cluster_reuse_prob: 0.5,
            seed: seed ^ 0xfeed,
        },
        sentence: SentenceGenConfig {
            noise_prob: 0.4,
            min_len: 8,
            max_len: 18,
        },
        train_fraction: 0.7,
        na_train: 350,
        na_test: 150,
        na_hard_fraction: 0.6,
        zipf_alpha: 2.0,
        max_sentences_per_bag: 15,
        seed,
    }
}

fn mid_pipeline() -> Pipeline {
    let mut hp = HyperParams::scaled();
    hp.epochs = 6;
    hp.batch_size = 16;
    Pipeline::build(&mid_config(1), hp)
}

#[test]
fn pa_tmr_beats_pcnn_att() {
    // The paper's headline claim (Table IV): integrating implicit mutual
    // relations and entity types improves the attention base model.
    let p = mid_pipeline();
    let seeds = [42, 43];
    let base = mean_evaluation(&p.run_system_seeds(ModelSpec::pcnn_att(), &seeds));
    let full = mean_evaluation(&p.run_system_seeds(ModelSpec::pa_tmr(), &seeds));
    assert!(
        full.auc > base.auc,
        "PA-TMR ({:.4}) must beat PCNN+ATT ({:.4})",
        full.auc,
        base.auc
    );
}

#[test]
fn single_components_also_help() {
    // Table IV: PA-T and PA-MR individually outperform the base model.
    let p = mid_pipeline();
    let seeds = [7, 8];
    let base = mean_evaluation(&p.run_system_seeds(ModelSpec::pcnn_att(), &seeds)).auc;
    let pa_t = mean_evaluation(&p.run_system_seeds(ModelSpec::pa_t(), &seeds)).auc;
    let pa_mr = mean_evaluation(&p.run_system_seeds(ModelSpec::pa_mr(), &seeds)).auc;
    assert!(
        pa_t > base * 0.98,
        "PA-T ({pa_t:.4}) should not fall below PCNN+ATT ({base:.4})"
    );
    assert!(
        pa_mr > base * 0.98,
        "PA-MR ({pa_mr:.4}) should not fall below PCNN+ATT ({base:.4})"
    );
    assert!(
        pa_t > base || pa_mr > base,
        "at least one single component must improve the base (PA-T {pa_t:.4}, PA-MR {pa_mr:.4}, base {base:.4})"
    );
}

#[test]
fn mutual_relations_cluster_by_relation() {
    // §III-A / Table I: analogous pairs have similar MR vectors.
    let p = mid_pipeline();
    let world = &p.dataset.world;
    let emb = &p.embedding;
    let rel_pairs = |r: usize| -> Vec<(usize, usize)> {
        world
            .facts
            .iter()
            .filter(|f| f.relation.0 == r)
            .map(|f| (f.head.0, f.tail.0))
            .take(20)
            .collect()
    };
    let pairs_a = rel_pairs(1);
    let pairs_b = rel_pairs(2);
    assert!(pairs_a.len() >= 5 && pairs_b.len() >= 5);
    let mean_cos = |xs: &[(usize, usize)], ys: &[(usize, usize)]| -> f32 {
        let mut acc = 0.0;
        let mut n = 0;
        for &(h1, t1) in xs {
            for &(h2, t2) in ys {
                if (h1, t1) != (h2, t2) {
                    acc += emb
                        .mutual_relation(h1, t1)
                        .cosine(&emb.mutual_relation(h2, t2));
                    n += 1;
                }
            }
        }
        acc / n as f32
    };
    let intra = mean_cos(&pairs_a, &pairs_a);
    let inter = mean_cos(&pairs_a, &pairs_b);
    assert!(
        intra > inter,
        "same-relation MR vectors should be closer: intra {intra:.3} vs inter {inter:.3}"
    );
}

#[test]
fn long_tail_shape_matches_fig1() {
    // Fig 1: the overwhelming majority of pairs have <11 sentences.
    let p = mid_pipeline();
    let small = p
        .train_bags
        .iter()
        .filter(|b| b.sentences.len() <= 10)
        .count();
    let frac = small as f32 / p.train_bags.len() as f32;
    assert!(
        frac > 0.85,
        "long tail missing: only {frac:.2} of pairs have ≤10 sentences"
    );
}
