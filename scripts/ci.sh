#!/usr/bin/env bash
# Full CI gate for the workspace. Run from the repository root:
#
#   scripts/ci.sh
#
# Steps: formatting, clippy with warnings denied, release build, the full
# test suite, and a 1-second smoke run of the serving-throughput bench
# (which exercises train -> bundle -> registry -> batched engine end to end).
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n=== %s ===\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test -q --workspace

step "serve_throughput smoke (CRITERION_SAMPLE_MS=1)"
CRITERION_SAMPLE_MS=1 cargo bench -p imre-bench --bench serve_throughput

printf '\nci.sh: all gates passed\n'
