#!/usr/bin/env bash
# CI gate for the workspace. Runs entirely offline (the workspace vendors
# every dependency) and reports per-step wall-clock timings.
#
# Usage:
#   scripts/ci.sh                # full gate: fmt, clippy, build, test,
#                                # serve-faults, alloc-gate, bench
#   scripts/ci.sh --fast         # quick gate: fmt, clippy, test
#                                # (skips the release build and bench smoke)
#   scripts/ci.sh <step>...      # run only the named steps, in order:
#                                #   fmt clippy build test serve-faults
#                                #   alloc-gate bench
#
# Steps:
#   fmt     cargo fmt --check over the whole workspace
#   clippy  clippy with warnings denied, all targets
#   build   release build of the workspace
#   test    the full test suite (tier-1 gate)
#   serve-faults
#           the serve-path fault-injection suite on its own (deadline
#           shedding, zero-worker shutdown drain, stop-aware connections);
#           model-free and sub-second, so it doubles as a quick lifecycle
#           smoke when iterating on the serving engine
#   alloc-gate
#           the steady-state allocation budget: the serve-level gate
#           (zero buffer-pool misses across ≥100 warm requests) plus the
#           stricter counting-global-allocator check that a warm inference
#           pass performs zero heap allocations process-wide
#   bench   1ms-sample smoke of the serving + kernel-scaling benches, which
#           also executes their embedded assertions (dispatch fast path,
#           batched == unbatched); with CI_BENCH_GATE=1 it then runs
#           scripts/bench_check.sh, the >15% regression gate against the
#           committed BENCH_PR2.json
#
# Environment:
#   CI_BENCH_GATE=1   enable the bench-regression gate in the bench step
set -euo pipefail
cd "$(dirname "$0")/.."

STEP_NAMES=()
STEP_MS=()

run_step() {
    local name="$1"
    shift
    printf '\n=== %s ===\n' "$name"
    local t0 t1 ms
    t0=$(date +%s%N)
    "$@"
    t1=$(date +%s%N)
    ms=$(((t1 - t0) / 1000000))
    STEP_NAMES+=("$name")
    STEP_MS+=("$ms")
    printf -- '--- %s: %d.%03ds ---\n' "$name" $((ms / 1000)) $((ms % 1000))
}

step_fmt() {
    cargo fmt --all -- --check
}

step_clippy() {
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

step_build() {
    cargo build --offline --release --workspace
}

step_test() {
    cargo test --offline -q --workspace
}

step_serve_faults() {
    cargo test --offline -q -p imre-serve --test fault_injection
}

step_alloc_gate() {
    cargo test --offline -q -p imre-serve --test alloc_steady_state
    cargo test --offline -q -p imre-bench --test zero_alloc_inference
}

step_bench() {
    CRITERION_SAMPLE_MS=1 cargo bench --offline -p imre-bench --bench serve_throughput
    CRITERION_SAMPLE_MS=1 cargo bench --offline -p imre-bench --bench kernel_scaling
    if [[ "${CI_BENCH_GATE:-0}" == "1" ]]; then
        scripts/bench_check.sh
    fi
}

case "${1:-}" in
--fast)
    steps=(fmt clippy test)
    ;;
"")
    steps=(fmt clippy build test serve-faults alloc-gate bench)
    ;;
*)
    steps=("$@")
    ;;
esac

for s in "${steps[@]}"; do
    case "$s" in
    fmt | clippy | build | test | bench) run_step "$s" "step_$s" ;;
    serve-faults) run_step "$s" step_serve_faults ;;
    alloc-gate) run_step "$s" step_alloc_gate ;;
    *)
        echo "ci.sh: unknown step '$s' (valid: fmt clippy build test serve-faults alloc-gate bench)" >&2
        exit 2
        ;;
    esac
done

printf '\n=== ci.sh summary ===\n'
for i in "${!STEP_NAMES[@]}"; do
    ms=${STEP_MS[$i]}
    printf '%-8s %6d.%03ds\n' "${STEP_NAMES[$i]}" $((ms / 1000)) $((ms % 1000))
done
printf 'ci.sh: all gates passed\n'
