#!/usr/bin/env bash
# CI gate for the workspace. Runs entirely offline (the workspace vendors
# every dependency) and reports per-step wall-clock timings.
#
# Usage:
#   scripts/ci.sh                # full gate: fmt, clippy, build, test,
#                                # serve-faults, serve-epoll, alloc-gate,
#                                # train-dp, knn, simd, quant, stream, bench
#   scripts/ci.sh --fast         # quick gate: fmt, clippy, test, serve-faults
#                                # (skips the release build and bench smoke)
#   scripts/ci.sh <step>...      # run only the named steps, in order:
#                                #   fmt clippy build test serve-faults
#                                #   serve-epoll alloc-gate train-dp knn
#                                #   simd quant stream bench
#
# Steps:
#   fmt     cargo fmt --check over the whole workspace
#   clippy  clippy with warnings denied, all targets
#   build   release build of the workspace
#   test    the full test suite (tier-1 gate)
#   serve-faults
#           the serve-path fault-injection suite on its own (deadline
#           shedding, zero-worker shutdown drain, stop-aware connections);
#           model-free and sub-second, so it doubles as a quick lifecycle
#           smoke when iterating on the serving engine
#   serve-epoll
#           the front-end matrix: the fault-injection + TCP end-to-end
#           suites run twice — once with the default front end (the epoll
#           event loop on linux) and once with IMRE_SERVE_FRONTEND=threads
#           forcing the thread-per-connection fallback, so both
#           implementations keep passing the identical protocol and
#           lifecycle contract
#   alloc-gate
#           the steady-state allocation budget: the serve-level gate
#           (zero buffer-pool misses across ≥100 warm requests) plus the
#           stricter counting-global-allocator check that a warm inference
#           pass performs zero heap allocations process-wide
#   train-dp
#           the data-parallel training gate: the imre-dist determinism and
#           resume suites, then a CLI-level end-to-end check on the smoke
#           corpus — two `imre train --data-parallel 4` runs plus a
#           `--threads 1` run must produce byte-identical IMRM artifacts,
#           and a checkpoint + `--resume` run must match the uninterrupted
#           run bytewise; on runners with ≥4 cores it finally asserts the
#           R=4 speedup from the train_scaling bench is ≥2.5x
#   knn     the kNN-interpolation gate: the imre-ann determinism/serialize
#           suites, the .imrb v1/v2 compatibility tests, the counting-
#           allocator zero-alloc kNN query gate, and a CLI-level end-to-end
#           check on the smoke corpus — a bundle trained with the default
#           kNN index must serve, two index builds (--threads 1 vs 4) must
#           be byte-identical, and `imre eval --knn` must report the
#           per-bucket table
#   simd    the SIMD kernel gate: the bit-identity proptests and the
#           dispatch suite run twice — once with runtime detection (on
#           capable hardware the dispatch counters must show the vector
#           path was really taken) and once under IMRE_FORCE_SCALAR=1, so
#           the scalar fallback stays exercised on every runner
#   quant   the int8 quantized-inference gate: the i8 kernel bit-identity
#           proptests with runtime dispatch and again under
#           IMRE_FORCE_SCALAR=1, the .imrb v3 layout + int8 serving
#           integration suites, the counting-allocator check that a warm
#           quantized inference pass performs zero heap allocations, and a
#           CLI-level end-to-end eval gate on the smoke corpus: train a
#           bundle, `imre quantize --check smoke` it, and fail unless the
#           int8 scores stay within max drift 1e-2 and P@N delta 0.5pt of
#           f32
#   stream  the streaming-ingest gate: the imre-stream suites (incremental
#           proximity-graph byte-identity, canonical/refine determinism
#           proptests, the live background updater with cold-start
#           admission), the 256-connection hot-swap-under-load fault
#           injection with its deferred mmap-unmap assertion, and a
#           CLI-level end-to-end check that `imre stream-replay` of a
#           3-batch delta stream is byte-identical to the single-batch
#           build on the merged corpus at --threads 1 and 4
#   bench   1ms-sample smoke of the serving + kernel-scaling benches, which
#           also executes their embedded assertions (dispatch fast path,
#           batched == unbatched); with CI_BENCH_GATE=1 it then runs
#           scripts/bench_check.sh, the >15% regression gate against the
#           committed BENCH_PR2.json
#
# Per-step wall-clock timings are printed in the summary and appended as
# JSON lines to target/ci/step_timings.jsonl, which CI uploads as an
# artifact next to the bench JSON.
#
# Environment:
#   CI_BENCH_GATE=1     enable the bench-regression gate in the bench step
#   IMRE_FORCE_SCALAR=1 pin the scalar kernels (the simd step sets this
#                       itself for its second pass)
set -euo pipefail
cd "$(dirname "$0")/.."

STEP_NAMES=()
STEP_MS=()

run_step() {
    local name="$1"
    shift
    printf '\n=== %s ===\n' "$name"
    local t0 t1 ms
    t0=$(date +%s%N)
    "$@"
    t1=$(date +%s%N)
    ms=$(((t1 - t0) / 1000000))
    STEP_NAMES+=("$name")
    STEP_MS+=("$ms")
    printf -- '--- %s: %d.%03ds ---\n' "$name" $((ms / 1000)) $((ms % 1000))
    # Append-only log: CI invokes ci.sh once per workflow step in the same
    # workspace, so the artifact accumulates every step of the job.
    mkdir -p target/ci
    printf '{"ts":%d,"step":"%s","ms":%d}\n' "$(date +%s)" "$name" "$ms" \
        >>target/ci/step_timings.jsonl
}

step_fmt() {
    cargo fmt --all -- --check
}

step_clippy() {
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

step_build() {
    cargo build --offline --release --workspace
}

step_test() {
    cargo test --offline -q --workspace
}

step_serve_faults() {
    cargo test --offline -q -p imre-serve --test fault_injection
}

step_serve_epoll() {
    # Pass 1 — the default front end (the epoll event loop on linux): the
    # full fault-injection suite (which pins the event loop explicitly for
    # its admission-control and framing scenarios) plus the TCP end-to-end
    # protocol suite.
    cargo test --offline -q -p imre-serve --test fault_injection --test serve_end_to_end

    # Pass 2 — the thread-per-connection fallback forced via the
    # environment override: the same suites must hold unmodified.
    IMRE_SERVE_FRONTEND=threads \
        cargo test --offline -q -p imre-serve --test fault_injection --test serve_end_to_end
    echo "serve-epoll: event-loop and threaded front ends both green"
}

step_alloc_gate() {
    cargo test --offline -q -p imre-serve --test alloc_steady_state
    cargo test --offline -q -p imre-bench --test zero_alloc_inference
    cargo test --offline -q -p imre-bench --test zero_alloc_knn
    cargo test --offline -q -p imre-bench --test zero_alloc_quant
}

step_knn() {
    # Index-structure suites: HNSW determinism, serialization, blending.
    cargo test --offline -q -p imre-ann

    # Bundle compatibility: v1/v2 layouts, corruption rejection, λ=0
    # bit-identity, thread-count determinism of the index build.
    cargo test --offline -q -p imre-serve --test bundle_compat

    # Process-global zero-allocation budget of a warm kNN query.
    cargo test --offline -q -p imre-bench --test zero_alloc_knn

    # CLI-level end-to-end on the smoke corpus: bundles embed the index by
    # default, index builds are byte-identical across --threads, and
    # `imre eval --knn` reports the per-bucket comparison table.
    cargo build --offline -q --release -p imre-cli
    local imre=target/release/imre
    local dir=target/knn-ci
    rm -rf "$dir" && mkdir -p "$dir"
    local common=(--dataset smoke --model pcnn --seed 5 --epochs 2)

    "$imre" train "${common[@]}" --threads 4 \
        --out "$dir/a.imrm" --bundle "$dir/a.imrb" >/dev/null
    "$imre" train "${common[@]}" --threads 1 \
        --out "$dir/b.imrm" --bundle "$dir/b.imrb" >/dev/null
    cmp "$dir/a.imrb" "$dir/b.imrb" ||
        { echo "knn: --threads changed the bundle (index not deterministic)" >&2; exit 1; }
    echo "knn: bundle byte-identical across --threads"

    "$imre" eval --dataset smoke --model-file "$dir/a.imrm" --seed 5 \
        --knn 1 --knn-k 4 --knn-lambda 0.3 --knn-buckets 3 >"$dir/eval.txt"
    grep -q "bucket" "$dir/eval.txt" ||
        { echo "knn: eval --knn did not print the per-bucket table" >&2
          cat "$dir/eval.txt" >&2; exit 1; }
    echo "knn: eval --knn reports the per-bucket table"
}

step_train_dp() {
    # Engine-level determinism, clip/step audit, and resume suites.
    cargo test --offline -q -p imre-dist

    # CLI-level end-to-end: byte-identical artifacts across repeat runs,
    # across --threads, and across a checkpoint + resume split.
    cargo build --offline -q --release -p imre-cli
    local imre=target/release/imre
    local dir=target/train-dp
    rm -rf "$dir" && mkdir -p "$dir"
    local common=(--dataset smoke --model pcnn --seed 5)

    "$imre" train "${common[@]}" --epochs 2 --data-parallel 4 --threads 4 \
        --out "$dir/a.imrm" >/dev/null
    "$imre" train "${common[@]}" --epochs 2 --data-parallel 4 --threads 4 \
        --out "$dir/b.imrm" >/dev/null
    cmp "$dir/a.imrm" "$dir/b.imrm" ||
        { echo "train-dp: repeat runs differ" >&2; exit 1; }
    "$imre" train "${common[@]}" --epochs 2 --data-parallel 4 --threads 1 \
        --out "$dir/c.imrm" >/dev/null
    cmp "$dir/a.imrm" "$dir/c.imrm" ||
        { echo "train-dp: --threads changed the artifact" >&2; exit 1; }
    echo "train-dp: byte-identical across runs and --threads"

    "$imre" train "${common[@]}" --epochs 4 --data-parallel 2 \
        --out "$dir/straight.imrm" >/dev/null
    "$imre" train "${common[@]}" --epochs 2 --data-parallel 2 \
        --checkpoint "$dir/mid.imrc" --out "$dir/half.imrm" >/dev/null
    "$imre" train "${common[@]}" --epochs 4 --data-parallel 2 \
        --resume "$dir/mid.imrc" --out "$dir/resumed.imrm" >/dev/null
    cmp "$dir/straight.imrm" "$dir/resumed.imrm" ||
        { echo "train-dp: resume diverged from the uninterrupted run" >&2; exit 1; }
    echo "train-dp: checkpoint resume matches the uninterrupted run"

    # Scaling criterion — only meaningful with ≥4 cores to spread replicas.
    local cores
    cores=$(nproc 2>/dev/null || echo 1)
    if [[ "$cores" -ge 4 ]]; then
        IMRE_BENCH_JSON="$dir/train_scaling.json" \
            cargo bench --offline -q -p imre-bench --bench train_scaling >/dev/null
        awk '/info_train_dp_speedup_r4/ {
            v = $2 + 0
            if (v < 2.5) {
                printf "train-dp: R=4 speedup %.2fx below 2.5x\n", v > "/dev/stderr"
                exit 1
            }
            printf "train-dp: R=4 speedup %.2fx (>= 2.5x)\n", v
        }' "$dir/train_scaling.json"
    else
        echo "train-dp: $cores core(s) — skipping the >=2.5x speedup assertion"
    fi
}

step_simd() {
    # Pass 1 — runtime detection: bit-identity of every *_into kernel at 1
    # and 4 threads, plus the dispatch suite, which asserts via the
    # dispatch-path counters that SIMD-capable hardware really took the
    # vector path (counted, not inferred).
    cargo test --offline -q -p imre-tensor --test proptest_into_kernels
    cargo test --offline -q -p imre-tensor --test simd_dispatch
    cargo test --offline -q -p imre-tensor --test proptest_pool

    # Pass 2 — forced scalar fallback: the same suites must hold with the
    # vector kernels pinned off, so the fallback path stays green on every
    # runner regardless of what the CPU reports.
    IMRE_FORCE_SCALAR=1 cargo test --offline -q -p imre-tensor --test proptest_into_kernels
    IMRE_FORCE_SCALAR=1 cargo test --offline -q -p imre-tensor --test simd_dispatch
    echo "simd: vector and forced-scalar passes both green"
}

step_quant() {
    # Bit-identity of the i8 kernels across backends and thread counts —
    # once with runtime dispatch, once with the scalar fallback pinned, so
    # the exact-integer determinism contract holds on every runner.
    cargo test --offline -q -p imre-tensor --test proptest_quant
    IMRE_FORCE_SCALAR=1 cargo test --offline -q -p imre-tensor --test proptest_quant

    # .imrb v3 layout (alignment, checksums, zero-copy borrows, v1/v2
    # passthrough) and the int8 serving integration suite.
    cargo test --offline -q -p imre-serve --test bundle_v3
    cargo test --offline -q -p imre-serve --test quant_serving

    # Process-global zero-allocation budget of a warm quantized pass.
    cargo test --offline -q -p imre-bench --test zero_alloc_quant

    # CLI-level end-to-end eval gate on the smoke corpus: the quantized
    # model must track f32 within max score drift 1e-2 and P@N delta 0.5pt
    # on the held-out split, or `imre quantize` exits nonzero.
    cargo build --offline -q --release -p imre-cli
    local imre=target/release/imre
    local dir=target/quant-ci
    rm -rf "$dir" && mkdir -p "$dir"
    "$imre" train --dataset smoke --model pa-tmr --seed 5 --epochs 2 \
        --out "$dir/m.imrm" --bundle "$dir/m.imrb" >/dev/null
    "$imre" quantize --bundle "$dir/m.imrb" --out "$dir/m.q.imrb" \
        --check smoke --seed 5 --max-drift 0.01 --max-pn-delta 0.5
    echo "quant: int8 eval gate held (drift <= 1e-2, P@N delta <= 0.5pt)"
}

step_stream() {
    # Streaming-ingest suites: incremental-graph byte-identity and refine
    # determinism proptests, the live background-updater integration (cold
    # start entity answerable after a hot-swap publish), and the
    # 256-connection hot-swap-under-load fault injection with the deferred
    # mmap-unmap assertion.
    cargo test --offline -q -p imre-stream
    cargo test --offline -q -p imre-serve --test hot_swap_under_load

    # CLI-level end-to-end: replaying a 3-batch delta stream must produce a
    # bundle byte-identical to the single-batch build on the merged corpus,
    # at --threads 1 and --threads 4 (the canonical-refresh contract).
    cargo build --offline -q --release -p imre-cli
    local imre=target/release/imre
    local dir=target/stream-ci
    rm -rf "$dir" && mkdir -p "$dir"
    "$imre" train --dataset smoke --model pa-tmr --seed 5 --epochs 2 \
        --out "$dir/m.imrm" --bundle "$dir/m.imrb" >/dev/null

    # Three delta batches over cold-start entities (admission + graph
    # growth), plus a duplicate line that dedup must drop identically
    # however the stream is batched.
    printf '%s\n' \
        $'1\tnovaA:1\tnovaB' $'2\tnovaA\tnovaC:2' $'3\tnovaA\tnovaB' '' \
        $'4\tnovaB\tnovaC' $'2\tnovaA\tnovaC:2' $'5\tnovaA\tnovaC' '' \
        $'6\tnovaB\tnovaC\tnovaA' $'7\tnovaA\tnovaB' \
        >"$dir/deltas.tsv"
    grep -v '^$' "$dir/deltas.tsv" >"$dir/merged.tsv"

    "$imre" stream-replay --bundle "$dir/m.imrb" --deltas "$dir/deltas.tsv" \
        --out "$dir/batched_t4.imrb" --threads 4 >/dev/null
    "$imre" stream-replay --bundle "$dir/m.imrb" --deltas "$dir/deltas.tsv" \
        --out "$dir/batched_t1.imrb" --threads 1 >/dev/null
    "$imre" stream-replay --bundle "$dir/m.imrb" --deltas "$dir/merged.tsv" \
        --out "$dir/merged_t1.imrb" --threads 1 >/dev/null
    cmp "$dir/batched_t4.imrb" "$dir/batched_t1.imrb" ||
        { echo "stream: --threads changed the replayed bundle" >&2; exit 1; }
    cmp "$dir/batched_t4.imrb" "$dir/merged_t1.imrb" ||
        { echo "stream: batching changed the replayed bundle" >&2; exit 1; }
    echo "stream: replay byte-identical across batching and --threads"
}

step_bench() {
    CRITERION_SAMPLE_MS=1 cargo bench --offline -p imre-bench --bench serve_throughput
    CRITERION_SAMPLE_MS=1 cargo bench --offline -p imre-bench --bench serve_concurrency
    CRITERION_SAMPLE_MS=1 cargo bench --offline -p imre-bench --bench knn_serve
    CRITERION_SAMPLE_MS=1 cargo bench --offline -p imre-bench --bench quant_serve
    CRITERION_SAMPLE_MS=1 cargo bench --offline -p imre-bench --bench kernel_scaling
    CRITERION_SAMPLE_MS=1 IMRE_FAST=1 cargo bench --offline -p imre-bench --bench train_scaling
    if [[ "${CI_BENCH_GATE:-0}" == "1" ]]; then
        scripts/bench_check.sh
    fi
}

case "${1:-}" in
--fast)
    steps=(fmt clippy test serve-faults)
    ;;
"")
    steps=(fmt clippy build test serve-faults serve-epoll alloc-gate train-dp knn simd quant stream bench)
    ;;
*)
    steps=("$@")
    ;;
esac

for s in "${steps[@]}"; do
    case "$s" in
    fmt | clippy | build | test | knn | simd | quant | stream | bench) run_step "$s" "step_$s" ;;
    serve-faults) run_step "$s" step_serve_faults ;;
    serve-epoll) run_step "$s" step_serve_epoll ;;
    alloc-gate) run_step "$s" step_alloc_gate ;;
    train-dp) run_step "$s" step_train_dp ;;
    *)
        echo "ci.sh: unknown step '$s' (valid: fmt clippy build test serve-faults serve-epoll alloc-gate train-dp knn simd quant stream bench)" >&2
        exit 2
        ;;
    esac
done

printf '\n=== ci.sh summary ===\n'
for i in "${!STEP_NAMES[@]}"; do
    ms=${STEP_MS[$i]}
    printf '%-12s %6d.%03ds\n' "${STEP_NAMES[$i]}" $((ms / 1000)) $((ms % 1000))
done
printf 'ci.sh: all gates passed\n'
