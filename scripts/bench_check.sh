#!/usr/bin/env bash
# Bench-regression gate: runs the machine-readable benches, merges their
# metrics, and fails if anything regressed vs the committed baseline.
#
# Usage:
#   scripts/bench_check.sh            # run benches, diff vs BENCH_PR2.json
#   scripts/bench_check.sh --update   # regenerate BENCH_PR2.json in place
#
# The benches (kernel_scaling, serve_throughput, serve_concurrency,
# knn_serve, quant_serve, train_scaling, stream_update) each dump a flat JSON
# object via IMRE_BENCH_JSON; this script merges them into one object at
# target/bench/current.json (uploaded as a CI artifact) and compares every
# key against the committed BENCH_PR2.json:
#
#   - keys ending in `_ns` (latency), containing `allocs` (steady-state
#     allocation budgets, committed at 0 so any fresh allocation fails), or
#     containing `bytes_per_model` (quantized weight footprint) are
#     lower-is-better; everything else is higher-is-better (throughput);
#   - keys starting with `floor_` are lower-bound gates for ratios that
#     must never invert (thread-scaling speedups, the SIMD-over-scalar
#     matmul ratio): the fresh value must stay at or above
#     `max(baseline, 1.0) * (1 - tol)`. Raising the bar to at least 1.0
#     means a speedup curve that collapses below parity fails even where
#     the committed baseline was measured on a box too small to scale;
#   - keys starting with `info_` are informational and never gate
#     (machine-dependent raw multi-thread throughputs, plus the serve
#     lifecycle counters `info_serve_deadline_expired` / `info_serve_shed`
#     that serve_throughput records so the artifact shows whether a run
#     shed work);
#   - a gated key regressing by more than BENCH_TOL (default 0.15 = 15%)
#     fails the script; so does a baseline key missing from the fresh run.
#
# Environment:
#   BENCH_TOL            relative tolerance, default 0.15
#   CRITERION_SAMPLE_MS  per-sample budget forwarded to the benches
#                        (default 100 here; raise it for stabler numbers
#                        when regenerating the baseline)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_PR2.json
TOL="${BENCH_TOL:-0.15}"
export CRITERION_SAMPLE_MS="${CRITERION_SAMPLE_MS:-100}"
# Absolute: cargo runs bench binaries with the package dir as cwd.
OUT="$PWD/target/bench"
mkdir -p "$OUT"

echo "bench_check: running benches (CRITERION_SAMPLE_MS=$CRITERION_SAMPLE_MS)"
IMRE_BENCH_JSON="$OUT/kernel_scaling.json" \
    cargo bench --offline -q -p imre-bench --bench kernel_scaling
IMRE_BENCH_JSON="$OUT/serve_throughput.json" \
    cargo bench --offline -q -p imre-bench --bench serve_throughput
IMRE_BENCH_JSON="$OUT/serve_concurrency.json" \
    cargo bench --offline -q -p imre-bench --bench serve_concurrency
IMRE_BENCH_JSON="$OUT/knn_serve.json" \
    cargo bench --offline -q -p imre-bench --bench knn_serve
IMRE_BENCH_JSON="$OUT/quant_serve.json" \
    cargo bench --offline -q -p imre-bench --bench quant_serve
IMRE_BENCH_JSON="$OUT/train_scaling.json" \
    cargo bench --offline -q -p imre-bench --bench train_scaling
IMRE_BENCH_JSON="$OUT/stream_update.json" \
    cargo bench --offline -q -p imre-bench --bench stream_update

# Merge the flat objects: keep every `"key": value` line, normalize commas.
{
    printf '{\n'
    grep -h '":' "$OUT/kernel_scaling.json" "$OUT/serve_throughput.json" \
        "$OUT/serve_concurrency.json" "$OUT/knn_serve.json" "$OUT/quant_serve.json" \
        "$OUT/train_scaling.json" "$OUT/stream_update.json" \
        | sed 's/,$//' | sed '$!s/$/,/'
    printf '}\n'
} >"$OUT/current.json"
echo "bench_check: merged metrics -> $OUT/current.json"

if [[ "${1:-}" == "--update" ]]; then
    cp "$OUT/current.json" "$BASELINE"
    echo "bench_check: baseline $BASELINE updated"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: no committed $BASELINE — run scripts/bench_check.sh --update" >&2
    exit 1
fi

awk -v tol="$TOL" '
    function parse(line, arr) {
        if (match(line, /"[^"]+"/)) {
            key = substr(line, RSTART + 1, RLENGTH - 2)
            val = $NF
            sub(/,$/, "", val)
            arr[key] = val + 0
        }
    }
    FNR == NR { parse($0, base); next }
              { parse($0, cur) }
    END {
        bad = 0
        for (key in base) {
            if (key ~ /^info_/) continue
            if (!(key in cur)) {
                printf "FAIL  %-28s missing from fresh run\n", key
                bad = 1
                continue
            }
            b = base[key]; c = cur[key]
            if (key ~ /^floor_/) {
                # Lower-bound ratio: must hold >= max(baseline, 1.0) within
                # tolerance, so an inverted speedup curve always fails.
                bound = (b > 1.0) ? b : 1.0
                regressed = (c < bound * (1 - tol))
                delta = (bound != 0) ? (c - bound) / bound * 100 : 0
                verdict = regressed ? "FAIL" : "ok"
                printf "%-5s %-32s bound=%-11.4g cur=%-12.4g (%+.1f%%, floor)\n", \
                    verdict, key, bound, c, delta
                if (regressed) bad = 1
                continue
            }
            lower = (key ~ /_ns$/ || key ~ /allocs/ || key ~ /bytes_per_model/)
            if (lower) { regressed = (c > b * (1 + tol)) } \
            else       { regressed = (c < b * (1 - tol)) }
            delta = (b != 0) ? (c - b) / b * 100 : 0
            verdict = regressed ? "FAIL" : "ok"
            printf "%-5s %-32s base=%-12.4g cur=%-12.4g (%+.1f%%, %s better)\n", \
                verdict, key, b, c, delta, (lower ? "lower" : "higher")
            if (regressed) bad = 1
        }
        if (bad) {
            printf "bench_check: regression beyond %.0f%% tolerance\n", tol * 100 > "/dev/stderr"
            exit 1
        }
        print "bench_check: all gated metrics within tolerance"
    }
' "$BASELINE" "$OUT/current.json"
