//! Vendored minimal benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the `criterion` API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for ~100 ms, then runs three
//! timed samples sized to ~200 ms each and reports the fastest per-iteration
//! mean (minimum-of-means is robust to scheduler noise on shared machines).
//! Set `CRITERION_SAMPLE_MS` to change the per-sample budget, e.g. a smoke
//! value like `10` in CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id naming only the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the closure under measurement; drives the timing loop.
pub struct Bencher {
    sample_budget: Duration,
    /// Best observed mean per-iteration time, filled by [`Bencher::iter`].
    result: Option<Duration>,
}

impl Bencher {
    fn new(sample_budget: Duration) -> Self {
        Bencher {
            sample_budget,
            result: None,
        }
    }

    /// Measures `f`, keeping the fastest of three sample means.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also sizes the batch so one sample hits the budget.
        let warmup_deadline = Instant::now() + self.sample_budget / 2;
        let mut iters: u64 = 0;
        while Instant::now() < warmup_deadline {
            black_box(f());
            iters += 1;
        }
        let batch = iters.max(1);
        let mut best: Option<Duration> = None;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = start.elapsed() / (batch as u32).max(1);
            best = Some(match best {
                Some(b) if b < per_iter => b,
                _ => per_iter,
            });
        }
        self.result = best;
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms.max(1))
}

fn report(label: &str, result: Option<Duration>) {
    match result {
        Some(d) => println!("{label:<48} time: {d:>12.3?}/iter"),
        None => println!("{label:<48} (no measurement: closure never ran)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_budget: sample_budget(),
        }
    }
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line (the first
    /// non-flag argument, as `cargo bench -- <filter>` passes it).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn enabled(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Measures one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.enabled(name) {
            let mut b = Bencher::new(self.sample_budget);
            f(&mut b);
            report(name, b.result);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        if self.criterion.enabled(&label) {
            let mut b = Bencher::new(self.criterion.sample_budget);
            f(&mut b);
            report(&label, b.result);
        }
        self
    }

    /// Measures one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        if self.criterion.enabled(&label) {
            let mut b = Bencher::new(self.criterion.sample_budget);
            f(&mut b, input);
            report(&label, b.result);
        }
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_SAMPLE_MS", "2");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            sample_budget: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("other", |_| ran = true);
        assert!(!ran);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |_, _| ran = true);
        group.finish();
        assert!(!ran);
    }
}
