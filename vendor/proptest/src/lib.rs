//! Vendored minimal property-testing harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the `proptest` API the workspace's test suites use, with the
//! same surface syntax: the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`](crate::bool::ANY), `Just`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream proptest, on purpose:
//!
//! - **No shrinking.** A failing case reports its values via the panic
//!   message of the assertion that tripped, unshrunk.
//! - **Deterministic seeding.** Case `i` of test `name` derives its RNG seed
//!   from `(name, i)`, so failures reproduce exactly across runs.
//! - **Default case count 64** (override per block with
//!   `ProptestConfig::with_cases(n)` or globally with the
//!   `PROPTEST_CASES` environment variable).

/// Runner configuration and error plumbing.
pub mod test_runner {
    /// Per-block configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// The case was rejected by `prop_assume!`; try another.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsified-property error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption-rejected marker.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic split-mix / xoshiro256** source for strategies.
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// RNG seeded from an arbitrary 64-bit value.
        pub fn seed(seed: u64) -> Self {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                state: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64-bit output.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below: empty range");
            self.next_u64() % n
        }
    }

    /// Drives one property over many generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` until `config.cases` cases are accepted, panicking on
        /// the first falsified case. Rejected cases (via `prop_assume!`) are
        /// retried with fresh seeds up to a bounded attempt budget.
        pub fn run_named<F>(&mut self, name: &str, mut case: F)
        where
            F: FnMut(&mut TestRng) -> TestCaseResult,
        {
            let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                name_hash ^= u64::from(b);
                name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = self.config.cases.saturating_mul(16).max(64);
            while accepted < self.config.cases {
                if attempts >= max_attempts {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({accepted}/{} accepted after {attempts} attempts)",
                        self.config.cases
                    );
                }
                let seed = name_hash ^ (u64::from(attempts)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = TestRng::seed(seed);
                attempts += 1;
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => continue,
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest '{name}' falsified (attempt {attempts}, seed {seed:#x}): {msg}")
                    }
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    // guard against rounding up to the exclusive bound
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies; converts from a
    /// fixed `usize`, a half-open `Range`, or a `RangeInclusive`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range {r:?}");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.end() >= r.start(), "empty collection size range {r:?}");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (retried with a fresh seed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0f32..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( #[test] $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(stringify!($name), |rng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), rng); )+
                    let case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..1000 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (-2.0f32..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::seed(7);
        let mut b = TestRng::seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(n in 1usize..20, v in crate::collection::vec(0u32..5, 1..6)) {
            prop_assume!(n != 13);
            prop_assert!(n < 20);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(n, 25);
            for x in v {
                prop_assert!(x < 5, "element {x} out of range");
            }
        }
    }
}
