//! Periodic training checkpoints: the IMRC format.
//!
//! A checkpoint bundles everything needed to continue training exactly
//! where it stopped: the epoch to resume at, the optimizer state (SGD's
//! decayed learning rate, or Adam's step clock and both moment vectors),
//! and the full model in the IMRM format. Because the training engine
//! derives every RNG stream from `(seed, epoch)` (see `imre_core::train`),
//! resuming at an epoch boundary replays the exact shuffles and dropout
//! noise an uninterrupted run would see — the resumed run is bit-identical.
//!
//! Files are written atomically: bytes go to a `<path>.tmp` sibling, are
//! fsynced, and renamed over the destination, so a kill mid-write can never
//! leave a truncated checkpoint behind.

use imre_core::persist::{read_model, write_model};
use imre_core::ReModel;
use imre_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"IMRC";
const VERSION: u32 = 1;

/// Serializable optimizer state carried inside a checkpoint.
pub enum OptState {
    /// SGD: only the (decayed) learning rate.
    Sgd {
        /// Learning rate at the time of the checkpoint.
        lr: f32,
    },
    /// Adam: learning rate, bias-correction step clock, and both moments.
    Adam {
        /// Learning rate at the time of the checkpoint.
        lr: f32,
        /// Steps taken so far (the bias-correction clock).
        t: u64,
        /// First-moment buffers, in parameter order.
        m: Vec<Tensor>,
        /// Second-moment buffers, in parameter order.
        v: Vec<Tensor>,
    },
}

/// A loaded checkpoint: resume by rebuilding the engine around `model`
/// with `opt` restored and training from `next_epoch`.
pub struct Checkpoint {
    /// First epoch the resumed run should execute.
    pub next_epoch: usize,
    /// Optimizer state as of the end of epoch `next_epoch - 1`.
    pub opt: OptState,
    /// The model weights (and architecture) at the checkpoint.
    pub model: ReModel,
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn write_tensor<W: Write>(t: &Tensor, w: &mut W) -> io::Result<()> {
    w.write_all(&(t.shape().len() as u64).to_le_bytes())?;
    for &d in t.shape() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    for &x in t.data() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_tensor<R: Read>(r: &mut R) -> io::Result<Tensor> {
    let ndim = read_u64(r)? as usize;
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(read_u64(r)? as usize);
    }
    let len: usize = shape.iter().product();
    let mut data = vec![0f32; len];
    for x in &mut data {
        *x = read_f32(r)?;
    }
    Ok(Tensor::from_vec(data, &shape))
}

/// Writes a checkpoint to a writer (header, optimizer state, then the
/// embedded IMRM model).
pub fn write_checkpoint<W: Write>(
    model: &ReModel,
    next_epoch: usize,
    opt: &OptState,
    w: &mut W,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(next_epoch as u64).to_le_bytes())?;
    match opt {
        OptState::Sgd { lr } => {
            w.write_all(&[0u8])?;
            w.write_all(&lr.to_le_bytes())?;
        }
        OptState::Adam { lr, t, m, v } => {
            w.write_all(&[1u8])?;
            w.write_all(&lr.to_le_bytes())?;
            w.write_all(&t.to_le_bytes())?;
            w.write_all(&(m.len() as u64).to_le_bytes())?;
            for t in m.iter().chain(v) {
                write_tensor(t, w)?;
            }
        }
    }
    write_model(model, w)
}

/// Reads a checkpoint written by [`write_checkpoint`].
///
/// # Errors
/// On malformed input, an unknown version, or a corrupt embedded model.
pub fn read_checkpoint<R: Read>(r: &mut R) -> io::Result<Checkpoint> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an IMRC checkpoint file",
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported IMRC version {version}"),
        ));
    }
    let next_epoch = read_u64(r)? as usize;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let opt = match tag[0] {
        0 => OptState::Sgd { lr: read_f32(r)? },
        1 => {
            let lr = read_f32(r)?;
            let t = read_u64(r)?;
            let n = read_u64(r)? as usize;
            let mut m = Vec::with_capacity(n);
            for _ in 0..n {
                m.push(read_tensor(r)?);
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(read_tensor(r)?);
            }
            OptState::Adam { lr, t, m, v }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad optimizer tag {other}"),
            ))
        }
    };
    let model = read_model(r)?;
    Ok(Checkpoint {
        next_epoch,
        opt,
        model,
    })
}

/// Saves a checkpoint to a file **atomically** (tmp-sibling write + rename).
pub fn save_checkpoint(
    model: &ReModel,
    next_epoch: usize,
    opt: &OptState,
    path: &Path,
) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let file = std::fs::File::create(&tmp)?;
    let mut w = io::BufWriter::new(file);
    write_checkpoint(model, next_epoch, opt, &mut w)?;
    w.flush()?;
    w.into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?
        .sync_all()?;
    std::fs::rename(&tmp, path)
}

/// Loads a checkpoint from a file.
pub fn load_checkpoint(path: &Path) -> io::Result<Checkpoint> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    read_checkpoint(&mut file)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}
