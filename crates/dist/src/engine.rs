//! The data-parallel training engine.
//!
//! [`DataParallel`] owns R structurally identical [`ReModel`] replicas
//! (replica 0 is the *primary*). Each optimizer step:
//!
//! 1. **Shard** — the mini-batch is split by `imre_core::replica_shard`
//!    (strided, a pure function of the replica index);
//! 2. **Fan out** — replicas run forward/backward concurrently on the
//!    `imre-tensor` thread pool, each accumulating into its own `GradStore`
//!    with dropout drawn from `bag_step_rng(seed, epoch, bag)` so a bag's
//!    gradient is independent of which replica computed it;
//! 3. **Reduce** — gradients combine via the fixed-order tree all-reduce
//!    into the primary;
//! 4. **Clip + step** — global-norm clipping applies **once** to the
//!    combined gradient, then the optimizer steps the primary exactly once
//!    (Adam's bias-correction clock advances once per step, regardless of
//!    R);
//! 5. **Broadcast** — updated parameters are memcpy'd back to every
//!    replica.
//!
//! Determinism contract: for a fixed `(seed, replicas)` configuration the
//! trained parameters are byte-identical across runs and across thread-pool
//! sizes. Different R values produce *statistically* equivalent but not
//! bitwise-equal models (floating-point summation order differs).

use crate::allreduce::tree_all_reduce;
use crate::checkpoint::{save_checkpoint, Checkpoint, OptState};
use imre_core::{
    accumulate_shard, epoch_order, replica_shard, BagContext, PreparedBag, ReModel, TrainConfig,
};
use imre_nn::{Adam, GradStore, Sgd};
use imre_tensor::pool::par_map;
use imre_tensor::PoolStats;
use std::path::PathBuf;
use std::time::Instant;

/// Which optimizer steps the reduced gradient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Plain SGD with per-epoch lr decay (the paper's setup).
    Sgd,
    /// Adam with bias correction (converges faster on small corpora).
    Adam,
}

enum Optimizer {
    Sgd(Sgd),
    Adam(Adam),
}

/// Periodic-checkpoint policy for [`DataParallel::train`].
#[derive(Debug, Clone)]
pub struct CheckpointCfg {
    /// Write a checkpoint every this many epochs (0 disables).
    pub every: usize,
    /// Destination path (written atomically via tmp-sibling + rename).
    pub path: PathBuf,
}

/// Telemetry for one data-parallel training run.
#[derive(Debug, Clone, Default)]
pub struct DistStats {
    /// Mean training loss per epoch (same meaning as `TrainStats`).
    pub epoch_losses: Vec<f32>,
    /// Wall time of each epoch, nanoseconds.
    pub epoch_wall_ns: Vec<u64>,
    /// Time spent inside the tree all-reduce per epoch, nanoseconds.
    pub epoch_reduce_ns: Vec<u64>,
    /// Bags processed per wall-clock second over the whole run.
    pub bags_per_sec: f64,
    /// Buffer-arena pressure summed over all replicas for this run.
    pub pool: PoolStats,
}

impl DistStats {
    /// The last epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }

    /// Fraction of total wall time spent reducing gradients (0 when no
    /// time was measured).
    pub fn reduce_share(&self) -> f64 {
        let wall: u64 = self.epoch_wall_ns.iter().sum();
        if wall == 0 {
            return 0.0;
        }
        self.epoch_reduce_ns.iter().sum::<u64>() as f64 / wall as f64
    }
}

/// Raw-pointer wrapper for the disjoint per-replica fan-out.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// R model replicas plus the single optimizer that steps the primary.
pub struct DataParallel {
    models: Vec<ReModel>,
    opt: Optimizer,
}

impl DataParallel {
    /// Wraps `primary` in an R-replica engine. Replicas 1..R are rebuilt
    /// from the primary's architecture and receive a copy of its current
    /// parameter values.
    ///
    /// # Panics
    /// If `replicas` is 0.
    pub fn new(primary: ReModel, replicas: usize, kind: OptimizerKind, lr: f32) -> Self {
        assert!(
            replicas >= 1,
            "DataParallel::new: need at least one replica"
        );
        let opt = match kind {
            OptimizerKind::Sgd => Optimizer::Sgd(Sgd::new(lr)),
            OptimizerKind::Adam => Optimizer::Adam(Adam::new(lr, &primary.store)),
        };
        let mut models = Vec::with_capacity(replicas);
        models.push(primary);
        for r in 1..replicas {
            let p = &models[0];
            let mut m = ReModel::new(
                p.spec,
                &p.hp,
                p.vocab_size(),
                p.num_relations(),
                p.num_types(),
                p.entity_dim(),
                r as u64,
            );
            m.store.copy_values_from(&p.store);
            models.push(m);
        }
        DataParallel { models, opt }
    }

    /// Rebuilds an engine from a loaded [`Checkpoint`]. Returns the engine
    /// and the epoch training should resume at. The optimizer (including
    /// Adam's step clock and moments, or SGD's decayed lr) continues from
    /// its checkpointed state, so the resumed run is bit-identical to one
    /// that never stopped.
    pub fn resume(ck: Checkpoint, replicas: usize) -> (Self, usize) {
        let Checkpoint {
            next_epoch,
            opt,
            model,
        } = ck;
        let kind = match &opt {
            OptState::Sgd { .. } => OptimizerKind::Sgd,
            OptState::Adam { .. } => OptimizerKind::Adam,
        };
        let mut engine = DataParallel::new(model, replicas, kind, 0.0);
        engine.opt = match opt {
            OptState::Sgd { lr } => Optimizer::Sgd(Sgd::new(lr)),
            OptState::Adam { lr, t, m, v } => Optimizer::Adam(Adam::restore(lr, t, m, v)),
        };
        (engine, next_epoch)
    }

    /// The primary replica (source of truth for parameters).
    pub fn primary(&self) -> &ReModel {
        &self.models[0]
    }

    /// Consumes the engine, returning the trained primary model.
    pub fn into_model(mut self) -> ReModel {
        self.models.swap_remove(0)
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.models.len()
    }

    /// Adam's step clock, if the engine runs Adam (for the once-per-step
    /// audit; `None` under SGD).
    pub fn optimizer_steps(&self) -> Option<u64> {
        match &self.opt {
            Optimizer::Sgd(_) => None,
            Optimizer::Adam(a) => Some(a.steps()),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        match &self.opt {
            Optimizer::Sgd(s) => s.lr,
            Optimizer::Adam(a) => a.lr,
        }
    }

    /// Snapshot of the optimizer state for checkpointing.
    pub fn opt_state(&self) -> OptState {
        match &self.opt {
            Optimizer::Sgd(s) => OptState::Sgd { lr: s.lr },
            Optimizer::Adam(a) => {
                let (m, v) = a.moments();
                OptState::Adam {
                    lr: a.lr,
                    t: a.steps(),
                    m: m.to_vec(),
                    v: v.to_vec(),
                }
            }
        }
    }

    /// Trains from `start_epoch` (0 for a fresh run, the checkpoint's
    /// `next_epoch` when resuming) through `config.epochs`.
    ///
    /// `config.lr` is only used when `start_epoch == 0`; a resumed engine
    /// keeps its restored learning rate. Checkpoints, if configured, are
    /// written at epoch boundaries.
    pub fn train(
        &mut self,
        bags: &[PreparedBag],
        ctx: &BagContext,
        config: &TrainConfig,
        start_epoch: usize,
        ckpt: Option<&CheckpointCfg>,
    ) -> DistStats {
        assert!(!bags.is_empty(), "DataParallel::train: no training bags");
        if start_epoch == 0 {
            match &mut self.opt {
                Optimizer::Sgd(s) => s.lr = config.lr,
                Optimizer::Adam(a) => a.lr = config.lr,
            }
        }
        let r = self.models.len();
        let pool_before: Vec<PoolStats> = self.models.iter().map(|m| m.arena_stats()).collect();
        let mut stats = DistStats::default();
        let run_start = Instant::now();
        let mut bags_done = 0u64;

        for epoch in start_epoch..config.epochs {
            let epoch_start = Instant::now();
            let mut reduce_ns = 0u64;
            let mut epoch_loss = 0.0f64;
            let order = epoch_order(config.seed, epoch, bags.len());

            for batch in order.chunks(config.batch_size.max(1)) {
                let scale = 1.0 / batch.len() as f32;
                let shards: Vec<Vec<usize>> = (0..r).map(|i| replica_shard(batch, i, r)).collect();

                // Fan out: each replica accumulates its shard's gradients.
                let base = SendPtr(self.models.as_mut_ptr());
                let base = &base;
                let losses: Vec<f64> = par_map(r, |i| {
                    // SAFETY: each task takes exclusive access to replica i.
                    let model = unsafe { &mut *base.0.add(i) };
                    accumulate_shard(model, bags, ctx, &shards[i], scale, config.seed, epoch)
                });
                epoch_loss += losses.iter().sum::<f64>();
                bags_done += batch.len() as u64;

                // Reduce into the primary, fixed tree order.
                let t0 = Instant::now();
                let mut grads: Vec<&mut GradStore> =
                    self.models.iter_mut().map(|m| &mut m.grads).collect();
                tree_all_reduce(&mut grads);
                reduce_ns += t0.elapsed().as_nanos() as u64;

                // Clip once on the combined gradient, then one optimizer
                // step on the primary.
                let (primary, rest) = self.models.split_first_mut().expect("replicas >= 1");
                if config.clip_norm > 0.0 {
                    let n = primary.grads.global_norm();
                    if n > config.clip_norm {
                        primary.grads.scale(config.clip_norm / n);
                    }
                }
                match &mut self.opt {
                    Optimizer::Sgd(s) => s.step(&mut primary.store, &mut primary.grads),
                    Optimizer::Adam(a) => a.step(&mut primary.store, &mut primary.grads),
                }

                // Broadcast updated parameters; clear the partial sums the
                // tree left in non-primary stores.
                for m in rest.iter_mut() {
                    m.store.copy_values_from(&primary.store);
                    m.grads.zero();
                }
            }

            stats
                .epoch_losses
                .push((epoch_loss / bags.len() as f64) as f32);
            stats
                .epoch_wall_ns
                .push(epoch_start.elapsed().as_nanos() as u64);
            stats.epoch_reduce_ns.push(reduce_ns);
            match &mut self.opt {
                Optimizer::Sgd(s) => s.decay_lr(config.lr_decay),
                Optimizer::Adam(_) => {}
            }

            if let Some(c) = ckpt {
                if c.every > 0 && (epoch + 1) % c.every == 0 {
                    let state = self.opt_state();
                    save_checkpoint(&self.models[0], epoch + 1, &state, &c.path)
                        .expect("checkpoint write failed");
                }
            }
        }

        let elapsed = run_start.elapsed().as_secs_f64();
        stats.bags_per_sec = if elapsed > 0.0 {
            bags_done as f64 / elapsed
        } else {
            0.0
        };
        for (m, before) in self.models.iter().zip(&pool_before) {
            stats.pool.merge(&m.arena_stats().since(before));
        }
        stats
    }
}
