//! Fixed-order tree all-reduce over replica gradient stores.
//!
//! The reduction schedule is a pure function of the replica index: round
//! with stride *s* combines replica `k + s` into replica `k` for every
//! `k ≡ 0 (mod 2s)`, doubling `s` each round until the full sum sits in
//! replica 0. Within a round the pairs touch disjoint stores, so they may
//! run concurrently on the tensor thread pool — but which thread executes a
//! pair can never change *what* is added to *what*, and each pairwise
//! [`GradStore::add_from`] sums element-by-element in buffer order. The
//! combined gradient is therefore bit-identical across runs and across
//! `--threads` settings, which is what extends the PR 2 determinism
//! contract from inference to training.

use imre_nn::GradStore;
use imre_tensor::pool::par_map;

/// Raw-pointer wrapper so a round's disjoint pair reductions can run on the
/// pool (same pattern as `imre-tensor`'s kernel fan-out).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Reduces every store into `grads[0]` by fixed-order binary tree.
///
/// After the call `grads[0]` holds the element-wise sum of all inputs;
/// the other stores hold partial sums and must be zeroed before reuse
/// (the engine does this after each optimizer step).
///
/// The pair schedule for `n` replicas, in rounds:
/// `s=1: (0,1) (2,3) (4,5) …` → `s=2: (0,2) (4,6) …` → `s=4: (0,4) …`
/// Odd counts simply leave the unpaired tail store for a later round, so
/// any `n ≥ 1` reduces completely.
pub fn tree_all_reduce(grads: &mut [&mut GradStore]) {
    let n = grads.len();
    let mut stride = 1;
    while stride < n {
        let pairs: Vec<(usize, usize)> = (0..n)
            .step_by(2 * stride)
            .filter(|k| k + stride < n)
            .map(|k| (k, k + stride))
            .collect();
        let base = SendPtr(grads.as_mut_ptr());
        let base = &base;
        par_map(pairs.len(), |p| {
            let (dst, src) = pairs[p];
            // SAFETY: within a round every pair is disjoint (dst indices are
            // multiples of 2·stride, src = dst + stride), so each task has
            // exclusive access to its two slots.
            unsafe {
                let d: &mut GradStore = &mut *base.0.add(dst);
                let s: &GradStore = &*base.0.add(src);
                d.add_from(s);
            }
        });
        stride *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_nn::ParamStore;
    use imre_tensor::Tensor;

    /// Integer-valued floats sum exactly, so the tree must match the plain
    /// element-wise total bit-for-bit here, at every replica count.
    #[test]
    fn tree_sums_exactly_for_integer_grads() {
        for n in 1..=9usize {
            let mut params = ParamStore::new();
            let ids = [params.zeros("p0", &[3]), params.zeros("p1", &[2, 2])];
            let mut stores: Vec<GradStore> = (0..n)
                .map(|r| {
                    let mut g = GradStore::zeros_like(&params);
                    for &pid in &ids {
                        let shape = params.get(pid).shape().to_vec();
                        let len: usize = shape.iter().product();
                        let vals: Vec<f32> = (0..len).map(|j| (r * 10 + j) as f32).collect();
                        g.accumulate(pid, &Tensor::from_vec(vals, &shape));
                    }
                    g
                })
                .collect();
            let mut refs: Vec<&mut GradStore> = stores.iter_mut().collect();
            tree_all_reduce(&mut refs);
            for &pid in &ids {
                let len = params.get(pid).shape().iter().product::<usize>();
                let want: Vec<f32> = (0..len)
                    .map(|j| (0..n).map(|r| (r * 10 + j) as f32).sum())
                    .collect();
                assert_eq!(stores[0].get(pid).data(), &want[..], "n={n}");
            }
        }
    }
}
