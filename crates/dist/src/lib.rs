//! # imre-dist
//!
//! Deterministic data-parallel training for the imre reproduction
//! (DESIGN.md §4f), built on the `imre-tensor` thread pool (PR 2) and the
//! per-model buffer arenas (PR 4):
//!
//! * [`engine`] — [`DataParallel`]: shards each bag mini-batch across R
//!   model replicas, runs forward/backward concurrently, combines
//!   gradients with a fixed-order tree all-reduce, and clips + steps the
//!   optimizer exactly once on the combined gradient. A fixed
//!   `(seed, replicas)` configuration trains to byte-identical parameters
//!   across runs and across `--threads` settings.
//! * [`allreduce`] — the fixed-order tree reduction itself (schedule a pure
//!   function of replica index, never of thread scheduling).
//! * [`checkpoint`] — the IMRC checkpoint format: epoch cursor + optimizer
//!   state + embedded IMRM model, written atomically (tmp + rename), so
//!   killed runs resume bit-identically at the last epoch boundary.
//! * [`runner`] — [`run_seeds`]: trains independent seeds concurrently with
//!   bounded parallelism, feeding `imre-eval`'s multi-seed averaging.

pub mod allreduce;
pub mod checkpoint;
pub mod engine;
pub mod runner;

pub use allreduce::tree_all_reduce;
pub use checkpoint::{load_checkpoint, save_checkpoint, Checkpoint, OptState};
pub use engine::{CheckpointCfg, DataParallel, DistStats, OptimizerKind};
pub use runner::run_seeds;
