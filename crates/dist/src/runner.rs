//! The second axis of parallelism: independent training runs (one per
//! seed) executed concurrently on OS threads.
//!
//! Each seed's run is already deterministic in isolation, so running K of
//! them side by side changes nothing about any individual result — results
//! come back in seed order regardless of which finished first. The
//! `max_parallel` bound caps memory (each concurrent run holds a full model
//! plus dataset-derived state); `0` means "all at once".

/// Runs `f(seed)` for every seed, at most `max_parallel` concurrently
/// (`0` = unbounded), returning results in input order.
///
/// Panics in `f` propagate to the caller after the wave completes.
pub fn run_seeds<T, F>(seeds: &[u64], max_parallel: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let cap = if max_parallel == 0 {
        seeds.len().max(1)
    } else {
        max_parallel
    };
    let f = &f;
    let mut out = Vec::with_capacity(seeds.len());
    for wave in seeds.chunks(cap) {
        let wave_results: Vec<T> = std::thread::scope(|s| {
            let handles: Vec<_> = wave.iter().map(|&seed| s.spawn(move || f(seed))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("seed run panicked"))
                .collect()
        });
        out.extend(wave_results);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_seed_order() {
        let seeds: Vec<u64> = (0..7).collect();
        for cap in [0usize, 1, 2, 7, 16] {
            let got = run_seeds(&seeds, cap, |s| s * 10);
            assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60], "cap={cap}");
        }
    }

    #[test]
    fn concurrency_is_bounded_by_cap() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let seeds: Vec<u64> = (0..8).collect();
        run_seeds(&seeds, 2, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn empty_seed_list_is_fine() {
        let got: Vec<u64> = run_seeds(&[], 4, |s| s);
        assert!(got.is_empty());
    }
}
