//! Checkpoint round-trips: a run killed at an epoch boundary and resumed
//! from its IMRC checkpoint must finish **bit-identical** to a run that was
//! never interrupted — for both SGD (decayed lr) and Adam (step clock +
//! moments).

mod common;

use common::Fixture;
use imre_core::persist::write_model;
use imre_dist::{load_checkpoint, save_checkpoint, CheckpointCfg, DataParallel, OptimizerKind};
use imre_tensor::pool::{with_pool, ThreadPool};

fn model_bytes(m: &imre_core::ReModel) -> Vec<u8> {
    let mut out = Vec::new();
    write_model(m, &mut out).unwrap();
    out
}

fn straight_run(fx: &Fixture, kind: OptimizerKind, epochs: usize, replicas: usize) -> Vec<u8> {
    let pool = ThreadPool::new(2);
    let tc = fx.tc(epochs, 21);
    with_pool(&pool, || {
        let mut e = DataParallel::new(fx.model(7), replicas, kind, tc.lr);
        e.train(&fx.bags, &fx.ctx(), &tc, 0, None);
        model_bytes(e.primary())
    })
}

fn interrupted_run(fx: &Fixture, kind: OptimizerKind, epochs: usize, replicas: usize) -> Vec<u8> {
    let pool = ThreadPool::new(2);
    let dir = std::env::temp_dir().join(format!("imre_dist_ckpt_{kind:?}_{replicas}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.imrc");

    // First half: train to the midpoint, checkpointing every epoch.
    let mid = epochs / 2;
    let mut tc = fx.tc(epochs, 21);
    tc.epochs = mid;
    let ckpt = CheckpointCfg {
        every: 1,
        path: path.clone(),
    };
    with_pool(&pool, || {
        let mut e = DataParallel::new(fx.model(7), replicas, kind, tc.lr);
        e.train(&fx.bags, &fx.ctx(), &tc, 0, Some(&ckpt));
    });

    // "Kill" the process: all in-memory state is dropped. Resume from disk.
    let ck = load_checkpoint(&path).unwrap();
    assert_eq!(ck.next_epoch, mid);
    let bytes = with_pool(&pool, || {
        let (mut e, start) = DataParallel::resume(ck, replicas);
        let tc = fx.tc(epochs, 21);
        e.train(&fx.bags, &fx.ctx(), &tc, start, None);
        model_bytes(e.primary())
    });
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn sgd_resume_is_bit_identical_to_uninterrupted_run() {
    let fx = Fixture::new(5);
    let a = straight_run(&fx, OptimizerKind::Sgd, 4, 2);
    let b = interrupted_run(&fx, OptimizerKind::Sgd, 4, 2);
    assert_eq!(a, b, "SGD resume must replay the uninterrupted trajectory");
}

#[test]
fn adam_resume_is_bit_identical_to_uninterrupted_run() {
    let fx = Fixture::new(5);
    let a = straight_run(&fx, OptimizerKind::Adam, 4, 2);
    let b = interrupted_run(&fx, OptimizerKind::Adam, 4, 2);
    assert_eq!(a, b, "Adam resume must restore the step clock and moments");
}

#[test]
fn checkpoint_format_roundtrips_optimizer_state() {
    use imre_dist::OptState;
    let fx = Fixture::new(5);
    let pool = ThreadPool::new(1);
    let tc = fx.tc(2, 3);
    let (steps, state, model) = with_pool(&pool, || {
        let mut e = DataParallel::new(fx.model(7), 1, OptimizerKind::Adam, 0.01);
        e.train(&fx.bags, &fx.ctx(), &tc, 0, None);
        (e.optimizer_steps().unwrap(), e.opt_state(), e.into_model())
    });
    let dir = std::env::temp_dir().join("imre_dist_ckpt_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rt.imrc");
    save_checkpoint(&model, 2, &state, &path).unwrap();
    let ck = load_checkpoint(&path).unwrap();
    assert_eq!(ck.next_epoch, 2);
    match (&ck.opt, &state) {
        (
            OptState::Adam { lr, t, m, v },
            OptState::Adam {
                lr: lr0,
                t: t0,
                m: m0,
                v: v0,
            },
        ) => {
            assert_eq!(lr, lr0);
            assert_eq!(*t, steps);
            assert_eq!(t, t0);
            for (a, b) in m.iter().zip(m0).chain(v.iter().zip(v0)) {
                assert_eq!(a.data(), b.data(), "moments must roundtrip bitwise");
            }
        }
        _ => panic!("expected Adam state on both sides"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn atomic_write_leaves_no_tmp_residue() {
    let fx = Fixture::new(5);
    let pool = ThreadPool::new(1);
    let tc = fx.tc(1, 3);
    let dir = std::env::temp_dir().join("imre_dist_ckpt_atomic");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("a.imrc");
    let ckpt = CheckpointCfg {
        every: 1,
        path: path.clone(),
    };
    with_pool(&pool, || {
        let mut e = DataParallel::new(fx.model(7), 1, OptimizerKind::Sgd, tc.lr);
        e.train(&fx.bags, &fx.ctx(), &tc, 0, Some(&ckpt));
    });
    assert!(path.exists());
    let mut tmp = path.clone().into_os_string();
    tmp.push(".tmp");
    assert!(
        !std::path::Path::new(&tmp).exists(),
        "tmp sibling must be renamed away"
    );
    std::fs::remove_file(&path).ok();
}
