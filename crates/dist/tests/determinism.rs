//! Engine-level determinism: a fixed `(seed, replicas)` training
//! configuration must produce **byte-identical** IMRM artifacts across
//! repeat runs and across thread-pool sizes — the acceptance criterion of
//! the data-parallel subsystem.

mod common;

use common::Fixture;
use imre_core::persist::write_model;
use imre_dist::{DataParallel, OptimizerKind};
use imre_tensor::pool::{with_pool, ThreadPool};

fn train_bytes(fx: &Fixture, replicas: usize, pool_threads: usize) -> Vec<u8> {
    let pool = ThreadPool::new(pool_threads);
    let tc = fx.tc(3, 11);
    let model = with_pool(&pool, || {
        let mut engine = DataParallel::new(fx.model(7), replicas, OptimizerKind::Sgd, tc.lr);
        engine.train(&fx.bags, &fx.ctx(), &tc, 0, None);
        engine.into_model()
    });
    let mut bytes = Vec::new();
    write_model(&model, &mut bytes).unwrap();
    bytes
}

#[test]
fn two_r4_runs_are_byte_identical() {
    let fx = Fixture::new(5);
    let a = train_bytes(&fx, 4, 4);
    let b = train_bytes(&fx, 4, 4);
    assert_eq!(a, b, "repeat --data-parallel 4 runs must match bytewise");
}

#[test]
fn r4_artifact_identical_at_1_and_4_pool_threads() {
    let fx = Fixture::new(5);
    let a = train_bytes(&fx, 4, 1);
    let b = train_bytes(&fx, 4, 4);
    assert_eq!(a, b, "--threads must not change the trained artifact");
}

#[test]
fn r1_engine_is_also_deterministic() {
    let fx = Fixture::new(9);
    let a = train_bytes(&fx, 1, 1);
    let b = train_bytes(&fx, 1, 4);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let fx = Fixture::new(5);
    let pool = ThreadPool::new(2);
    let bytes = |seed: u64| {
        let tc = fx.tc(2, seed);
        let model = with_pool(&pool, || {
            let mut e = DataParallel::new(fx.model(7), 2, OptimizerKind::Sgd, tc.lr);
            e.train(&fx.bags, &fx.ctx(), &tc, 0, None);
            e.into_model()
        });
        let mut out = Vec::new();
        write_model(&model, &mut out).unwrap();
        out
    };
    assert_ne!(bytes(11), bytes(12), "seed must matter");
}

#[test]
fn telemetry_is_populated() {
    let fx = Fixture::new(5);
    let pool = ThreadPool::new(2);
    let tc = fx.tc(2, 11);
    let stats = with_pool(&pool, || {
        let mut e = DataParallel::new(fx.model(7), 2, OptimizerKind::Sgd, tc.lr);
        e.train(&fx.bags, &fx.ctx(), &tc, 0, None)
    });
    assert_eq!(stats.epoch_losses.len(), 2);
    assert_eq!(stats.epoch_wall_ns.len(), 2);
    assert_eq!(stats.epoch_reduce_ns.len(), 2);
    assert!(stats.epoch_wall_ns.iter().all(|&ns| ns > 0));
    assert!(stats.bags_per_sec > 0.0);
    assert!(stats.reduce_share() >= 0.0 && stats.reduce_share() < 1.0);
    assert!(
        stats.pool.hits + stats.pool.misses > 0,
        "replica arenas must report buffer traffic"
    );
}
