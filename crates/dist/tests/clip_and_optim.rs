//! The clip-then-step audit (ISSUE 5 satellite): clipping must apply once
//! to the combined gradient — not per replica — and Adam's bias-correction
//! clock must advance once per optimizer step regardless of replica count.

mod common;

use common::Fixture;
use imre_dist::{DataParallel, OptimizerKind};
use imre_tensor::pool::{with_pool, ThreadPool};

/// R=1 and R=4 see the same per-bag gradients (dropout is a pure function
/// of `(seed, epoch, bag)`), so with a clip threshold low enough to trigger
/// on every batch the two trajectories must agree to FP-reassociation
/// tolerance. A per-replica clip bug (clipping shard gradients before the
/// reduce) shrinks the R=4 update by up to 4× and fails this immediately.
#[test]
fn r1_and_r4_updates_agree_under_aggressive_clipping() {
    let fx = Fixture::new(5);
    let pool = ThreadPool::new(4);
    let mut tc = fx.tc(2, 11);
    tc.clip_norm = 0.5; // low: clips virtually every combined gradient

    let train = |replicas: usize| {
        with_pool(&pool, || {
            let mut e = DataParallel::new(fx.model(7), replicas, OptimizerKind::Sgd, tc.lr);
            e.train(&fx.bags, &fx.ctx(), &tc, 0, None);
            e.into_model()
        })
    };
    let m1 = train(1);
    let m4 = train(4);

    let mut max_rel = 0.0f32;
    for (id, _, t1) in m1.store.iter() {
        let t4 = m4.store.get(id);
        for (&a, &b) in t1.data().iter().zip(t4.data()) {
            let rel = (a - b).abs() / a.abs().max(b.abs()).max(1e-3);
            max_rel = max_rel.max(rel);
        }
    }
    assert!(
        max_rel < 5e-2,
        "R=1 and R=4 diverged under clipping (max rel diff {max_rel}): \
         clipping is being applied per-replica or the step is duplicated"
    );
}

/// One Adam step per combined mini-batch: after E epochs over B bags with
/// batch size s, the step clock reads E·⌈B/s⌉ at any replica count.
#[test]
fn adam_step_count_advances_once_per_step_at_any_replica_count() {
    let fx = Fixture::new(5);
    let pool = ThreadPool::new(4);
    let tc = fx.tc(2, 11);
    let steps_per_epoch = fx.bags.len().div_ceil(tc.batch_size);
    let want = (tc.epochs * steps_per_epoch) as u64;

    for replicas in [1usize, 2, 4] {
        let got = with_pool(&pool, || {
            let mut e = DataParallel::new(fx.model(7), replicas, OptimizerKind::Adam, 0.01);
            e.train(&fx.bags, &fx.ctx(), &tc, 0, None);
            e.optimizer_steps().expect("Adam engine reports steps")
        });
        assert_eq!(
            got, want,
            "replicas={replicas}: Adam clock must tick once per optimizer step"
        );
    }
}

/// SGD engines report no Adam clock.
#[test]
fn sgd_engine_has_no_step_clock() {
    let fx = Fixture::new(5);
    let e = DataParallel::new(fx.model(7), 2, OptimizerKind::Sgd, 0.2);
    assert!(e.optimizer_steps().is_none());
}

/// The serial reference: the R=1 engine and `imre_core::train_model` use
/// different RNG disciplines by design, but both must actually learn.
#[test]
fn dist_training_reduces_loss() {
    let fx = Fixture::new(5);
    let pool = ThreadPool::new(4);
    let tc = fx.tc(6, 13);
    let stats = with_pool(&pool, || {
        let mut e = DataParallel::new(fx.model(7), 4, OptimizerKind::Sgd, tc.lr);
        e.train(&fx.bags, &fx.ctx(), &tc, 0, None)
    });
    assert!(
        stats.final_loss() < stats.epoch_losses[0] * 0.9,
        "losses {:?}",
        stats.epoch_losses
    );
}
