//! Property tests for the fixed-order tree all-reduce: the reduction must
//! be **bit-identical** on a 1-thread and a 4-thread pool for arbitrary
//! replica counts, buffer shapes, and gradient values — the determinism
//! contract the training engine is built on.

use imre_dist::tree_all_reduce;
use imre_nn::{GradStore, ParamStore};
use imre_tensor::pool::{with_pool, ThreadPool};
use imre_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

/// Builds `n` replica grad stores over the same parameter shapes, filled
/// with values drawn from `seed`.
fn replica_grads(n: usize, shapes: &[Vec<usize>], seed: u64) -> (ParamStore, Vec<GradStore>) {
    let mut params = ParamStore::new();
    let ids: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| params.zeros(&format!("p{i}"), s))
        .collect();
    let mut rng = TensorRng::seed(seed);
    let stores = (0..n)
        .map(|_| {
            let mut g = GradStore::zeros_like(&params);
            for (&id, shape) in ids.iter().zip(shapes) {
                g.accumulate(id, &Tensor::rand_uniform(shape, -2.0, 2.0, &mut rng));
            }
            g
        })
        .collect();
    (params, stores)
}

fn reduced_bits(n: usize, shapes: &[Vec<usize>], seed: u64, pool: &ThreadPool) -> Vec<Vec<f32>> {
    let (params, mut stores) = replica_grads(n, shapes, seed);
    with_pool(pool, || {
        let mut refs: Vec<&mut GradStore> = stores.iter_mut().collect();
        tree_all_reduce(&mut refs);
    });
    params
        .iter()
        .map(|(id, _, _)| stores[0].get(id).data().to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The combined gradient in replica 0 has the same bits no matter how
    // many pool threads executed the pair reductions.
    #[test]
    fn tree_reduce_bit_identical_on_1_and_4_threads(
        n in 1usize..9,
        rows in 1usize..24,
        cols in 1usize..24,
        extra in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let shapes = vec![vec![rows, cols], vec![extra]];
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        let a = reduced_bits(n, &shapes, seed, &p1);
        let b = reduced_bits(n, &shapes, seed, &p4);
        prop_assert_eq!(a, b);
    }

    // Same (n, shapes, seed) on the same pool: reduction is a pure
    // function of its inputs (repeat runs identical).
    #[test]
    fn tree_reduce_is_repeatable(
        n in 2usize..7,
        len in 1usize..100,
        seed in 0u64..10_000,
    ) {
        let shapes = vec![vec![len]];
        let p = ThreadPool::new(4);
        let a = reduced_bits(n, &shapes, seed, &p);
        let b = reduced_bits(n, &shapes, seed, &p);
        prop_assert_eq!(a, b);
    }
}
