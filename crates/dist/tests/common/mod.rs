//! Shared fixture for the dist integration tests: a small synthetic
//! dataset and a model builder. Mirrors `imre-eval`'s smoke preset without
//! creating a dev-dependency cycle (dist sits below eval in the crate DAG).

use imre_core::{
    entity_type_table, prepare_bags, BagContext, HyperParams, ModelSpec, PreparedBag, ReModel,
    TrainConfig,
};
use imre_corpus::{Dataset, DatasetConfig, SentenceGenConfig, WorldConfig};

pub fn smoke_dataset(seed: u64) -> Dataset {
    Dataset::generate(&DatasetConfig {
        name: "dist-smoke".into(),
        world: WorldConfig {
            n_relations: 4,
            entities_per_cluster: 6,
            facts_per_relation: 10,
            cluster_reuse_prob: 0.3,
            seed: seed ^ 0xd157,
        },
        sentence: SentenceGenConfig {
            noise_prob: 0.1,
            min_len: 6,
            max_len: 12,
        },
        train_fraction: 0.7,
        na_train: 8,
        na_test: 4,
        na_hard_fraction: 0.5,
        zipf_alpha: 2.0,
        max_sentences_per_bag: 6,
        seed,
    })
}

pub struct Fixture {
    pub bags: Vec<PreparedBag>,
    pub types: Vec<Vec<usize>>,
    pub hp: HyperParams,
    pub vocab: usize,
    pub relations: usize,
}

impl Fixture {
    pub fn new(seed: u64) -> Self {
        let ds = smoke_dataset(seed);
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let vocab = ds.vocab.len();
        let relations = ds.num_relations();
        Fixture {
            bags,
            types,
            hp,
            vocab,
            relations,
        }
    }

    pub fn ctx(&self) -> BagContext<'_> {
        BagContext {
            entity_embedding: None,
            entity_types: &self.types,
        }
    }

    pub fn model(&self, seed: u64) -> ReModel {
        ReModel::new(
            ModelSpec::pcnn_att(),
            &self.hp,
            self.vocab,
            self.relations,
            38,
            8,
            seed,
        )
    }

    pub fn tc(&self, epochs: usize, seed: u64) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed,
        }
    }
}
