//! # imre-graph
//!
//! The implicit-mutual-relation substrate (paper §III-A): builds the entity
//! proximity graph from unlabeled-corpus co-occurrence counts, embeds its
//! vertices with LINE (first + second order, negative sampling), and serves
//! the queries the rest of the system needs — per-entity vectors, the
//! mutual-relation difference `MR_ij = U_j − U_i`, nearest-neighbour lookups
//! for the paper's case study, and a PCA projection for Figure 8.
//!
//! ```
//! use imre_graph::{ProximityGraph, LineConfig, train_line, nearest};
//!
//! // co-occurrence counts from any unlabeled corpus
//! let counts = vec![((0usize, 1usize), 12u32), ((1, 2), 9), ((0, 2), 11)];
//! let graph = ProximityGraph::from_counts(counts, 3, 2);
//! let emb = train_line(&graph, &LineConfig { dim: 8, samples_per_epoch: 1_000, epochs: 1, ..Default::default() });
//! let mr = emb.mutual_relation(0, 1); // the paper's MR_ij
//! assert_eq!(mr.len(), 8);
//! let _similar = nearest(&emb, 0, 2);
//! ```

pub mod alias;
pub mod gnn;
pub mod knn;
pub mod line;
pub mod pca;
pub mod proximity;
pub mod refine;

pub use alias::AliasTable;
pub use gnn::{propagate, PropagationConfig};
pub use knn::{nearest, nearest_pairs};
pub use line::{train_line, EntityEmbedding, LineConfig};
pub use pca::pca_project;
pub use proximity::ProximityGraph;
pub use refine::{LineState, RefineConfig};
