//! Graph-convolutional smoothing of entity embeddings — the paper's stated
//! future work (§V: "we plan to utilize graph neural networks (GNNs) …
//! to model auxiliary side information", addressing vertices with few or no
//! edges).
//!
//! This module implements the simplest useful instance: symmetric-normalised
//! neighbourhood propagation (the message-passing core of GCN, without
//! trained weights):
//!
//! ```text
//! U' = (1 − λ) · U + λ · D^{-1/2} A D^{-1/2} U
//! ```
//!
//! iterated `hops` times. Low-degree vertices — whose LINE vectors are
//! undertrained — inherit their neighbourhood's semantics, which is exactly
//! the failure mode the paper's conclusion calls out.

use crate::line::EntityEmbedding;
use crate::proximity::ProximityGraph;
use imre_tensor::Tensor;

/// Configuration for [`propagate`].
#[derive(Debug, Clone, Copy)]
pub struct PropagationConfig {
    /// Mixing coefficient λ ∈ [0, 1]: 0 = no smoothing, 1 = pure
    /// neighbourhood average.
    pub lambda: f32,
    /// Number of propagation steps.
    pub hops: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            lambda: 0.5,
            hops: 2,
        }
    }
}

/// Smooths entity embeddings over the proximity graph.
///
/// Isolated vertices are left untouched. Rows are L2-normalised at the end
/// so downstream cosine queries stay comparable with raw LINE output.
///
/// # Panics
/// If the embedding and graph disagree on the number of entities, or
/// `lambda` is outside `[0, 1]`.
pub fn propagate(
    emb: &EntityEmbedding,
    graph: &ProximityGraph,
    config: &PropagationConfig,
) -> EntityEmbedding {
    assert_eq!(
        emb.len(),
        graph.n_vertices(),
        "propagate: embedding has {} entities, graph has {}",
        emb.len(),
        graph.n_vertices()
    );
    assert!(
        (0.0..=1.0).contains(&config.lambda),
        "propagate: lambda must be in [0, 1], got {}",
        config.lambda
    );
    let n = emb.len();
    let d = emb.dim();
    let mut current = emb.matrix().clone();

    // precompute D^{-1/2}
    let inv_sqrt_deg: Vec<f32> = (0..n)
        .map(|v| {
            let deg = graph.degree(v);
            if deg > 0.0 {
                1.0 / deg.sqrt()
            } else {
                0.0
            }
        })
        .collect();

    for _ in 0..config.hops {
        let mut next = Tensor::zeros(&[n, d]);
        for v in 0..n {
            let neighbors = graph.neighbors(v);
            if neighbors.is_empty() {
                next.row_mut(v).copy_from_slice(current.row(v));
                continue;
            }
            // message = Σ_u w_vu / (√d_v √d_u) · U_u
            let mut msg = vec![0.0f32; d];
            for &(u, w) in neighbors {
                let coef = w * inv_sqrt_deg[v] * inv_sqrt_deg[u];
                for (m, &x) in msg.iter_mut().zip(current.row(u)) {
                    *m += coef * x;
                }
            }
            let row = next.row_mut(v);
            for ((r, &old), m) in row.iter_mut().zip(current.row(v)).zip(msg) {
                *r = (1.0 - config.lambda) * old + config.lambda * m;
            }
        }
        current = next;
    }

    // renormalise rows
    for v in 0..n {
        let row = current.row_mut(v);
        let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in row {
                *x /= norm;
            }
        }
    }
    EntityEmbedding::from_matrix(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph(n: usize) -> ProximityGraph {
        let counts: Vec<((usize, usize), u32)> = (0..n - 1).map(|i| ((i, i + 1), 10)).collect();
        ProximityGraph::from_counts(counts, n, 1)
    }

    #[test]
    fn propagation_preserves_shape() {
        let g = chain_graph(5);
        let emb = EntityEmbedding::from_matrix(Tensor::eye(5));
        let out = propagate(&emb, &g, &PropagationConfig::default());
        assert_eq!(out.len(), 5);
        assert_eq!(out.dim(), 5);
    }

    #[test]
    fn neighbours_become_more_similar() {
        let g = chain_graph(4);
        // orthogonal starting vectors
        let emb = EntityEmbedding::from_matrix(Tensor::eye(4));
        let before = {
            let a = Tensor::from_vec(emb.vector(0).to_vec(), &[4]);
            let b = Tensor::from_vec(emb.vector(1).to_vec(), &[4]);
            a.cosine(&b)
        };
        let out = propagate(
            &emb,
            &g,
            &PropagationConfig {
                lambda: 0.5,
                hops: 2,
            },
        );
        let after = {
            let a = Tensor::from_vec(out.vector(0).to_vec(), &[4]);
            let b = Tensor::from_vec(out.vector(1).to_vec(), &[4]);
            a.cosine(&b)
        };
        assert!(
            after > before + 0.1,
            "smoothing should pull neighbours together: {before} → {after}"
        );
    }

    #[test]
    fn isolated_vertices_keep_direction() {
        let counts = vec![((0usize, 1usize), 5u32)]; // vertex 2 isolated
        let g = ProximityGraph::from_counts(counts, 3, 1);
        let emb = EntityEmbedding::from_matrix(Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 1.0, 3.0, 4.0],
            &[3, 2],
        ));
        let out = propagate(
            &emb,
            &g,
            &PropagationConfig {
                lambda: 0.7,
                hops: 3,
            },
        );
        // isolated vertex 2: same direction, unit norm
        let v = out.vector(2);
        assert!(
            (v[0] - 0.6).abs() < 1e-5 && (v[1] - 0.8).abs() < 1e-5,
            "{v:?}"
        );
    }

    #[test]
    fn lambda_zero_only_renormalises() {
        let g = chain_graph(3);
        let emb = EntityEmbedding::from_matrix(Tensor::from_vec(
            vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0],
            &[3, 2],
        ));
        let out = propagate(
            &emb,
            &g,
            &PropagationConfig {
                lambda: 0.0,
                hops: 3,
            },
        );
        assert!((out.vector(0)[0] - 1.0).abs() < 1e-6);
        assert!(out.vector(0)[1].abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "lambda must be in")]
    fn bad_lambda_panics() {
        let g = chain_graph(3);
        let emb = EntityEmbedding::from_matrix(Tensor::eye(3));
        let _ = propagate(
            &emb,
            &g,
            &PropagationConfig {
                lambda: 1.5,
                hops: 1,
            },
        );
    }
}
