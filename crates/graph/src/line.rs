//! LINE network embedding (Tang et al., WWW 2015) — the method the paper
//! uses (§III-A.2) to turn the entity proximity graph into entity vectors.
//!
//! Both proximities are trained with negative sampling and asynchronous SGD
//! over alias-sampled edges, exactly as in the reference implementation:
//!
//! * **first order** — `O₁ = −Σ w_ij log σ(uᵢ·uⱼ)`; both endpoints share one
//!   table.
//! * **second order** — `O₂ = −Σ w_ij log P(eⱼ|eᵢ)`, approximated with K
//!   negatives drawn from `P_n(v) ∝ deg(v)^{3/4}`; vertices have separate
//!   *vertex* and *context* tables.
//!
//! The final entity embedding is the concatenation of the first-order vector
//! and the second-order vertex vector (paper: "obtain the embedding vector
//! for a vertex by concatenating corresponding embedding vectors learned
//! from the two models").

use crate::proximity::ProximityGraph;
use imre_tensor::{sigmoid_scalar, Tensor};

/// LINE training hyperparameters.
#[derive(Debug, Clone)]
pub struct LineConfig {
    /// Total embedding width; half is first-order, half second-order.
    pub dim: usize,
    /// Negative samples per positive edge (paper follows LINE's K=5).
    pub negatives: usize,
    /// Edge samples per epoch.
    pub samples_per_epoch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            dim: 64,
            negatives: 5,
            samples_per_epoch: 100_000,
            epochs: 4,
            lr: 0.025,
            seed: 31,
        }
    }
}

/// Learned entity embeddings: `[n_vertices, dim]`.
pub struct EntityEmbedding {
    vectors: Tensor,
}

impl EntityEmbedding {
    /// The embedding matrix (`[n, dim]`).
    pub fn matrix(&self) -> &Tensor {
        &self.vectors
    }

    /// The embedding of one entity.
    pub fn vector(&self, entity: usize) -> &[f32] {
        self.vectors.row(entity)
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// Number of embedded entities.
    pub fn len(&self) -> usize {
        self.vectors.rows()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.rows() == 0
    }

    /// The paper's implicit-mutual-relation vector `MR_ij = U_j − U_i`.
    pub fn mutual_relation(&self, head: usize, tail: usize) -> Tensor {
        let mut out = Tensor::zeros(&[self.dim()]);
        self.mutual_relation_into(head, tail, &mut out);
        out
    }

    /// [`EntityEmbedding::mutual_relation`] into a caller-provided `[dim]`
    /// tensor (e.g. a pooled buffer on the serving hot path). Bit-identical
    /// to the allocating variant.
    ///
    /// # Panics
    /// If `out` does not hold exactly `dim` elements.
    pub fn mutual_relation_into(&self, head: usize, tail: usize, out: &mut Tensor) {
        assert_eq!(
            out.len(),
            self.dim(),
            "mutual_relation_into: destination holds {} elements, need {}",
            out.len(),
            self.dim()
        );
        let h = self.vectors.row(head);
        let t = self.vectors.row(tail);
        for ((o, &tj), &hj) in out.data_mut().iter_mut().zip(t).zip(h) {
            *o = tj - hj;
        }
    }

    /// Wraps a precomputed matrix (for tests and serialization round-trips).
    pub fn from_matrix(vectors: Tensor) -> Self {
        EntityEmbedding { vectors }
    }
}

/// Trains LINE on a proximity graph.
///
/// Vertices with no edges keep their random initial vectors (the paper notes
/// this failure mode in its future-work section; they are still usable, just
/// uninformative).
///
/// # Panics
/// If the graph has no edges or `config.dim < 2`.
pub fn train_line(graph: &ProximityGraph, config: &LineConfig) -> EntityEmbedding {
    assert!(graph.n_edges() > 0, "train_line: graph has no edges");
    assert!(config.dim >= 2, "train_line: dim must be at least 2");
    // The batch path is the streaming path run to completion: initialise the
    // live state, run the full schedule, snapshot. `LineState` preserves the
    // exact RNG draw order and update sequence of the original inline loop,
    // so this delegation is byte-identical (pinned by
    // `refine::tests::warm_start_matches_train_line_bitwise`).
    let mut state = crate::refine::LineState::init(graph, config);
    state.run_base_epochs(graph);
    state.into_embedding()
}

/// One negative-sampling SGD update where both vectors live in `table`.
pub(crate) fn sgd_pair(
    table: &mut Tensor,
    a: usize,
    b: usize,
    positive: bool,
    lr: f32,
    dim: usize,
) {
    let (va, vb) = two_rows(table, a, b, dim);
    let x: f32 = va.iter().zip(vb.iter()).map(|(&p, &q)| p * q).sum();
    let label = if positive { 1.0 } else { 0.0 };
    let g = lr * (label - sigmoid_scalar(x));
    for i in 0..dim {
        let da = g * vb[i];
        let db = g * va[i];
        va[i] += da;
        vb[i] += db;
    }
}

/// One update where the source lives in `vertex` and target in `context`.
pub(crate) fn sgd_cross(
    vertex: &mut Tensor,
    context: &mut Tensor,
    src: usize,
    dst: usize,
    positive: bool,
    lr: f32,
    dim: usize,
) {
    let vs = &mut vertex.data_mut()[src * dim..(src + 1) * dim];
    let cs = &mut context.data_mut()[dst * dim..(dst + 1) * dim];
    let x: f32 = vs.iter().zip(cs.iter()).map(|(&p, &q)| p * q).sum();
    let label = if positive { 1.0 } else { 0.0 };
    let g = lr * (label - sigmoid_scalar(x));
    for i in 0..dim {
        let dv = g * cs[i];
        let dc = g * vs[i];
        vs[i] += dv;
        cs[i] += dc;
    }
}

/// Disjoint mutable views of rows `a` and `b`.
///
/// # Panics
/// If `a == b` (callers exclude self-pairs).
fn two_rows(table: &mut Tensor, a: usize, b: usize, dim: usize) -> (&mut [f32], &mut [f32]) {
    assert_ne!(a, b, "two_rows: aliasing row");
    let data = table.data_mut();
    if a < b {
        let (lo, hi) = data.split_at_mut(b * dim);
        (&mut lo[a * dim..(a + 1) * dim], &mut hi[..dim])
    } else {
        let (lo, hi) = data.split_at_mut(a * dim);
        let (bslice, aslice) = (&mut lo[b * dim..(b + 1) * dim], &mut hi[..dim]);
        (aslice, bslice)
    }
}

pub(crate) fn normalize_rows(t: &mut Tensor) {
    let cols = t.cols();
    for row in t.data_mut().chunks_mut(cols) {
        let norm: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in row {
                *x /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense communities joined by a single weak bridge.
    fn two_community_graph() -> ProximityGraph {
        let mut counts = Vec::new();
        // community A: 0..6, community B: 6..12, all intra-pairs co-occur
        for a in 0..6usize {
            for b in (a + 1)..6 {
                counts.push(((a, b), 20u32));
            }
        }
        for a in 6..12usize {
            for b in (a + 1)..12 {
                counts.push(((a, b), 20u32));
            }
        }
        counts.push(((0, 6), 2)); // bridge
        ProximityGraph::from_counts(counts, 12, 2)
    }

    fn fast_config(seed: u64) -> LineConfig {
        LineConfig {
            dim: 16,
            negatives: 5,
            samples_per_epoch: 30_000,
            epochs: 2,
            lr: 0.05,
            seed,
        }
    }

    #[test]
    fn embedding_shape_and_finiteness() {
        let g = two_community_graph();
        let emb = train_line(&g, &fast_config(1));
        assert_eq!(emb.len(), 12);
        assert_eq!(emb.dim(), 16);
        assert!(emb.matrix().data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let g = two_community_graph();
        let emb = train_line(&g, &fast_config(2));
        // mean intra-community cosine must exceed inter-community cosine
        let cos = |a: usize, b: usize| {
            let va = Tensor::from_vec(emb.vector(a).to_vec(), &[16]);
            let vb = Tensor::from_vec(emb.vector(b).to_vec(), &[16]);
            va.cosine(&vb)
        };
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for a in 0..6 {
            for b in 0..6 {
                if a < b {
                    intra.push(cos(a, b));
                }
            }
            for b in 6..12 {
                inter.push(cos(a, b));
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&intra) > mean(&inter) + 0.2,
            "intra {} vs inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn mutual_relation_is_difference() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0], &[2, 2]);
        let emb = EntityEmbedding::from_matrix(m);
        let mr = emb.mutual_relation(0, 1);
        assert_eq!(mr.data(), &[2.0, 3.0]);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = two_community_graph();
        let cfg = LineConfig {
            samples_per_epoch: 5_000,
            epochs: 1,
            ..fast_config(7)
        };
        let a = train_line(&g, &cfg);
        let b = train_line(&g, &cfg);
        assert_eq!(a.matrix().data(), b.matrix().data());
    }

    #[test]
    fn rows_are_normalised_per_half() {
        let g = two_community_graph();
        let emb = train_line(&g, &fast_config(3));
        for v in 0..emb.len() {
            let row = emb.vector(v);
            let first: f32 = row[..8].iter().map(|x| x * x).sum::<f32>().sqrt();
            let second: f32 = row[8..].iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((first - 1.0).abs() < 1e-4, "first-order half norm {first}");
            assert!(
                (second - 1.0).abs() < 1e-4,
                "second-order half norm {second}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no edges")]
    fn empty_graph_panics() {
        let g = ProximityGraph::from_counts(Vec::<((usize, usize), u32)>::new(), 3, 1);
        let _ = train_line(&g, &fast_config(1));
    }

    #[test]
    fn two_rows_split_correctness() {
        let mut t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[3, 2]);
        {
            let (a, b) = two_rows(&mut t, 2, 0, 2);
            assert_eq!(a, &[4.0, 5.0]);
            assert_eq!(b, &[0.0, 1.0]);
            a[0] = 9.0;
        }
        assert_eq!(t.at(2, 0), 9.0);
    }
}
