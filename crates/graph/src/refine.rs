//! Online LINE refinement for streaming graph updates.
//!
//! [`train_line`](crate::train_line) is a frozen-corpus batch job: it
//! initialises fresh tables, runs its epochs, normalises, and throws the raw
//! (pre-normalisation) state away. Streaming ingestion needs the opposite
//! shape — keep the raw first-order / second-order tables alive, fold in
//! co-occurrence deltas as they arrive, and emit an embedding snapshot on
//! demand. [`LineState`] is that live state:
//!
//! * **Warm start** — [`LineState::init`] + [`LineState::run_base_epochs`]
//!   reproduce `train_line` bit for bit (the batch entry point now delegates
//!   here), so a stream can begin exactly where an offline build ended.
//! * **Delta-scoped work** — [`LineState::refine`] rebuilds the edge alias
//!   table only over the delta-touched edges and draws its SGD samples from
//!   them; the noise table is refreshed from the full updated degree
//!   distribution (O(n), cheap).
//! * **Vertex growth** — [`LineState::grow`] extends the tables for newly
//!   admitted entities, initialising each new vertex from the mean of its
//!   already-embedded neighbours (falling back to a seeded uniform row for
//!   vertices whose neighbours are all new too).
//! * **Replay determinism** — every refinement epoch draws from a SplitMix64
//!   stream derived from `(seed, update_epoch)`; growth rows derive from
//!   `(seed, vertex)`. Replaying the same delta sequence therefore produces
//!   byte-identical tables, independent of wall clock or thread count.
//!
//! Refinement is path-dependent by construction (SGD from a warm start), so
//! it is **not** partition-invariant: splitting a corpus into different delta
//! batches yields different (all byte-reproducible) refined tables. The
//! publish pipeline that must be partition-invariant uses a canonical
//! rebuild — `train_line` on the merged graph — instead; see DESIGN §4i.

use crate::alias::AliasTable;
use crate::line::{normalize_rows, sgd_cross, sgd_pair, EntityEmbedding, LineConfig};
use crate::proximity::ProximityGraph;
use imre_tensor::{Tensor, TensorRng};

/// Domain-separation constant for refinement RNG streams ("IMREREFN").
const REFINE_DOMAIN: u64 = 0x494d_5245_5245_464e;
/// Domain-separation constant for new-vertex initialisation ("IMREGROW").
const GROW_DOMAIN: u64 = 0x494d_5245_4752_4f57;

/// SplitMix64 finaliser — the same derived-stream discipline `imre-core`
/// uses for epoch shuffles and per-bag dropout (PR 5): one well-mixed `u64`
/// per `(seed, domain, index)` tuple, no sequential RNG state shared across
/// logical streams.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hyperparameters for one [`LineState::refine`] pass.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// SGD samples drawn over the touched edge set per pass.
    pub samples: usize,
    /// Constant learning rate (no decay schedule — refinement is a steady
    /// drip, not a cooling batch run).
    pub lr: f32,
    /// Negative samples per positive edge.
    pub negatives: usize,
}

impl RefineConfig {
    /// A refinement schedule scaled down from a batch config: 1/10 of an
    /// epoch's samples at 1/5 of the initial learning rate.
    pub fn from_line(config: &LineConfig) -> Self {
        RefineConfig {
            samples: (config.samples_per_epoch / 10).max(1),
            lr: config.lr * 0.2,
            negatives: config.negatives,
        }
    }
}

/// Live LINE training state: the raw first-order table and the second-order
/// vertex/context tables, before per-half normalisation.
pub struct LineState {
    first: Tensor,
    second_v: Tensor,
    second_c: Tensor,
    half: usize,
    config: LineConfig,
    /// RNG for the base (batch) epochs; refinement uses derived streams.
    base_rng: TensorRng,
    /// Number of completed [`LineState::refine`] passes.
    update_epoch: u64,
}

impl LineState {
    /// Allocates fresh tables exactly as `train_line` does: seed the RNG,
    /// draw `first` then `second_v` uniform in `±0.5/half`, zero `second_c`.
    ///
    /// # Panics
    /// If `config.dim < 2`.
    pub fn init(graph: &ProximityGraph, config: &LineConfig) -> Self {
        assert!(config.dim >= 2, "LineState: dim must be at least 2");
        let n = graph.n_vertices();
        let half = config.dim / 2;
        let mut rng = TensorRng::seed(config.seed);
        let init_bound = 0.5 / half as f32;
        let first = Tensor::rand_uniform(&[n, half], -init_bound, init_bound, &mut rng);
        let second_v = Tensor::rand_uniform(&[n, half], -init_bound, init_bound, &mut rng);
        let second_c = Tensor::zeros(&[n, half]);
        LineState {
            first,
            second_v,
            second_c,
            half,
            config: config.clone(),
            base_rng: rng,
            update_epoch: 0,
        }
    }

    /// Runs the full batch schedule (`epochs × samples_per_epoch` with linear
    /// learning-rate decay) — the body of `train_line`, continued on the
    /// RNG state left by [`LineState::init`].
    ///
    /// # Panics
    /// If the graph has no edges.
    pub fn run_base_epochs(&mut self, graph: &ProximityGraph) {
        assert!(graph.n_edges() > 0, "train_line: graph has no edges");
        let config = self.config.clone();
        let half = self.half;
        let edge_weights: Vec<f32> = graph.edges().iter().map(|&(_, _, w)| w).collect();
        let edge_table = AliasTable::new(&edge_weights);
        let noise_table = Self::noise_table(graph);

        let total_samples = (config.samples_per_epoch * config.epochs).max(1);
        let mut done = 0usize;
        for _epoch in 0..config.epochs {
            for _ in 0..config.samples_per_epoch {
                let progress = done as f32 / total_samples as f32;
                let lr = (config.lr * (1.0 - progress)).max(config.lr * 1e-4);
                done += 1;
                let edge = graph.edges()[edge_table.sample(&mut self.base_rng)];
                step(
                    &mut self.first,
                    &mut self.second_v,
                    &mut self.second_c,
                    edge,
                    done,
                    lr,
                    config.negatives,
                    half,
                    &noise_table,
                    &mut self.base_rng,
                );
            }
        }
    }

    /// One refinement pass over the delta-touched edge set.
    ///
    /// `touched` holds canonical `(u, v)` pairs (as returned by
    /// [`ProximityGraph::merge_counts`]); pairs without a surviving edge in
    /// `graph` (still under threshold) are skipped. The edge alias table is
    /// rebuilt over the touched edges only; the noise table over the full
    /// updated degree distribution. Samples draw from
    /// `TensorRng::seed(mix64(seed ⊕ DOMAIN ⊕ mix64(update_epoch)))`, so the
    /// pass depends only on `(seed, update_epoch, graph, touched)`.
    ///
    /// Returns the number of SGD samples applied (0 if no touched pair is an
    /// edge yet).
    pub fn refine(
        &mut self,
        graph: &ProximityGraph,
        touched: &[(usize, usize)],
        refine: &RefineConfig,
    ) -> usize {
        self.grow(graph);
        let edges = graph.edges();
        let mut touched_edges: Vec<(usize, usize, f32)> = Vec::with_capacity(touched.len());
        for &(u, v) in touched {
            if let Ok(i) = edges.binary_search_by(|&(a, b, _)| (a, b).cmp(&(u, v))) {
                touched_edges.push(edges[i]);
            }
        }
        self.update_epoch += 1;
        if touched_edges.is_empty() {
            return 0;
        }
        let weights: Vec<f32> = touched_edges.iter().map(|&(_, _, w)| w).collect();
        let edge_table = AliasTable::new(&weights);
        let noise_table = Self::noise_table(graph);
        let mut rng = TensorRng::seed(mix64(
            self.config.seed ^ REFINE_DOMAIN ^ mix64(self.update_epoch),
        ));
        let half = self.half;
        for i in 1..=refine.samples {
            let edge = touched_edges[edge_table.sample(&mut rng)];
            step(
                &mut self.first,
                &mut self.second_v,
                &mut self.second_c,
                edge,
                i,
                refine.lr,
                refine.negatives,
                half,
                &noise_table,
                &mut rng,
            );
        }
        refine.samples
    }

    /// Extends the tables to `graph.n_vertices()` rows, initialising each new
    /// vertex's `first` / `second_v` rows from the mean of its neighbours
    /// that already had rows (ids below the old length). A new vertex whose
    /// neighbours are all new too (or which is isolated) gets a seeded
    /// uniform row derived from `(seed, vertex)` — deterministic regardless
    /// of when the vertex arrived. `second_c` rows start at zero, as in the
    /// batch initialisation.
    pub fn grow(&mut self, graph: &ProximityGraph) {
        let old_n = self.first.rows();
        let n = graph.n_vertices();
        if n <= old_n {
            return;
        }
        let half = self.half;
        let init_bound = 0.5 / half as f32;
        let mean_or_seeded = |table: &Tensor, v: usize, domain: u64| -> Vec<f32> {
            let mut acc = vec![0.0f32; half];
            let mut known = 0usize;
            for &(u, _) in graph.neighbors(v) {
                if u < old_n {
                    for (a, &x) in acc.iter_mut().zip(table.row(u)) {
                        *a += x;
                    }
                    known += 1;
                }
            }
            if known > 0 {
                for a in &mut acc {
                    *a /= known as f32;
                }
                acc
            } else {
                let mut rng = TensorRng::seed(mix64(self.config.seed ^ domain ^ mix64(v as u64)));
                let row = Tensor::rand_uniform(&[half], -init_bound, init_bound, &mut rng);
                row.data().to_vec()
            }
        };
        let mut new_first = Vec::with_capacity((n - old_n) * half);
        let mut new_second = Vec::with_capacity((n - old_n) * half);
        for v in old_n..n {
            new_first.extend(mean_or_seeded(&self.first, v, GROW_DOMAIN));
            new_second.extend(mean_or_seeded(&self.second_v, v, GROW_DOMAIN ^ 1));
        }
        self.first = append_rows(&self.first, &new_first, half);
        self.second_v = append_rows(&self.second_v, &new_second, half);
        self.second_c = append_rows(&self.second_c, &vec![0.0; (n - old_n) * half], half);
    }

    fn noise_table(graph: &ProximityGraph) -> AliasTable {
        let degree_pow: Vec<f32> = (0..graph.n_vertices())
            .map(|v| graph.degree(v).powf(0.75))
            .collect();
        AliasTable::new(&degree_pow)
    }

    /// Number of completed refinement passes.
    pub fn update_epoch(&self) -> u64 {
        self.update_epoch
    }

    /// Number of vertices the tables currently cover.
    pub fn len(&self) -> usize {
        self.first.rows()
    }

    /// Whether the tables are empty.
    pub fn is_empty(&self) -> bool {
        self.first.rows() == 0
    }

    /// An embedding snapshot: per-half L2 normalisation then concatenation,
    /// exactly the finish `train_line` performs. Non-destructive — refinement
    /// can continue on the raw tables afterwards.
    pub fn embedding(&self) -> EntityEmbedding {
        let mut first = self.first.clone();
        let mut second_v = self.second_v.clone();
        normalize_rows(&mut first);
        normalize_rows(&mut second_v);
        EntityEmbedding::from_matrix(Tensor::concat_cols(&[&first, &second_v]))
    }

    /// [`LineState::embedding`] consuming the state (the batch path's exit).
    pub fn into_embedding(mut self) -> EntityEmbedding {
        normalize_rows(&mut self.first);
        normalize_rows(&mut self.second_v);
        EntityEmbedding::from_matrix(Tensor::concat_cols(&[&self.first, &self.second_v]))
    }
}

/// One alias-sampled SGD step: alternate the edge direction on step parity,
/// one positive + `negatives` negative updates on the shared first-order
/// table, same again across the vertex × context tables.
#[allow(clippy::too_many_arguments)]
fn step(
    first: &mut Tensor,
    second_v: &mut Tensor,
    second_c: &mut Tensor,
    (u, v, _): (usize, usize, f32),
    step_index: usize,
    lr: f32,
    negatives: usize,
    half: usize,
    noise_table: &AliasTable,
    rng: &mut TensorRng,
) {
    let (src, dst) = if step_index.is_multiple_of(2) {
        (u, v)
    } else {
        (v, u)
    };
    sgd_pair(first, src, dst, true, lr, half);
    for _ in 0..negatives {
        let neg = noise_table.sample(rng);
        if neg != src && neg != dst {
            sgd_pair(first, src, neg, false, lr, half);
        }
    }
    sgd_cross(second_v, second_c, src, dst, true, lr, half);
    for _ in 0..negatives {
        let neg = noise_table.sample(rng);
        if neg != dst {
            sgd_cross(second_v, second_c, src, neg, false, lr, half);
        }
    }
}

/// Returns a new `[rows + extra, half]` tensor with `extra` appended rows.
fn append_rows(table: &Tensor, extra: &[f32], half: usize) -> Tensor {
    debug_assert_eq!(extra.len() % half, 0);
    let mut data = Vec::with_capacity(table.data().len() + extra.len());
    data.extend_from_slice(table.data());
    data.extend_from_slice(extra);
    let rows = data.len() / half;
    Tensor::from_vec(data, &[rows, half])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::train_line;
    use std::collections::BTreeMap;

    fn counts() -> Vec<((usize, usize), u32)> {
        let mut c = Vec::new();
        for a in 0..5usize {
            for b in (a + 1)..5 {
                c.push(((a, b), 4 + (a + b) as u32));
            }
        }
        c
    }

    fn config() -> LineConfig {
        LineConfig {
            dim: 8,
            samples_per_epoch: 2_000,
            epochs: 2,
            ..Default::default()
        }
    }

    #[test]
    fn warm_start_matches_train_line_bitwise() {
        let g = ProximityGraph::from_counts(counts(), 5, 2);
        let batch = train_line(&g, &config());
        let mut state = LineState::init(&g, &config());
        state.run_base_epochs(&g);
        let live = state.embedding();
        assert_eq!(batch.matrix().data(), live.matrix().data());
    }

    #[test]
    fn refine_is_replay_reproducible() {
        let g0 = ProximityGraph::from_counts(counts(), 5, 2);
        let run = || {
            let mut acc = BTreeMap::new();
            ProximityGraph::merge_counts(&mut acc, counts());
            let mut state = LineState::init(&g0, &config());
            state.run_base_epochs(&g0);
            let rc = RefineConfig::from_line(&config());
            for delta in [
                vec![((0usize, 5usize), 9u32)],
                vec![((5, 6), 7), ((1, 5), 6)],
            ] {
                let touched = ProximityGraph::merge_counts(&mut acc, delta);
                let n = acc.keys().map(|&(_, b)| b + 1).max().unwrap();
                let g = ProximityGraph::from_merged_with(&acc, n, 2);
                state.refine(&g, &touched, &rc);
            }
            state.embedding()
        };
        let a = run();
        let b = run();
        assert_eq!(a.matrix().data(), b.matrix().data());
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn grow_initialises_new_vertex_from_neighbor_mean() {
        let g0 = ProximityGraph::from_counts(counts(), 5, 2);
        let mut state = LineState::init(&g0, &config());
        state.run_base_epochs(&g0);
        let before: Vec<Vec<f32>> = (0..5).map(|v| state.first.row(v).to_vec()).collect();
        // vertex 5 attaches to 0 and 1; vertex 6 attaches only to 5 (all-new
        // neighbourhood → seeded row)
        let mut all = counts();
        all.extend([((0, 5), 9u32), ((1, 5), 9), ((5, 6), 9)]);
        let g = ProximityGraph::from_counts(all, 7, 2);
        state.grow(&g);
        assert_eq!(state.len(), 7);
        let expected: Vec<f32> = before[0]
            .iter()
            .zip(&before[1])
            .map(|(&a, &b)| (a + b) / 2.0)
            .collect();
        assert_eq!(state.first.row(5), &expected[..]);
        // seeded fallback row: non-zero, bounded, deterministic
        let seeded = state.first.row(6).to_vec();
        assert!(seeded.iter().any(|&x| x != 0.0));
        assert!(seeded.iter().all(|&x| x.abs() <= 0.5 / 4.0 + 1e-6));
        let mut state2 = LineState::init(&g0, &config());
        state2.run_base_epochs(&g0);
        state2.grow(&g);
        assert_eq!(state2.first.row(6), &seeded[..]);
    }

    #[test]
    fn refine_with_no_surviving_edges_is_a_noop_sample_count() {
        let g = ProximityGraph::from_counts(counts(), 5, 2);
        let mut state = LineState::init(&g, &config());
        state.run_base_epochs(&g);
        let rc = RefineConfig::from_line(&config());
        // touched pair that never crossed the threshold → no edge to sample
        let applied = state.refine(&g, &[(0, 4000)], &rc);
        assert_eq!(applied, 0);
        assert_eq!(state.update_epoch(), 1);
    }

    #[test]
    fn distinct_update_epochs_draw_distinct_streams() {
        let g = ProximityGraph::from_counts(counts(), 5, 2);
        let rc = RefineConfig {
            samples: 500,
            lr: 0.01,
            negatives: 5,
        };
        let touched: Vec<(usize, usize)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        let mut state = LineState::init(&g, &config());
        state.run_base_epochs(&g);
        let e0 = state.embedding();
        state.refine(&g, &touched, &rc);
        let e1 = state.embedding();
        state.refine(&g, &touched, &rc);
        let e2 = state.embedding();
        assert_ne!(e0.matrix().data(), e1.matrix().data());
        assert_ne!(e1.matrix().data(), e2.matrix().data());
    }
}
