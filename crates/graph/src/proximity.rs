//! The entity proximity graph (paper §III-A.1).
//!
//! Vertices are entities; an undirected edge joins entities whose
//! co-occurrence count in the unlabeled corpus reaches a threshold, weighted
//! by the paper's normalisation
//!
//! ```text
//! w_ij = log(co_ij) / log(max_kl co_kl)
//! ```

/// A weighted undirected graph over `n_vertices` entities.
pub struct ProximityGraph {
    n_vertices: usize,
    /// Undirected edges `(u, v, w)` with `u < v`.
    edges: Vec<(usize, usize, f32)>,
    adjacency: Vec<Vec<(usize, f32)>>,
}

impl ProximityGraph {
    /// Builds the graph from co-occurrence counts.
    ///
    /// `counts` yields `((a, b), count)` pairs (any order, duplicates summed
    /// upstream); pairs below `threshold` are dropped, the rest become edges
    /// with the paper's log-normalised weight.
    ///
    /// # Panics
    /// If any endpoint is `≥ n_vertices`.
    pub fn from_counts<I>(counts: I, n_vertices: usize, threshold: u32) -> Self
    where
        I: IntoIterator<Item = ((usize, usize), u32)>,
    {
        let mut kept: Vec<((usize, usize), u32)> = counts
            .into_iter()
            .filter(|&((a, b), c)| a != b && c >= threshold)
            .collect();
        // Canonical edge order regardless of the input iterator's order
        // (counts typically come out of a HashMap): the edge list seeds the
        // LINE alias sampler, so its order must not vary per process.
        kept.sort_unstable();
        let max_count = kept.iter().map(|&(_, c)| c).max().unwrap_or(0);
        // log(1) = 0 would zero out minimum-weight edges when max == 1; the
        // +1 smoothing keeps every retained edge strictly positive while
        // preserving the paper's log-ratio shape.
        let denom = ((max_count + 1) as f32).ln();
        let mut edges = Vec::with_capacity(kept.len());
        let mut adjacency = vec![Vec::new(); n_vertices];
        for ((a, b), c) in kept {
            assert!(
                a < n_vertices && b < n_vertices,
                "ProximityGraph: vertex out of range"
            );
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            let w = ((c + 1) as f32).ln() / denom;
            edges.push((u, v, w));
            adjacency[u].push((v, w));
            adjacency[v].push((u, w));
        }
        ProximityGraph {
            n_vertices,
            edges,
            adjacency,
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edge list `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> &[(usize, usize, f32)] {
        &self.edges
    }

    /// Neighbours of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, f32)] {
        &self.adjacency[v]
    }

    /// Weighted degree of `v`.
    pub fn degree(&self, v: usize) -> f32 {
        self.adjacency[v].iter().map(|&(_, w)| w).sum()
    }

    /// Number of neighbours of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Vertices adjacent to both `a` and `b` — the paper's Figure 3 notion
    /// of topological similarity ("semantic proximity can be evaluated by
    /// the number of common neighbors").
    pub fn common_neighbors(&self, a: usize, b: usize) -> Vec<usize> {
        let set: std::collections::HashSet<usize> =
            self.adjacency[a].iter().map(|&(v, _)| v).collect();
        self.adjacency[b]
            .iter()
            .map(|&(v, _)| v)
            .filter(|v| set.contains(v))
            .collect()
    }

    /// Jaccard similarity of the two vertices' neighbour sets.
    pub fn neighborhood_jaccard(&self, a: usize, b: usize) -> f32 {
        let sa: std::collections::HashSet<usize> =
            self.adjacency[a].iter().map(|&(v, _)| v).collect();
        let sb: std::collections::HashSet<usize> =
            self.adjacency[b].iter().map(|&(v, _)| v).collect();
        let inter = sa.intersection(&sb).count();
        let union = sa.union(&sb).count();
        if union == 0 {
            0.0
        } else {
            inter as f32 / union as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> ProximityGraph {
        ProximityGraph::from_counts(
            vec![
                ((0, 1), 10),
                ((1, 2), 5),
                ((0, 2), 2),
                ((2, 3), 1),
                ((3, 3), 50),
            ],
            4,
            2,
        )
    }

    #[test]
    fn threshold_filters_edges() {
        let g = graph();
        // (2,3) has count 1 < threshold 2; (3,3) is a self-loop
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn edge_order_independent_of_input_order() {
        // Counts usually come out of a HashMap, whose iteration order varies
        // per process; the edge list (which seeds the LINE alias sampler)
        // must come out canonical either way.
        let counts = vec![((0, 1), 10), ((1, 2), 5), ((0, 2), 2), ((2, 3), 3)];
        let mut reversed = counts.clone();
        reversed.reverse();
        let a = ProximityGraph::from_counts(counts, 4, 2);
        let b = ProximityGraph::from_counts(reversed, 4, 2);
        assert_eq!(a.edges(), b.edges());
        for v in 0..4 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn weights_normalised_to_unit_max() {
        let g = graph();
        let max_w = g.edges().iter().map(|&(_, _, w)| w).fold(0.0f32, f32::max);
        assert!((max_w - 1.0).abs() < 1e-6, "max weight {max_w}");
        for &(_, _, w) in g.edges() {
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn weight_monotone_in_count() {
        let g = graph();
        let w01 = g.neighbors(0).iter().find(|&&(v, _)| v == 1).unwrap().1;
        let w02 = g.neighbors(0).iter().find(|&&(v, _)| v == 2).unwrap().1;
        assert!(w01 > w02, "higher count must mean higher weight");
    }

    #[test]
    fn adjacency_symmetric() {
        let g = graph();
        for &(u, v, w) in g.edges() {
            assert!(g
                .neighbors(u)
                .iter()
                .any(|&(x, wx)| x == v && (wx - w).abs() < 1e-7));
            assert!(g
                .neighbors(v)
                .iter()
                .any(|&(x, wx)| x == u && (wx - w).abs() < 1e-7));
        }
    }

    #[test]
    fn common_neighbors_found() {
        let g = graph();
        // 0 and 1 share neighbour 2 (edges 0-2 and 1-2)
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let g = graph();
        let j = g.neighborhood_jaccard(0, 1);
        assert!((0.0..=1.0).contains(&j));
        // isolated vertex against itself: empty sets → 0 by convention
        assert_eq!(g.neighborhood_jaccard(3, 3), 0.0);
    }

    #[test]
    fn degree_is_weight_sum() {
        let g = graph();
        let manual: f32 = g.neighbors(1).iter().map(|&(_, w)| w).sum();
        assert!((g.degree(1) - manual).abs() < 1e-7);
    }
}
