//! The entity proximity graph (paper §III-A.1).
//!
//! Vertices are entities; an undirected edge joins entities whose
//! co-occurrence count in the unlabeled corpus reaches a threshold, weighted
//! by the paper's normalisation
//!
//! ```text
//! w_ij = log(co_ij) / log(max_kl co_kl)
//! ```
//!
//! Two build paths share one assembly routine so their output is
//! byte-identical: the offline [`ProximityGraph::from_counts`] (sort a frozen
//! count table once) and the streaming path
//! ([`ProximityGraph::merge_counts`] into a canonical [`BTreeMap`], then
//! [`ProximityGraph::from_merged`]), used by `imre-stream`'s incremental
//! builder.

use std::collections::BTreeMap;

/// A weighted undirected graph over `n_vertices` entities.
pub struct ProximityGraph {
    n_vertices: usize,
    /// Undirected edges `(u, v, w)` with `u < v`.
    edges: Vec<(usize, usize, f32)>,
    adjacency: Vec<Vec<(usize, f32)>>,
}

impl ProximityGraph {
    /// Builds the graph from co-occurrence counts.
    ///
    /// `counts` yields `((a, b), count)` pairs (any order, duplicates summed
    /// upstream); pairs below `threshold` are dropped, the rest become edges
    /// with the paper's log-normalised weight.
    ///
    /// # Panics
    /// If any endpoint is `≥ n_vertices`.
    pub fn from_counts<I>(counts: I, n_vertices: usize, threshold: u32) -> Self
    where
        I: IntoIterator<Item = ((usize, usize), u32)>,
    {
        let mut kept: Vec<((usize, usize), u32)> = counts
            .into_iter()
            .filter(|&((a, b), c)| a != b && c >= threshold)
            .collect();
        // Canonical edge order regardless of the input iterator's order
        // (counts typically come out of a HashMap): the edge list seeds the
        // LINE alias sampler, so its order must not vary per process.
        kept.sort_unstable();
        Self::assemble(kept, n_vertices)
    }

    /// Builds the graph from an already-merged canonical count table (as
    /// produced by [`ProximityGraph::merge_counts`]).
    ///
    /// Byte-identical to [`ProximityGraph::from_counts`] over the same
    /// counts: the map's keys are canonical `(min, max)` pairs, so its sorted
    /// iteration order equals the sort `from_counts` performs.
    pub fn from_merged(merged: &BTreeMap<(usize, usize), u32>, threshold: u32) -> Self {
        let n_vertices = merged.keys().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(0);
        Self::from_merged_with(merged, n_vertices, threshold)
    }

    /// [`ProximityGraph::from_merged`] with an explicit vertex count (the
    /// streaming path tracks admitted-but-isolated entities, so its vertex
    /// set can exceed the largest endpoint in the table).
    pub fn from_merged_with(
        merged: &BTreeMap<(usize, usize), u32>,
        n_vertices: usize,
        threshold: u32,
    ) -> Self {
        let kept: Vec<((usize, usize), u32)> = merged
            .iter()
            .filter(|&(&(a, b), &c)| a != b && c >= threshold)
            .map(|(&k, &c)| (k, c))
            .collect();
        Self::assemble(kept, n_vertices)
    }

    /// Merges a count delta into a canonical accumulator and reports which
    /// canonical pairs it touched.
    ///
    /// Keys are normalised to `(min, max)`, self-pairs are dropped, and
    /// duplicate pairs sum. The returned touched list is sorted and
    /// deduplicated, so downstream incremental maintenance is independent of
    /// the delta iterator's order — the hash-order-leak class of bug the
    /// offline path's `sort_unstable` guards against.
    pub fn merge_counts<I>(acc: &mut BTreeMap<(usize, usize), u32>, delta: I) -> Vec<(usize, usize)>
    where
        I: IntoIterator<Item = ((usize, usize), u32)>,
    {
        let mut touched = Vec::new();
        for ((a, b), c) in delta {
            if a == b || c == 0 {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            *acc.entry(key).or_insert(0) += c;
            touched.push(key);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Assembles a graph from a pre-filtered, canonically sorted count list.
    /// Both build paths funnel through here so the edge list and adjacency
    /// lists (which seed the LINE alias sampler) come out identical.
    fn assemble(kept: Vec<((usize, usize), u32)>, n_vertices: usize) -> Self {
        let max_count = kept.iter().map(|&(_, c)| c).max().unwrap_or(0);
        // log(1) = 0 would zero out minimum-weight edges when max == 1; the
        // +1 smoothing keeps every retained edge strictly positive while
        // preserving the paper's log-ratio shape.
        let denom = ((max_count + 1) as f32).ln();
        let mut edges = Vec::with_capacity(kept.len());
        let mut adjacency = vec![Vec::new(); n_vertices];
        for ((a, b), c) in kept {
            assert!(
                a < n_vertices && b < n_vertices,
                "ProximityGraph: vertex out of range"
            );
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            let w = ((c + 1) as f32).ln() / denom;
            edges.push((u, v, w));
            adjacency[u].push((v, w));
            adjacency[v].push((u, w));
        }
        ProximityGraph {
            n_vertices,
            edges,
            adjacency,
        }
    }

    /// Reconstructs a graph from a canonical edge list (`u < v`, sorted
    /// lexicographically, weights already normalised).
    ///
    /// The adjacency lists are derived exactly as [`ProximityGraph::assemble`]
    /// derives them, so a graph round-tripped through its own
    /// [`ProximityGraph::edges`] is byte-identical. This is the hand-off used
    /// by `imre-stream`'s `IncrementalProximityGraph`, which maintains the
    /// edge list in place.
    ///
    /// # Panics
    /// If an edge is out of canonical order or out of vertex range.
    pub fn from_parts(n_vertices: usize, edges: Vec<(usize, usize, f32)>) -> Self {
        let mut adjacency = vec![Vec::new(); n_vertices];
        let mut prev: Option<(usize, usize)> = None;
        for &(u, v, w) in &edges {
            assert!(u < v, "ProximityGraph::from_parts: edge not canonical");
            assert!(v < n_vertices, "ProximityGraph::from_parts: out of range");
            if let Some(p) = prev {
                assert!(p < (u, v), "ProximityGraph::from_parts: edges unsorted");
            }
            prev = Some((u, v));
            adjacency[u].push((v, w));
            adjacency[v].push((u, w));
        }
        ProximityGraph {
            n_vertices,
            edges,
            adjacency,
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edge list `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> &[(usize, usize, f32)] {
        &self.edges
    }

    /// Neighbours of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, f32)] {
        &self.adjacency[v]
    }

    /// Weighted degree of `v`.
    pub fn degree(&self, v: usize) -> f32 {
        self.adjacency[v].iter().map(|&(_, w)| w).sum()
    }

    /// Number of neighbours of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Vertices adjacent to both `a` and `b` — the paper's Figure 3 notion
    /// of topological similarity ("semantic proximity can be evaluated by
    /// the number of common neighbors").
    pub fn common_neighbors(&self, a: usize, b: usize) -> Vec<usize> {
        let set: std::collections::HashSet<usize> =
            self.adjacency[a].iter().map(|&(v, _)| v).collect();
        self.adjacency[b]
            .iter()
            .map(|&(v, _)| v)
            .filter(|v| set.contains(v))
            .collect()
    }

    /// Jaccard similarity of the two vertices' neighbour sets.
    pub fn neighborhood_jaccard(&self, a: usize, b: usize) -> f32 {
        let sa: std::collections::HashSet<usize> =
            self.adjacency[a].iter().map(|&(v, _)| v).collect();
        let sb: std::collections::HashSet<usize> =
            self.adjacency[b].iter().map(|&(v, _)| v).collect();
        let inter = sa.intersection(&sb).count();
        let union = sa.union(&sb).count();
        if union == 0 {
            0.0
        } else {
            inter as f32 / union as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> ProximityGraph {
        ProximityGraph::from_counts(
            vec![
                ((0, 1), 10),
                ((1, 2), 5),
                ((0, 2), 2),
                ((2, 3), 1),
                ((3, 3), 50),
            ],
            4,
            2,
        )
    }

    #[test]
    fn threshold_filters_edges() {
        let g = graph();
        // (2,3) has count 1 < threshold 2; (3,3) is a self-loop
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn edge_order_independent_of_input_order() {
        // Counts usually come out of a HashMap, whose iteration order varies
        // per process; the edge list (which seeds the LINE alias sampler)
        // must come out canonical either way.
        let counts = vec![((0, 1), 10), ((1, 2), 5), ((0, 2), 2), ((2, 3), 3)];
        let mut reversed = counts.clone();
        reversed.reverse();
        let a = ProximityGraph::from_counts(counts, 4, 2);
        let b = ProximityGraph::from_counts(reversed, 4, 2);
        assert_eq!(a.edges(), b.edges());
        for v in 0..4 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn weights_normalised_to_unit_max() {
        let g = graph();
        let max_w = g.edges().iter().map(|&(_, _, w)| w).fold(0.0f32, f32::max);
        assert!((max_w - 1.0).abs() < 1e-6, "max weight {max_w}");
        for &(_, _, w) in g.edges() {
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn weight_monotone_in_count() {
        let g = graph();
        let w01 = g.neighbors(0).iter().find(|&&(v, _)| v == 1).unwrap().1;
        let w02 = g.neighbors(0).iter().find(|&&(v, _)| v == 2).unwrap().1;
        assert!(w01 > w02, "higher count must mean higher weight");
    }

    #[test]
    fn adjacency_symmetric() {
        let g = graph();
        for &(u, v, w) in g.edges() {
            assert!(g
                .neighbors(u)
                .iter()
                .any(|&(x, wx)| x == v && (wx - w).abs() < 1e-7));
            assert!(g
                .neighbors(v)
                .iter()
                .any(|&(x, wx)| x == u && (wx - w).abs() < 1e-7));
        }
    }

    #[test]
    fn common_neighbors_found() {
        let g = graph();
        // 0 and 1 share neighbour 2 (edges 0-2 and 1-2)
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let g = graph();
        let j = g.neighborhood_jaccard(0, 1);
        assert!((0.0..=1.0).contains(&j));
        // isolated vertex against itself: empty sets → 0 by convention
        assert_eq!(g.neighborhood_jaccard(3, 3), 0.0);
    }

    fn assert_graphs_bitwise_equal(a: &ProximityGraph, b: &ProximityGraph) {
        assert_eq!(a.n_vertices(), b.n_vertices());
        assert_eq!(a.n_edges(), b.n_edges());
        for (&(u1, v1, w1), &(u2, v2, w2)) in a.edges().iter().zip(b.edges()) {
            assert_eq!((u1, v1, w1.to_bits()), (u2, v2, w2.to_bits()));
        }
        for v in 0..a.n_vertices() {
            let na: Vec<(usize, u32)> = a
                .neighbors(v)
                .iter()
                .map(|&(u, w)| (u, w.to_bits()))
                .collect();
            let nb: Vec<(usize, u32)> = b
                .neighbors(v)
                .iter()
                .map(|&(u, w)| (u, w.to_bits()))
                .collect();
            assert_eq!(na, nb, "adjacency of {v} differs");
        }
    }

    #[test]
    fn merged_path_matches_from_counts_bitwise() {
        let counts = vec![
            ((1, 0), 10u32),
            ((1, 2), 5),
            ((2, 0), 2),
            ((3, 2), 3),
            ((3, 3), 50),
            ((0, 1), 4), // duplicate of (1,0) — summed by the merge path
        ];
        let mut acc = std::collections::BTreeMap::new();
        let touched = ProximityGraph::merge_counts(&mut acc, counts.clone());
        assert_eq!(touched, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
        // from_counts expects duplicates pre-summed upstream
        let summed = vec![((0, 1), 14u32), ((1, 2), 5), ((0, 2), 2), ((2, 3), 3)];
        let offline = ProximityGraph::from_counts(summed, 4, 2);
        let merged = ProximityGraph::from_merged(&acc, 2);
        assert_graphs_bitwise_equal(&offline, &merged);
    }

    #[test]
    fn merge_counts_touched_independent_of_delta_order() {
        let delta = vec![((3, 1), 2u32), ((0, 2), 1), ((2, 0), 4), ((1, 3), 1)];
        let mut fwd = std::collections::BTreeMap::new();
        let mut rev = std::collections::BTreeMap::new();
        let mut reversed = delta.clone();
        reversed.reverse();
        let ta = ProximityGraph::merge_counts(&mut fwd, delta);
        let tb = ProximityGraph::merge_counts(&mut rev, reversed);
        assert_eq!(ta, tb);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn from_parts_roundtrip_is_identity() {
        let g = graph();
        let rebuilt = ProximityGraph::from_parts(g.n_vertices(), g.edges().to_vec());
        assert_graphs_bitwise_equal(&g, &rebuilt);
    }

    #[test]
    fn from_merged_with_keeps_isolated_vertices() {
        let mut acc = std::collections::BTreeMap::new();
        ProximityGraph::merge_counts(&mut acc, vec![((0, 1), 5u32)]);
        let g = ProximityGraph::from_merged_with(&acc, 6, 2);
        assert_eq!(g.n_vertices(), 6);
        assert_eq!(g.out_degree(5), 0);
    }

    #[test]
    #[should_panic(expected = "edges unsorted")]
    fn from_parts_rejects_unsorted_edges() {
        let _ = ProximityGraph::from_parts(3, vec![(1, 2, 0.5), (0, 1, 0.5)]);
    }

    #[test]
    fn degree_is_weight_sum() {
        let g = graph();
        let manual: f32 = g.neighbors(1).iter().map(|&(_, w)| w).sum();
        assert!((g.degree(1) - manual).abs() < 1e-7);
    }
}
