//! Principal-component projection (power iteration with deflation).
//!
//! The paper's Figure 8 projects entity embeddings into 3-D with the
//! TensorFlow Embedding Projector; this module provides the equivalent
//! PCA so the case-study bench can print 3-D coordinates.

use imre_tensor::{Tensor, TensorRng};

/// Projects the rows of `x` (`[n, d]`) onto the top `k` principal
/// components, returning `[n, k]` scores.
///
/// Uses power iteration with Hotelling deflation on the `d × d` covariance;
/// for the embedding widths used here (≤ 128) this is exact enough and
/// dependency-free.
///
/// # Panics
/// If `k > d` or `x` has fewer than 2 rows.
pub fn pca_project(x: &Tensor, k: usize, seed: u64) -> Tensor {
    let (n, d) = (x.rows(), x.cols());
    assert!(n >= 2, "pca_project: need at least 2 rows");
    assert!(k <= d, "pca_project: k={k} exceeds dimensionality {d}");

    // centre
    let mean = x.mean_rows();
    let centered = {
        let mut c = x.clone();
        for r in 0..n {
            for (v, &m) in c.row_mut(r).iter_mut().zip(mean.data()) {
                *v -= m;
            }
        }
        c
    };

    // covariance = Xᵀ X / (n − 1)
    let mut cov = centered.matmul_tn(&centered);
    cov.map_in_place(|v| v / (n as f32 - 1.0));

    let mut rng = TensorRng::seed(seed);
    let mut components: Vec<Tensor> = Vec::with_capacity(k);
    let mut deflated = cov;
    for _ in 0..k {
        let mut v = Tensor::rand_uniform(&[d], -1.0, 1.0, &mut rng);
        // power iteration
        for _ in 0..200 {
            let next = deflated.matvec(&v);
            let norm = next.norm_l2();
            if norm < 1e-12 {
                break;
            }
            v = next.scale(1.0 / norm);
        }
        // deflate: C ← C − λ v vᵀ
        let lambda = v.dot(&deflated.matvec(&v));
        let outer = v.outer(&v);
        deflated = deflated.sub(&outer.scale(lambda));
        components.push(v);
    }

    // scores = centered · V
    let mut out = Tensor::zeros(&[n, k]);
    for r in 0..n {
        let row = Tensor::from_vec(centered.row(r).to_vec(), &[d]);
        for (c, comp) in components.iter().enumerate() {
            *out.at_mut(r, c) = row.dot(comp);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points spread mostly along (1,1)/√2 with small orthogonal noise.
        let mut rng = TensorRng::seed(5);
        let mut rows = Vec::new();
        for _ in 0..200 {
            let t = rng.uniform(-5.0, 5.0);
            let noise = rng.uniform(-0.1, 0.1);
            rows.push(vec![t + noise, t - noise]);
        }
        let x = Tensor::from_rows(&rows);
        let proj = pca_project(&x, 2, 1);
        // variance of PC1 scores dwarfs PC2
        let var = |c: usize| {
            let vals: Vec<f32> = (0..200).map(|r| proj.at(r, c)).collect();
            let m = vals.iter().sum::<f32>() / 200.0;
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 200.0
        };
        assert!(
            var(0) > var(1) * 100.0,
            "PC1 var {} PC2 var {}",
            var(0),
            var(1)
        );
    }

    #[test]
    fn projection_shape() {
        let mut rng = TensorRng::seed(6);
        let x = Tensor::rand_uniform(&[10, 8], -1.0, 1.0, &mut rng);
        let proj = pca_project(&x, 3, 2);
        assert_eq!(proj.shape(), &[10, 3]);
        assert!(proj.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scores_are_centered() {
        let mut rng = TensorRng::seed(7);
        let x = Tensor::rand_uniform(&[50, 4], 5.0, 9.0, &mut rng);
        let proj = pca_project(&x, 2, 3);
        for c in 0..2 {
            let mean: f32 = (0..50).map(|r| proj.at(r, c)).sum::<f32>() / 50.0;
            assert!(mean.abs() < 1e-3, "PC{c} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds dimensionality")]
    fn k_too_large_panics() {
        let x = Tensor::zeros(&[5, 2]);
        let _ = pca_project(&x, 3, 1);
    }
}
