//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! LINE training draws millions of edges proportionally to their weight and
//! negative vertices proportionally to degree^{3/4}; the alias table makes
//! both constant-time after linear setup.

use imre_tensor::TensorRng;

/// An alias table over `weights.len()` outcomes.
pub struct AliasTable {
    prob: Vec<f32>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    /// If `weights` is empty or sums to zero (or contains a negative value).
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "AliasTable: empty weight vector");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "AliasTable: negative weight"
        );
        let n = weights.len();
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        assert!(total > 0.0, "AliasTable: zero total weight");

        let mut prob: Vec<f32> = weights
            .iter()
            .map(|&w| (w as f64 * n as f64 / total) as f32)
            .collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are 1.0 up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Draws one outcome.
    #[inline]
    pub fn sample(&self, rng: &mut TensorRng) -> usize {
        let i = rng.below(self.prob.len());
        if rng.f32() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f32], draws: usize, seed: u64) -> Vec<f32> {
        let table = AliasTable::new(weights);
        let mut rng = TensorRng::seed(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f32 / draws as f32).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 8], 80_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freqs = empirical(&w, 100_000, 2);
        let total: f32 = w.iter().sum();
        for (f, &wi) in freqs.iter().zip(&w) {
            assert!(
                (f - wi / total).abs() < 0.01,
                "freq {f} expected {}",
                wi / total
            );
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let freqs = empirical(&[0.0, 1.0, 0.0, 1.0], 20_000, 3);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
    }

    #[test]
    fn single_outcome() {
        let freqs = empirical(&[42.0], 100, 4);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn all_zero_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty weight vector")]
    fn empty_panics() {
        let _ = AliasTable::new(&[]);
    }
}
