//! Nearest-neighbour queries over entity embeddings (paper Table V / Fig 8).

use crate::line::EntityEmbedding;
use imre_tensor::Tensor;

/// The `k` entities nearest to `query` by cosine similarity, excluding the
/// query itself, ordered most-similar first.
pub fn nearest(emb: &EntityEmbedding, query: usize, k: usize) -> Vec<(usize, f32)> {
    let qv = Tensor::from_vec(emb.vector(query).to_vec(), &[emb.dim()]);
    let mut scored: Vec<(usize, f32)> = (0..emb.len())
        .filter(|&v| v != query)
        .map(|v| {
            let vv = Tensor::from_vec(emb.vector(v).to_vec(), &[emb.dim()]);
            (v, qv.cosine(&vv))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite cosine"));
    scored.truncate(k);
    scored
}

/// The `k` *pairs* whose mutual-relation vectors `U_t − U_h` are nearest to
/// the query pair's, by cosine — the paper's notion that analogous pairs
/// (e.g. two (university, city) pairs under `located_in`) have similar
/// implicit mutual relations.
pub fn nearest_pairs(
    emb: &EntityEmbedding,
    query: (usize, usize),
    candidates: &[(usize, usize)],
    k: usize,
) -> Vec<((usize, usize), f32)> {
    let qmr = emb.mutual_relation(query.0, query.1);
    let mut scored: Vec<((usize, usize), f32)> = candidates
        .iter()
        .filter(|&&p| p != query)
        .map(|&p| {
            let mr = emb.mutual_relation(p.0, p.1);
            (p, qmr.cosine(&mr))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite cosine"));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> EntityEmbedding {
        // 4 entities in 2-D: 0 and 1 point the same way, 2 is orthogonal,
        // 3 is opposite to 0.
        EntityEmbedding::from_matrix(Tensor::from_vec(
            vec![
                1.0, 0.0, //
                0.9, 0.1, //
                0.0, 1.0, //
                -1.0, 0.0,
            ],
            &[4, 2],
        ))
    }

    #[test]
    fn nearest_orders_by_cosine() {
        let result = nearest(&emb(), 0, 3);
        let order: Vec<usize> = result.iter().map(|&(v, _)| v).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(result[0].1 > 0.98);
        assert!(result[2].1 < -0.9);
    }

    #[test]
    fn nearest_excludes_query_and_truncates() {
        let result = nearest(&emb(), 2, 2);
        assert_eq!(result.len(), 2);
        assert!(result.iter().all(|&(v, _)| v != 2));
    }

    #[test]
    fn nearest_pairs_prefers_parallel_offsets() {
        // Pairs (0,1) and (2,3) vs a pair with a different offset direction.
        let m = Tensor::from_vec(
            vec![
                0.0, 0.0, //
                1.0, 0.0, // offset (1,0)
                5.0, 5.0, //
                6.0, 5.0, // offset (1,0) — analogous
                0.0, 9.0, //
                0.0, 10.0, // offset (0,1) — different relation
            ],
            &[6, 2],
        );
        let emb = EntityEmbedding::from_matrix(m);
        let result = nearest_pairs(&emb, (0, 1), &[(2, 3), (4, 5)], 2);
        assert_eq!(result[0].0, (2, 3));
        assert!(result[0].1 > result[1].1);
    }
}
