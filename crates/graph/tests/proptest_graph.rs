//! Property-based tests for the graph substrate: alias-sampler correctness,
//! proximity-graph invariants, and LINE output sanity under arbitrary
//! co-occurrence tables.

use imre_graph::{AliasTable, ProximityGraph};
use imre_tensor::TensorRng;
use proptest::prelude::*;

type CountTable = (usize, Vec<((usize, usize), u32)>);

fn cooccurrence_table(max_vertices: usize) -> impl Strategy<Value = CountTable> {
    (4..=max_vertices).prop_flat_map(|n| {
        let pairs = proptest::collection::vec(((0..n, 0..n), 1u32..50), 1..60);
        (Just(n), pairs)
    })
}

proptest! {
    #[test]
    fn alias_table_empirical_matches_weights(weights in proptest::collection::vec(0.0f32..10.0, 2..12), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f32>() > 1.0);
        let table = AliasTable::new(&weights);
        let mut rng = TensorRng::seed(seed);
        let draws = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f32 = weights.iter().sum();
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let expected = w / total;
            let observed = c as f32 / draws as f32;
            prop_assert!((observed - expected).abs() < 0.03, "outcome {i}: {observed} vs {expected}");
        }
    }

    #[test]
    fn proximity_graph_invariants((n, counts) in cooccurrence_table(20), threshold in 1u32..5) {
        let g = ProximityGraph::from_counts(counts.clone(), n, threshold);
        // every edge weight in (0, 1]
        for &(u, v, w) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(u < n && v < n);
            prop_assert!(w > 0.0 && w <= 1.0);
        }
        // adjacency is symmetric and degree counts match
        for v in 0..n {
            for &(u, w) in g.neighbors(v) {
                prop_assert!(g.neighbors(u).iter().any(|&(x, wx)| x == v && (wx - w).abs() < 1e-6));
            }
        }
        // no self loops survive
        for v in 0..n {
            prop_assert!(g.neighbors(v).iter().all(|&(u, _)| u != v));
        }
    }

    #[test]
    fn thresholding_is_monotone((n, counts) in cooccurrence_table(16)) {
        // merge duplicate pairs the way the graph builder sees them summed
        // upstream: here we just check edge count is antitone in threshold
        let g1 = ProximityGraph::from_counts(counts.clone(), n, 1);
        let g2 = ProximityGraph::from_counts(counts.clone(), n, 3);
        let g3 = ProximityGraph::from_counts(counts, n, 6);
        prop_assert!(g1.n_edges() >= g2.n_edges());
        prop_assert!(g2.n_edges() >= g3.n_edges());
    }

    #[test]
    fn common_neighbors_subset_of_both((n, counts) in cooccurrence_table(14)) {
        let g = ProximityGraph::from_counts(counts, n, 1);
        for a in 0..n.min(5) {
            for b in 0..n.min(5) {
                for c in g.common_neighbors(a, b) {
                    prop_assert!(g.neighbors(a).iter().any(|&(v, _)| v == c));
                    prop_assert!(g.neighbors(b).iter().any(|&(v, _)| v == c));
                }
            }
        }
    }

    #[test]
    fn jaccard_symmetric_and_bounded((n, counts) in cooccurrence_table(14)) {
        let g = ProximityGraph::from_counts(counts, n, 1);
        for a in 0..n.min(6) {
            for b in 0..n.min(6) {
                let j1 = g.neighborhood_jaccard(a, b);
                let j2 = g.neighborhood_jaccard(b, a);
                prop_assert!((j1 - j2).abs() < 1e-6);
                prop_assert!((0.0..=1.0).contains(&j1));
            }
        }
    }
}
