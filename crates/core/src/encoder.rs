//! Sentence encoders (paper §III-C step 1–2).
//!
//! Every encoder shares the same embedding front-end — word embeddings plus
//! two relative-position embeddings (head/tail), concatenated per token —
//! and differs in how it turns the `[T, k_w + 2·k_p]` sequence into a fixed
//! sentence vector:
//!
//! * [`EncoderKind::Cnn`] — Conv1d + global max pooling + tanh (Zeng 2014).
//! * [`EncoderKind::Pcnn`] — Conv1d + piecewise max pooling + tanh
//!   (Zeng 2015; the paper's base encoder).
//! * [`EncoderKind::Gru`] — bidirectional GRU + max pooling over time.

use crate::config::HyperParams;
use crate::features::SentenceFeatures;
use imre_nn::{pcnn_segments, BiGru, Conv1d, Dropout, ParamId, ParamStore, Tape, Var};
use imre_tensor::TensorRng;

/// Which sentence encoder a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// CNN with global max pooling.
    Cnn,
    /// CNN with piecewise max pooling (PCNN).
    Pcnn,
    /// Bidirectional GRU with max pooling over time.
    Gru,
}

impl EncoderKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            EncoderKind::Cnn => "CNN",
            EncoderKind::Pcnn => "PCNN",
            EncoderKind::Gru => "GRU",
        }
    }
}

/// Word + dual relative-position embedding tables.
pub struct Frontend {
    word_emb: ParamId,
    head_pos_emb: ParamId,
    tail_pos_emb: ParamId,
    in_dim: usize,
}

impl Frontend {
    /// Registers the three embedding tables under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab_size: usize,
        hp: &HyperParams,
        rng: &mut TensorRng,
    ) -> Self {
        let word_emb = store.uniform(
            &format!("{name}.word_emb"),
            &[vocab_size, hp.word_dim],
            0.25,
            rng,
        );
        let head_pos_emb = store.uniform(
            &format!("{name}.head_pos_emb"),
            &[hp.pos_vocab(), hp.pos_dim],
            0.25,
            rng,
        );
        let tail_pos_emb = store.uniform(
            &format!("{name}.tail_pos_emb"),
            &[hp.pos_vocab(), hp.pos_dim],
            0.25,
            rng,
        );
        Frontend {
            word_emb,
            head_pos_emb,
            tail_pos_emb,
            in_dim: hp.word_dim + 2 * hp.pos_dim,
        }
    }

    /// Per-token input width (`k_w + 2·k_p`).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Embeds a featurised sentence into a `[T, in_dim]` matrix.
    pub fn embed(&self, tape: &mut Tape, feats: &SentenceFeatures) -> Var {
        let words = tape.gather(self.word_emb, &feats.tokens);
        let head = tape.gather(self.head_pos_emb, &feats.head_offsets);
        let tail = tape.gather(self.tail_pos_emb, &feats.tail_offsets);
        tape.concat_cols(&[words, head, tail])
    }

    /// The word-embedding table id (exposed so tests can inspect updates).
    pub fn word_emb_id(&self) -> ParamId {
        self.word_emb
    }
}

enum Variant {
    Cnn(Conv1d),
    Pcnn(Conv1d),
    Gru(BiGru),
}

/// A complete sentence encoder: front-end + architecture + output dropout.
pub struct Encoder {
    frontend: Frontend,
    variant: Variant,
    dropout: Dropout,
    out_dim: usize,
}

impl Encoder {
    /// Builds an encoder of the given kind.
    pub fn new(
        kind: EncoderKind,
        store: &mut ParamStore,
        name: &str,
        vocab_size: usize,
        hp: &HyperParams,
        rng: &mut TensorRng,
    ) -> Self {
        let frontend = Frontend::new(store, name, vocab_size, hp, rng);
        let in_dim = frontend.in_dim();
        let (variant, out_dim) = match kind {
            EncoderKind::Cnn => {
                let conv = Conv1d::new(
                    store,
                    &format!("{name}.conv"),
                    in_dim,
                    hp.filters,
                    hp.window,
                    rng,
                );
                (Variant::Cnn(conv), hp.filters)
            }
            EncoderKind::Pcnn => {
                let conv = Conv1d::new(
                    store,
                    &format!("{name}.conv"),
                    in_dim,
                    hp.filters,
                    hp.window,
                    rng,
                );
                (Variant::Pcnn(conv), 3 * hp.filters)
            }
            EncoderKind::Gru => {
                let gru = BiGru::new(store, &format!("{name}.gru"), in_dim, hp.gru_hidden, rng);
                (Variant::Gru(gru), 2 * hp.gru_hidden)
            }
        };
        Encoder {
            frontend,
            variant,
            dropout: Dropout::new(hp.dropout),
            out_dim,
        }
    }

    /// Sentence-vector width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The shared embedding front-end.
    pub fn frontend(&self) -> &Frontend {
        &self.frontend
    }

    /// Encodes one sentence to a rank-1 vector of [`Self::out_dim`].
    ///
    /// `training` enables dropout on the sentence vector (paper: p = 0.5).
    pub fn encode(
        &self,
        tape: &mut Tape,
        feats: &SentenceFeatures,
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        let x = self.frontend.embed(tape, feats);
        let encoded = match &self.variant {
            Variant::Cnn(conv) => {
                let c = conv.forward(tape, x);
                let t = tape.value(c).rows();
                let pooled = tape.piecewise_max(c, &[(0, t)]);
                tape.tanh(pooled)
            }
            Variant::Pcnn(conv) => {
                let c = conv.forward(tape, x);
                let t = tape.value(c).rows();
                let segs = pcnn_segments(t, feats.head_pos, feats.tail_pos);
                let pooled = tape.piecewise_max(c, &segs);
                tape.tanh(pooled)
            }
            Variant::Gru(gru) => {
                // GRU states are already bounded by their gating nonlinearities;
                // a second tanh after pooling would squash the encoding toward
                // zero and starve the classifier's logits.
                let hs = gru.forward(tape, x);
                let t = tape.value(hs).rows();
                tape.piecewise_max(hs, &[(0, t)])
            }
        };
        self.dropout.forward(tape, encoded, training, rng)
    }

    /// Encodes with access to the per-token states (needed by BGWA's
    /// word-level attention). Returns `[T, token_dim]` states *before*
    /// pooling. Only meaningful for the GRU variant; CNN variants return the
    /// post-convolution token states.
    pub fn token_states(&self, tape: &mut Tape, feats: &SentenceFeatures) -> Var {
        let x = self.frontend.embed(tape, feats);
        match &self.variant {
            Variant::Cnn(conv) | Variant::Pcnn(conv) => conv.forward(tape, x),
            Variant::Gru(gru) => gru.forward(tape, x),
        }
    }

    /// Width of [`Self::token_states`] rows.
    pub fn token_dim(&self) -> usize {
        match &self.variant {
            Variant::Cnn(conv) | Variant::Pcnn(conv) => conv.filters(),
            Variant::Gru(gru) => gru.out_dim(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_corpus::EncodedSentence;
    use imre_nn::GradStore;

    fn feats() -> SentenceFeatures {
        crate::features::featurize(
            &EncodedSentence {
                tokens: vec![2, 3, 4, 5, 6, 7],
                head_pos: 1,
                tail_pos: 4,
                expresses_relation: true,
            },
            30,
            20,
        )
    }

    fn hp() -> HyperParams {
        HyperParams::tiny()
    }

    #[test]
    fn out_dims_per_kind() {
        let mut rng = TensorRng::seed(1);
        let h = hp();
        let mut store = ParamStore::new();
        let cnn = Encoder::new(EncoderKind::Cnn, &mut store, "cnn", 10, &h, &mut rng);
        let pcnn = Encoder::new(EncoderKind::Pcnn, &mut store, "pcnn", 10, &h, &mut rng);
        let gru = Encoder::new(EncoderKind::Gru, &mut store, "gru", 10, &h, &mut rng);
        assert_eq!(cnn.out_dim(), h.filters);
        assert_eq!(pcnn.out_dim(), 3 * h.filters);
        assert_eq!(gru.out_dim(), 2 * h.gru_hidden);
    }

    #[test]
    fn encode_shapes() {
        let mut rng = TensorRng::seed(2);
        let h = hp();
        for kind in [EncoderKind::Cnn, EncoderKind::Pcnn, EncoderKind::Gru] {
            let mut store = ParamStore::new();
            let enc = Encoder::new(kind, &mut store, "e", 10, &h, &mut rng);
            let mut tape = Tape::new(&store);
            let v = enc.encode(&mut tape, &feats(), false, &mut rng);
            assert_eq!(tape.value(v).len(), enc.out_dim(), "{:?}", kind);
            assert!(tape.value(v).data().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn eval_mode_deterministic_train_mode_not_identical() {
        let mut rng = TensorRng::seed(3);
        let h = hp();
        let mut store = ParamStore::new();
        let enc = Encoder::new(EncoderKind::Pcnn, &mut store, "e", 10, &h, &mut rng);
        let f = feats();
        let out_eval: Vec<f32> = {
            let mut tape = Tape::new(&store);
            let v = enc.encode(&mut tape, &f, false, &mut rng);
            tape.value(v).data().to_vec()
        };
        let out_eval2: Vec<f32> = {
            let mut tape = Tape::new(&store);
            let v = enc.encode(&mut tape, &f, false, &mut rng);
            tape.value(v).data().to_vec()
        };
        assert_eq!(out_eval, out_eval2, "eval must be deterministic");
        let out_train: Vec<f32> = {
            let mut tape = Tape::new(&store);
            let v = enc.encode(&mut tape, &f, true, &mut rng);
            tape.value(v).data().to_vec()
        };
        assert_ne!(out_eval, out_train, "dropout must perturb training output");
    }

    #[test]
    fn gradients_reach_embeddings() {
        let mut rng = TensorRng::seed(4);
        let h = hp();
        let mut store = ParamStore::new();
        let enc = Encoder::new(EncoderKind::Pcnn, &mut store, "e", 10, &h, &mut rng);
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let v = enc.encode(&mut tape, &feats(), false, &mut rng);
        let loss = tape.softmax_cross_entropy(v, 0);
        tape.backward(loss, &mut grads);
        let g = grads.get(enc.frontend().word_emb_id());
        // tokens 2..8 were used, so their rows must receive gradient
        assert!(g.row(3).iter().any(|&x| x != 0.0));
        // token 9 never appears
        assert!(g.row(9).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn token_states_shapes() {
        let mut rng = TensorRng::seed(5);
        let h = hp();
        for kind in [EncoderKind::Cnn, EncoderKind::Gru] {
            let mut store = ParamStore::new();
            let enc = Encoder::new(kind, &mut store, "e", 10, &h, &mut rng);
            let mut tape = Tape::new(&store);
            let states = enc.token_states(&mut tape, &feats());
            assert_eq!(tape.value(states).rows(), 6);
            assert_eq!(tape.value(states).cols(), enc.token_dim());
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(EncoderKind::Pcnn.name(), "PCNN");
        assert_eq!(EncoderKind::Cnn.name(), "CNN");
        assert_eq!(EncoderKind::Gru.name(), "GRU");
    }
}
