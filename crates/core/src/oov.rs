//! Out-of-vocabulary handling.
//!
//! Standard practice in the paper's lineage (Lin et al.'s released code and
//! successors): the word-embedding vocabulary is built from the *training*
//! corpus with a minimum-frequency cutoff, and every other token — including
//! entity mentions that only occur in the test split — maps to a shared
//! `<unk>` row. Without this, unseen entity tokens inject random untrained
//! vectors straight into the max-pooling, drowning the lexical signal.

use crate::model::PreparedBag;
use imre_corpus::UNK;
use std::collections::HashMap;

/// Counts token frequencies over the training bags, then remaps every token
/// whose training frequency is below `min_count` to [`UNK`] — in the
/// training *and* test bags. Returns the number of distinct surviving
/// tokens (diagnostic).
pub fn prune_to_train_vocab(
    train: &mut [PreparedBag],
    test: &mut [PreparedBag],
    min_count: usize,
) -> usize {
    let mut freq: HashMap<usize, usize> = HashMap::new();
    for bag in train.iter() {
        for s in &bag.sentences {
            for &t in &s.tokens {
                *freq.entry(t).or_insert(0) += 1;
            }
        }
    }
    let keep: std::collections::HashSet<usize> = freq
        .iter()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(&t, _)| t)
        .collect();
    let remap = |bags: &mut [PreparedBag]| {
        for bag in bags.iter_mut() {
            for s in &mut bag.sentences {
                for t in &mut s.tokens {
                    if !keep.contains(t) {
                        *t = UNK;
                    }
                }
            }
        }
    };
    remap(train);
    remap(test);
    keep.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::SentenceFeatures;

    fn bag(tokens: Vec<usize>) -> PreparedBag {
        PreparedBag {
            head: 0,
            tail: 1,
            label: 1,
            sentences: vec![SentenceFeatures {
                head_offsets: vec![0; tokens.len()],
                tail_offsets: vec![0; tokens.len()],
                head_pos: 0,
                tail_pos: tokens.len() - 1,
                tokens,
            }],
        }
    }

    #[test]
    fn rare_and_test_only_tokens_become_unk() {
        let mut train = vec![bag(vec![5, 5, 5, 7]), bag(vec![5, 9, 9])];
        let mut test = vec![bag(vec![5, 42, 7])];
        let kept = prune_to_train_vocab(&mut train, &mut test, 2);
        // 5 occurs 4×, 9 occurs 2× → kept; 7 occurs 1× → UNK; 42 unseen → UNK
        assert_eq!(kept, 2);
        assert_eq!(train[0].sentences[0].tokens, vec![5, 5, 5, UNK]);
        assert_eq!(train[1].sentences[0].tokens, vec![5, 9, 9]);
        assert_eq!(test[0].sentences[0].tokens, vec![5, UNK, UNK]);
    }

    #[test]
    fn min_count_one_keeps_all_train_tokens() {
        let mut train = vec![bag(vec![3, 4])];
        let mut test = vec![bag(vec![3, 4, 99])];
        prune_to_train_vocab(&mut train, &mut test, 1);
        assert_eq!(train[0].sentences[0].tokens, vec![3, 4]);
        assert_eq!(test[0].sentences[0].tokens, vec![3, 4, UNK]);
    }

    #[test]
    fn positions_untouched() {
        let mut train = vec![bag(vec![1, 2, 3])];
        let head_pos = train[0].sentences[0].head_pos;
        prune_to_train_vocab(&mut train, &mut [], 10);
        assert_eq!(train[0].sentences[0].head_pos, head_pos);
        assert_eq!(train[0].sentences[0].tokens, vec![UNK, UNK, UNK]);
    }
}
