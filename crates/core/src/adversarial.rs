//! Adversarial training (Wu et al., EMNLP 2017) — the noise-mitigation
//! alternative the paper surveys in §II-B: "generate adversarial samples by
//! first adding noise in the form of small perturbations to the original
//! data, then encouraging the neural network to correctly classify both
//! unmodified examples and perturbed ones".
//!
//! Implemented as Fast Gradient Method perturbations on the word-embedding
//! table: for each bag, one clean pass computes the loss gradient, the
//! visited embedding rows are perturbed by `ε · g / ‖g‖`, a second pass
//! adds the adversarial loss, and the perturbation is rolled back before
//! the optimizer step. Both passes' gradients train the model, so it learns
//! to classify clean *and* worst-case-perturbed inputs.

use crate::model::{BagContext, PreparedBag, ReModel};
use crate::train::{TrainConfig, TrainStats};
use imre_nn::{GradStore, Sgd};
use imre_tensor::{Tensor, TensorRng};

/// Adversarial-training configuration.
#[derive(Debug, Clone)]
pub struct AdvConfig {
    /// Perturbation radius ε (relative to the gradient's L2 norm).
    pub epsilon: f32,
    /// Weight of the adversarial loss term relative to the clean loss.
    pub adv_weight: f32,
}

impl Default for AdvConfig {
    fn default() -> Self {
        AdvConfig {
            epsilon: 0.05,
            adv_weight: 1.0,
        }
    }
}

/// The word-embedding perturbation computed from a gradient snapshot.
///
/// Only the rows that actually received gradient (the bag's tokens) are
/// perturbed; `apply`/`revert` add and subtract it exactly.
struct Perturbation {
    delta: Tensor,
}

impl Perturbation {
    fn from_gradient(grad: &Tensor, epsilon: f32) -> Option<Perturbation> {
        let norm = grad.norm_l2();
        if norm < 1e-12 {
            return None;
        }
        Some(Perturbation {
            delta: grad.scale(epsilon / norm),
        })
    }

    fn apply(&self, table: &mut Tensor) {
        table.add_assign(&self.delta);
    }

    fn revert(&self, table: &mut Tensor) {
        table.axpy(-1.0, &self.delta);
    }
}

/// One adversarial training step on a single bag: clean backward, FGM
/// perturbation of the word embeddings, adversarial backward, rollback.
/// Returns `(clean_loss, adversarial_loss)`.
///
/// Gradients from both passes accumulate in `model.grads` (scaled by
/// `scale` and `scale · adv_weight` respectively); the caller applies the
/// optimizer step.
pub fn adversarial_bag_step(
    model: &mut ReModel,
    bag: &PreparedBag,
    ctx: &BagContext,
    scale: f32,
    config: &AdvConfig,
    rng: &mut TensorRng,
) -> (f32, f32) {
    let word_emb = model
        .store
        .find("enc.word_emb")
        .expect("encoder word-embedding parameter");

    // Clean pass: snapshot the word-embedding gradient it produces.
    let grads_before = model.grads.get(word_emb).clone();
    let clean_loss = model.bag_loss_and_backward(bag, ctx, scale, rng);
    let grad_now = model.grads.get(word_emb).clone();
    let bag_grad = grad_now.sub(&grads_before);

    let Some(perturbation) = Perturbation::from_gradient(&bag_grad, config.epsilon) else {
        return (clean_loss, clean_loss);
    };

    // Adversarial pass at the perturbed embeddings.
    perturbation.apply(model.store.get_mut(word_emb));
    let adv_loss = model.bag_loss_and_backward(bag, ctx, scale * config.adv_weight, rng);
    perturbation.revert(model.store.get_mut(word_emb));

    (clean_loss, adv_loss)
}

/// Trains a model with FGM adversarial regularisation — the drop-in
/// counterpart of [`crate::train::train_model`].
pub fn train_adversarial(
    model: &mut ReModel,
    bags: &[PreparedBag],
    ctx: &BagContext,
    tc: &TrainConfig,
    config: &AdvConfig,
) -> TrainStats {
    assert!(!bags.is_empty(), "train_adversarial: no training bags");
    let mut rng = TensorRng::seed(tc.seed);
    let mut sgd = Sgd::new(tc.lr).with_clip_norm(tc.clip_norm);
    let mut order: Vec<usize> = (0..bags.len()).collect();
    let mut epoch_losses = Vec::with_capacity(tc.epochs);

    for _ in 0..tc.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        for batch in order.chunks(tc.batch_size) {
            let scale = 1.0 / batch.len() as f32;
            for &bi in batch {
                let (clean, _adv) =
                    adversarial_bag_step(model, &bags[bi], ctx, scale, config, &mut rng);
                epoch_loss += clean as f64;
            }
            sgd.step(&mut model.store, &mut model.grads);
        }
        epoch_losses.push((epoch_loss / bags.len() as f64) as f32);
        sgd.decay_lr(tc.lr_decay);
    }
    let _ = GradStore::zeros_like(&model.store); // grads zeroed by Sgd::step
    TrainStats { epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HyperParams;
    use crate::model::{entity_type_table, prepare_bags, ModelSpec};
    use imre_corpus::{Dataset, DatasetConfig, SentenceGenConfig, WorldConfig};

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig {
            name: "adv".into(),
            world: WorldConfig {
                n_relations: 4,
                entities_per_cluster: 6,
                facts_per_relation: 12,
                cluster_reuse_prob: 0.3,
                seed: 7,
            },
            sentence: SentenceGenConfig {
                noise_prob: 0.2,
                min_len: 6,
                max_len: 12,
            },
            train_fraction: 0.7,
            na_train: 10,
            na_test: 5,
            na_hard_fraction: 0.5,
            zipf_alpha: 1.8,
            max_sentences_per_bag: 6,
            seed: 11,
        })
    }

    #[test]
    fn perturbation_roundtrip_is_exact_in_float() {
        let grad = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        let p = Perturbation::from_gradient(&grad, 0.1).expect("non-zero grad");
        // ‖grad‖ = 5 → delta = grad/50
        assert!((p.delta.at(0, 0) - 0.06).abs() < 1e-6);
        let mut table = Tensor::ones(&[2, 2]);
        let orig = table.clone();
        p.apply(&mut table);
        assert_ne!(table.data(), orig.data());
        p.revert(&mut table);
        for (a, b) in table.data().iter().zip(orig.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_gradient_yields_no_perturbation() {
        assert!(Perturbation::from_gradient(&Tensor::zeros(&[2, 2]), 0.1).is_none());
    }

    #[test]
    fn adversarial_loss_at_least_clean_loss_on_fresh_model() {
        // FGM perturbs along the loss gradient, so (to first order) the
        // adversarial loss exceeds the clean loss. Dropout must be off:
        // each pass samples its own mask, which would swamp the ε-sized
        // perturbation effect.
        let ds = dataset();
        let mut hp = HyperParams::tiny();
        hp.dropout = 0.0;
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            38,
            8,
            3,
        );
        let mut rng = TensorRng::seed(5);
        let mut higher = 0;
        let n = 10;
        for bag in bags.iter().take(n) {
            let (clean, adv) =
                adversarial_bag_step(&mut model, bag, &ctx, 1.0, &AdvConfig::default(), &mut rng);
            model.grads.zero();
            if adv >= clean - 1e-4 {
                higher += 1;
            }
        }
        assert!(
            higher >= n - 2,
            "adversarial loss should (almost) always exceed clean: {higher}/{n}"
        );
    }

    #[test]
    fn adversarial_training_converges() {
        let ds = dataset();
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            38,
            8,
            9,
        );
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed: 13,
        };
        let stats = train_adversarial(&mut model, &bags, &ctx, &tc, &AdvConfig::default());
        assert!(
            stats.final_loss() < stats.epoch_losses[0] * 0.9,
            "adversarial training failed to reduce loss: {:?}",
            stats.epoch_losses
        );
    }
}
