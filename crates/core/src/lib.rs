//! # imre-core
//!
//! The relation-extraction models of Kuang et al., *Improving Neural
//! Relation Extraction with Implicit Mutual Relations* (ICDE 2020), built on
//! the `imre-nn` autograd substrate:
//!
//! * [`encoder`] — CNN / PCNN / bi-GRU sentence encoders with word +
//!   relative-position embeddings (paper §III-C).
//! * [`attention`] — selective sentence-level attention (Lin 2016) and
//!   BGWA's word-level attention.
//! * [`components`] — the entity-type and implicit-mutual-relation
//!   confidence heads and the learned α/β/γ combiner (paper §III-B, §III-D).
//! * [`model`] — [`ModelSpec`]/[`ReModel`]: every system in the paper's
//!   Table IV and Figure 5 as one declarative spec (PCNN, PCNN+ATT,
//!   CNN+ATT, GRU+ATT, BGWA, PA-T, PA-MR, PA-TMR, and arbitrary `+TMR`
//!   compositions).
//! * [`train`] — the bag-level mini-batch SGD loop.
//! * [`baselines`] — the non-neural comparators of Figure 4 (Mintz, MultiR,
//!   MIMLRE) and the CNN+RL reinforcement-learning selector.

pub mod adversarial;
pub mod attention;
pub mod baselines;
pub mod components;
pub mod config;
pub mod encoder;
pub mod features;
pub mod model;
pub mod oov;
pub mod persist;
pub mod pretrain;
pub mod quant;
pub mod train;

pub use adversarial::{adversarial_bag_step, train_adversarial, AdvConfig};
pub use attention::{AggKind, SelectiveAttention, WordAttention};
pub use components::{Combiner, MrComponent, TypeComponent};
pub use config::HyperParams;
pub use encoder::{Encoder, EncoderKind, Frontend};
pub use features::{featurize, SentenceFeatures};
pub use model::{entity_type_table, prepare_bags, BagContext, ModelSpec, PreparedBag, ReModel};
pub use oov::prune_to_train_vocab;
pub use persist::{load_model, read_model, save_model, write_model};
pub use pretrain::{corpus_sentences, train_skipgram, SkipGramConfig};
pub use quant::{QuantModel, QuantScratch, QuantizeError};
pub use train::{
    accumulate_shard, bag_step_rng, epoch_order, replica_shard, train_epoch, train_model,
    TrainConfig, TrainStats,
};
