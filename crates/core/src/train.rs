//! The bag-level training loop (SGD, mini-batched, lr decay, grad clipping).
//!
//! Two RNG disciplines coexist here:
//!
//! * [`train_model`] — the original serial loop — threads **one** sequential
//!   RNG through shuffling and dropout, exactly as it always has, so every
//!   artifact trained by earlier releases reproduces byte-for-byte.
//! * The replica-aware primitives ([`epoch_order`], [`bag_step_rng`],
//!   [`replica_shard`], [`accumulate_shard`]) **derive** an independent
//!   stream per `(seed, epoch)` and per `(seed, epoch, bag)` instead. A
//!   bag's dropout noise then depends only on its identity and the epoch —
//!   never on which replica processed it, in what order, or on how many
//!   other bags came before it — which is what lets `imre-dist` shard a
//!   mini-batch across replicas and still train deterministically (and lets
//!   a checkpoint resume mid-run bit-identically: every stream is a pure
//!   function of the epoch index).

use crate::model::{BagContext, PreparedBag, ReModel};
use imre_nn::Sgd;
use imre_tensor::TensorRng;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs over the training bags.
    pub epochs: usize,
    /// Bags per SGD step.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative lr decay applied after each epoch.
    pub lr_decay: f32,
    /// Global-norm gradient clip.
    pub clip_norm: f32,
    /// Shuffling / dropout seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Defaults derived from the paper's Table III (scaled batch).
    pub fn from_hp(hp: &crate::config::HyperParams, seed: u64) -> Self {
        TrainConfig {
            epochs: hp.epochs,
            batch_size: hp.batch_size,
            lr: hp.lr,
            lr_decay: 0.9,
            clip_norm: 5.0,
            seed,
        }
    }
}

/// Per-epoch summary returned by [`train_model`].
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainStats {
    /// The last epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Trains a model on prepared bags.
///
/// Gradients are averaged over each mini-batch (`scale = 1/batch`), clipped
/// by global norm, and applied with SGD whose learning rate decays per
/// epoch — the paper's optimisation setup.
pub fn train_model(
    model: &mut ReModel,
    bags: &[PreparedBag],
    ctx: &BagContext,
    config: &TrainConfig,
) -> TrainStats {
    assert!(!bags.is_empty(), "train_model: no training bags");
    let mut rng = TensorRng::seed(config.seed);
    let mut sgd = Sgd::new(config.lr).with_clip_norm(config.clip_norm);
    let mut order: Vec<usize> = (0..bags.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for _epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        let epoch_loss = train_epoch(
            model,
            bags,
            ctx,
            &order,
            config.batch_size,
            &mut sgd,
            &mut rng,
        );
        epoch_losses.push((epoch_loss / bags.len() as f64) as f32);
        sgd.decay_lr(config.lr_decay);
    }
    TrainStats { epoch_losses }
}

/// One serial epoch over `order`: per mini-batch, accumulate batch-mean
/// gradients and take one optimizer step. Returns the summed loss.
///
/// This is the `replicas = 1` degenerate case of data-parallel training;
/// `imre-dist` runs the same batch structure but shards each batch across
/// replicas with [`replica_shard`] and combines gradients before the single
/// optimizer step. [`train_model`] calls this with its sequentially-threaded
/// RNG (byte-stable with earlier releases).
pub fn train_epoch(
    model: &mut ReModel,
    bags: &[PreparedBag],
    ctx: &BagContext,
    order: &[usize],
    batch_size: usize,
    sgd: &mut Sgd,
    rng: &mut TensorRng,
) -> f64 {
    let mut epoch_loss = 0.0f64;
    for batch in order.chunks(batch_size.max(1)) {
        let scale = 1.0 / batch.len() as f32;
        for &bi in batch {
            epoch_loss += model.bag_loss_and_backward(&bags[bi], ctx, scale, rng) as f64;
        }
        sgd.step(&mut model.store, &mut model.grads);
    }
    epoch_loss
}

// ----------------------------------------------------------------------
// Replica-aware primitives (the substrate `imre-dist` trains on)
// ----------------------------------------------------------------------

/// SplitMix64 finalizer: decorrelates structured seed material.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic bag visiting order for one epoch: a shuffle drawn from
/// a stream that depends only on `(seed, epoch)`. Resuming at an epoch
/// boundary therefore replays exactly the orders an uninterrupted run sees.
pub fn epoch_order(seed: u64, epoch: usize, n: usize) -> Vec<usize> {
    let mut rng = TensorRng::seed(mix64(seed ^ mix64(0x5049_4d52_4544_5231 ^ epoch as u64)));
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    order
}

/// The dropout stream for one bag visit, a pure function of
/// `(seed, epoch, bag)`. Independent of sharding: replica count and batch
/// position cannot change a bag's noise, so the gradient each bag
/// contributes is the same at any `--data-parallel` width.
pub fn bag_step_rng(seed: u64, epoch: usize, bag: usize) -> TensorRng {
    TensorRng::seed(mix64(
        mix64(seed ^ mix64(0x4241_4753_5445_5032 ^ epoch as u64)) ^ mix64(bag as u64),
    ))
}

/// The slice of a mini-batch owned by `replica` out of `replicas`: positions
/// `replica, replica + R, replica + 2R, …` of `batch`. Strided (rather than
/// contiguous) so bags of uneven size spread across replicas. A pure
/// function of `(batch, replica, replicas)` — scheduling cannot change it.
pub fn replica_shard(batch: &[usize], replica: usize, replicas: usize) -> Vec<usize> {
    batch
        .iter()
        .skip(replica)
        .step_by(replicas.max(1))
        .copied()
        .collect()
}

/// Forward/backward over one replica's shard of a mini-batch: accumulates
/// `scale`-weighted gradients for every listed bag into `model.grads`
/// (no optimizer step — the engine combines shards first). Returns the
/// summed loss. Dropout noise comes from [`bag_step_rng`], so the result is
/// independent of how the batch was sharded.
pub fn accumulate_shard(
    model: &mut ReModel,
    bags: &[PreparedBag],
    ctx: &BagContext,
    shard: &[usize],
    scale: f32,
    seed: u64,
    epoch: usize,
) -> f64 {
    let mut loss = 0.0f64;
    for &bi in shard {
        let mut rng = bag_step_rng(seed, epoch, bi);
        loss += model.bag_loss_and_backward(&bags[bi], ctx, scale, &mut rng) as f64;
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HyperParams;
    use crate::model::{entity_type_table, prepare_bags, ModelSpec, ReModel};
    use imre_corpus::{Dataset, DatasetConfig, SentenceGenConfig, WorldConfig};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig {
            name: "t".into(),
            world: WorldConfig {
                n_relations: 4,
                entities_per_cluster: 6,
                facts_per_relation: 10,
                cluster_reuse_prob: 0.3,
                seed: 3,
            },
            sentence: SentenceGenConfig {
                noise_prob: 0.1,
                min_len: 6,
                max_len: 12,
            },
            train_fraction: 0.7,
            na_train: 8,
            na_test: 4,
            na_hard_fraction: 0.5,
            zipf_alpha: 2.0,
            max_sentences_per_bag: 6,
            seed: 5,
        })
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = tiny_dataset();
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            38,
            8,
            11,
        );
        let tc = TrainConfig {
            epochs: 8,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed: 13,
        };
        let stats = train_model(&mut model, &bags, &ctx, &tc);
        assert_eq!(stats.epoch_losses.len(), 8);
        assert!(
            stats.final_loss() < stats.epoch_losses[0] * 0.85,
            "losses {:?}",
            stats.epoch_losses
        );
    }

    #[test]
    fn trained_model_beats_chance_on_train_set() {
        let ds = tiny_dataset();
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            38,
            8,
            17,
        );
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed: 19,
        };
        train_model(&mut model, &bags, &ctx, &tc);
        let correct = bags
            .iter()
            .filter(|b| {
                let probs = model.predict(b, &ctx);
                let argmax = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                argmax == b.label
            })
            .count();
        let acc = correct as f32 / bags.len() as f32;
        assert!(acc > 1.5 / 4.0, "train accuracy {acc} not above chance");
    }

    #[test]
    fn epoch_order_is_a_pure_function_of_seed_and_epoch() {
        let a = epoch_order(7, 3, 100);
        let b = epoch_order(7, 3, 100);
        assert_eq!(a, b, "same (seed, epoch) must give the same order");
        assert_ne!(a, epoch_order(7, 4, 100), "epochs draw distinct orders");
        assert_ne!(a, epoch_order(8, 3, 100), "seeds draw distinct orders");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "a permutation");
    }

    #[test]
    fn bag_step_rng_streams_are_independent() {
        let draw = |seed, epoch, bag| bag_step_rng(seed, epoch, bag).u64();
        assert_eq!(draw(1, 2, 3), draw(1, 2, 3));
        assert_ne!(draw(1, 2, 3), draw(1, 2, 4));
        assert_ne!(draw(1, 2, 3), draw(1, 3, 3));
        assert_ne!(draw(1, 2, 3), draw(2, 2, 3));
    }

    #[test]
    fn replica_shards_partition_the_batch() {
        let batch: Vec<usize> = vec![10, 11, 12, 13, 14, 15, 16];
        for r_total in [1usize, 2, 3, 4, 8] {
            let mut seen: Vec<usize> = Vec::new();
            for r in 0..r_total {
                seen.extend(replica_shard(&batch, r, r_total));
            }
            seen.sort_unstable();
            let mut want = batch.clone();
            want.sort_unstable();
            assert_eq!(seen, want, "replicas={r_total} must cover exactly");
        }
        assert_eq!(replica_shard(&batch, 0, 2), vec![10, 12, 14, 16]);
        assert_eq!(replica_shard(&batch, 1, 2), vec![11, 13, 15]);
        // More replicas than bags: the extras get empty shards.
        assert!(replica_shard(&batch[..2], 3, 4).is_empty());
    }

    #[test]
    fn accumulate_shard_is_sharding_invariant() {
        // The combined gradient of a batch must not depend on how it was
        // split across replicas (up to FP summation order — compare the
        // single-shard accumulation against itself via a different split
        // but identical per-bag order, which keeps even the FP order equal:
        // one replica visiting [0,1,2,3] vs the same model visiting the
        // two shards [0,2] then [1,3] sums per-parameter in a different
        // order, so here we only pin the per-bag losses).
        let ds = tiny_dataset();
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let batch: Vec<usize> = (0..bags.len().min(6)).collect();
        let build = || {
            ReModel::new(
                ModelSpec::pcnn_att(),
                &hp,
                ds.vocab.len(),
                ds.num_relations(),
                38,
                8,
                11,
            )
        };
        let mut m1 = build();
        let whole = accumulate_shard(&mut m1, &bags, &ctx, &batch, 1.0, 5, 0);
        let mut m2 = build();
        let mut split = 0.0;
        for r in 0..3 {
            split += accumulate_shard(
                &mut m2,
                &bags,
                &ctx,
                &replica_shard(&batch, r, 3),
                1.0,
                5,
                0,
            );
        }
        assert!(
            (whole - split).abs() < 1e-4 * whole.abs().max(1.0),
            "sharded loss {split} drifted from whole-batch loss {whole}"
        );
    }

    #[test]
    #[should_panic(expected = "no training bags")]
    fn empty_training_set_panics() {
        let ds = tiny_dataset();
        let hp = HyperParams::tiny();
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(ModelSpec::pcnn(), &hp, ds.vocab.len(), 4, 38, 8, 1);
        let tc = TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 0.1,
            lr_decay: 1.0,
            clip_norm: 5.0,
            seed: 1,
        };
        let _ = train_model(&mut model, &[], &ctx, &tc);
    }
}
