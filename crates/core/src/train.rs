//! The bag-level training loop (SGD, mini-batched, lr decay, grad clipping).

use crate::model::{BagContext, PreparedBag, ReModel};
use imre_nn::Sgd;
use imre_tensor::TensorRng;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs over the training bags.
    pub epochs: usize,
    /// Bags per SGD step.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative lr decay applied after each epoch.
    pub lr_decay: f32,
    /// Global-norm gradient clip.
    pub clip_norm: f32,
    /// Shuffling / dropout seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Defaults derived from the paper's Table III (scaled batch).
    pub fn from_hp(hp: &crate::config::HyperParams, seed: u64) -> Self {
        TrainConfig {
            epochs: hp.epochs,
            batch_size: hp.batch_size,
            lr: hp.lr,
            lr_decay: 0.9,
            clip_norm: 5.0,
            seed,
        }
    }
}

/// Per-epoch summary returned by [`train_model`].
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainStats {
    /// The last epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Trains a model on prepared bags.
///
/// Gradients are averaged over each mini-batch (`scale = 1/batch`), clipped
/// by global norm, and applied with SGD whose learning rate decays per
/// epoch — the paper's optimisation setup.
pub fn train_model(
    model: &mut ReModel,
    bags: &[PreparedBag],
    ctx: &BagContext,
    config: &TrainConfig,
) -> TrainStats {
    assert!(!bags.is_empty(), "train_model: no training bags");
    let mut rng = TensorRng::seed(config.seed);
    let mut sgd = Sgd::new(config.lr).with_clip_norm(config.clip_norm);
    let mut order: Vec<usize> = (0..bags.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for _epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        for batch in order.chunks(config.batch_size) {
            let scale = 1.0 / batch.len() as f32;
            for &bi in batch {
                epoch_loss += model.bag_loss_and_backward(&bags[bi], ctx, scale, &mut rng) as f64;
            }
            sgd.step(&mut model.store, &mut model.grads);
        }
        epoch_losses.push((epoch_loss / bags.len() as f64) as f32);
        sgd.decay_lr(config.lr_decay);
    }
    TrainStats { epoch_losses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HyperParams;
    use crate::model::{entity_type_table, prepare_bags, ModelSpec, ReModel};
    use imre_corpus::{Dataset, DatasetConfig, SentenceGenConfig, WorldConfig};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig {
            name: "t".into(),
            world: WorldConfig {
                n_relations: 4,
                entities_per_cluster: 6,
                facts_per_relation: 10,
                cluster_reuse_prob: 0.3,
                seed: 3,
            },
            sentence: SentenceGenConfig {
                noise_prob: 0.1,
                min_len: 6,
                max_len: 12,
            },
            train_fraction: 0.7,
            na_train: 8,
            na_test: 4,
            na_hard_fraction: 0.5,
            zipf_alpha: 2.0,
            max_sentences_per_bag: 6,
            seed: 5,
        })
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = tiny_dataset();
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            38,
            8,
            11,
        );
        let tc = TrainConfig {
            epochs: 8,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed: 13,
        };
        let stats = train_model(&mut model, &bags, &ctx, &tc);
        assert_eq!(stats.epoch_losses.len(), 8);
        assert!(
            stats.final_loss() < stats.epoch_losses[0] * 0.85,
            "losses {:?}",
            stats.epoch_losses
        );
    }

    #[test]
    fn trained_model_beats_chance_on_train_set() {
        let ds = tiny_dataset();
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            38,
            8,
            17,
        );
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed: 19,
        };
        train_model(&mut model, &bags, &ctx, &tc);
        let correct = bags
            .iter()
            .filter(|b| {
                let probs = model.predict(b, &ctx);
                let argmax = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                argmax == b.label
            })
            .count();
        let acc = correct as f32 / bags.len() as f32;
        assert!(acc > 1.5 / 4.0, "train accuracy {acc} not above chance");
    }

    #[test]
    #[should_panic(expected = "no training bags")]
    fn empty_training_set_panics() {
        let ds = tiny_dataset();
        let hp = HyperParams::tiny();
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(ModelSpec::pcnn(), &hp, ds.vocab.len(), 4, 38, 8, 1);
        let tc = TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 0.1,
            lr_decay: 1.0,
            clip_norm: 5.0,
            seed: 1,
        };
        let _ = train_model(&mut model, &[], &ctx, &tc);
    }
}
