//! The unified relation-extraction model (paper Figure 2).
//!
//! A [`ReModel`] is assembled from a [`ModelSpec`]: a sentence encoder
//! (CNN / PCNN / bi-GRU), a bag aggregator (mean or selective attention,
//! optionally with BGWA's word-level attention), and — for the `PA-*`
//! variants — the entity-type and implicit-mutual-relation components fused
//! by the learned combiner. Every system row of the paper's Table IV and
//! Figure 5 is one `ModelSpec`.

use crate::attention::{mean_aggregate, AggKind, SelectiveAttention, WordAttention};
use crate::components::{Combiner, MrComponent, TypeComponent};
use crate::config::HyperParams;
use crate::encoder::{Encoder, EncoderKind};
use crate::features::{featurize, SentenceFeatures};
use imre_corpus::{Bag, World};
use imre_graph::EntityEmbedding;
use imre_nn::{GradStore, Linear, ParamStore, Tape, Var};
use imre_tensor::{bufpool, BufferPool, PoolStats, TensorRng};

/// Declarative description of a model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Sentence encoder architecture.
    pub encoder: EncoderKind,
    /// Bag aggregation strategy.
    pub agg: AggKind,
    /// Word-level attention inside each sentence (BGWA).
    pub word_att: bool,
    /// Include the entity-type component (`…-T`).
    pub use_type: bool,
    /// Include the implicit-mutual-relation component (`…-MR`).
    pub use_mr: bool,
}

impl ModelSpec {
    /// Plain PCNN (Zeng 2015): piecewise CNN, mean aggregation.
    pub fn pcnn() -> Self {
        ModelSpec {
            encoder: EncoderKind::Pcnn,
            agg: AggKind::Mean,
            word_att: false,
            use_type: false,
            use_mr: false,
        }
    }

    /// PCNN + selective attention (Lin 2016) — the paper's base model.
    pub fn pcnn_att() -> Self {
        ModelSpec {
            agg: AggKind::Att,
            ..Self::pcnn()
        }
    }

    /// CNN + selective attention.
    pub fn cnn_att() -> Self {
        ModelSpec {
            encoder: EncoderKind::Cnn,
            ..Self::pcnn_att()
        }
    }

    /// Bi-GRU + selective attention.
    pub fn gru_att() -> Self {
        ModelSpec {
            encoder: EncoderKind::Gru,
            ..Self::pcnn_att()
        }
    }

    /// BGWA (Jat 2018): bi-GRU with word- and sentence-level attention.
    pub fn bgwa() -> Self {
        ModelSpec {
            encoder: EncoderKind::Gru,
            agg: AggKind::Att,
            word_att: true,
            use_type: false,
            use_mr: false,
        }
    }

    /// PA-T: PCNN+ATT with the entity-type component.
    pub fn pa_t() -> Self {
        ModelSpec {
            use_type: true,
            ..Self::pcnn_att()
        }
    }

    /// PA-MR: PCNN+ATT with the implicit-mutual-relation component.
    pub fn pa_mr() -> Self {
        ModelSpec {
            use_mr: true,
            ..Self::pcnn_att()
        }
    }

    /// PA-TMR: the paper's full model.
    pub fn pa_tmr() -> Self {
        ModelSpec {
            use_type: true,
            use_mr: true,
            ..Self::pcnn_att()
        }
    }

    /// Adds both entity-information components to any base spec (the
    /// Figure 5 `X → X+TMR` transformation).
    pub fn with_tmr(self) -> Self {
        ModelSpec {
            use_type: true,
            use_mr: true,
            ..self
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        if *self == Self::pa_tmr() {
            return "PA-TMR".to_string();
        }
        if *self == Self::pa_t() {
            return "PA-T".to_string();
        }
        if *self == Self::pa_mr() {
            return "PA-MR".to_string();
        }
        if *self == Self::bgwa() {
            return "BGWA".to_string();
        }
        let mut name = self.encoder.name().to_string();
        if self.word_att {
            name.push_str("+WATT");
        }
        if self.agg == AggKind::Att {
            name.push_str("+ATT");
        }
        match (self.use_type, self.use_mr) {
            (true, true) => name.push_str("+TMR"),
            (true, false) => name.push_str("+T"),
            (false, true) => name.push_str("+MR"),
            (false, false) => {}
        }
        name
    }
}

/// A featurised bag ready for training/evaluation.
#[derive(Debug, Clone)]
pub struct PreparedBag {
    /// Head entity id.
    pub head: usize,
    /// Tail entity id.
    pub tail: usize,
    /// Gold (distant-supervision) relation index.
    pub label: usize,
    /// Featurised sentences.
    pub sentences: Vec<SentenceFeatures>,
}

/// Featurises a corpus split once, up front.
pub fn prepare_bags(bags: &[Bag], hp: &HyperParams) -> Vec<PreparedBag> {
    bags.iter()
        .map(|b| PreparedBag {
            head: b.head.0,
            tail: b.tail.0,
            label: b.label.0,
            sentences: b
                .sentences
                .iter()
                .map(|s| featurize(s, hp.max_len, hp.pos_clip))
                .collect(),
        })
        .collect()
}

/// Per-entity coarse-type id lists, extracted from the world model.
pub fn entity_type_table(world: &World) -> Vec<Vec<usize>> {
    world
        .entities
        .iter()
        .map(|e| e.types.iter().map(|t| t.0).collect())
        .collect()
}

/// Side information a model may consume at forward time.
pub struct BagContext<'a> {
    /// LINE entity embeddings (required when `use_mr`).
    pub entity_embedding: Option<&'a EntityEmbedding>,
    /// Per-entity type ids (required when `use_type`).
    pub entity_types: &'a [Vec<usize>],
}

/// An instantiated relation-extraction model with its parameters.
pub struct ReModel {
    /// The variant this model implements.
    pub spec: ModelSpec,
    /// Hyperparameters the model was built with.
    pub hp: HyperParams,
    /// Trainable parameters.
    pub store: ParamStore,
    /// Gradient buffers.
    pub grads: GradStore,
    /// Tensor-buffer arena threaded through every training step: the tape
    /// of step *n*+1 is served from the recycled buffers of step *n*, so
    /// steady-state training performs no per-step tensor allocations.
    arena: BufferPool,
    encoder: Encoder,
    word_att: Option<WordAttention>,
    att: Option<SelectiveAttention>,
    re_head: Linear,
    mr: Option<MrComponent>,
    ty: Option<TypeComponent>,
    combiner: Option<Combiner>,
    num_relations: usize,
    vocab_size: usize,
    num_types: usize,
    entity_dim: usize,
}

impl ReModel {
    /// Builds a model for a dataset with `vocab_size` tokens,
    /// `num_relations` labels and `num_types` coarse entity types.
    /// `entity_dim` is the width of the LINE embeddings fed to the MR
    /// component (ignored unless `spec.use_mr`).
    pub fn new(
        spec: ModelSpec,
        hp: &HyperParams,
        vocab_size: usize,
        num_relations: usize,
        num_types: usize,
        entity_dim: usize,
        seed: u64,
    ) -> Self {
        let mut rng = TensorRng::seed(seed);
        let mut store = ParamStore::new();
        let encoder = Encoder::new(spec.encoder, &mut store, "enc", vocab_size, hp, &mut rng);
        let sent_dim = if spec.word_att {
            encoder.token_dim()
        } else {
            encoder.out_dim()
        };
        let word_att = spec
            .word_att
            .then(|| WordAttention::new(&mut store, "watt", encoder.token_dim(), &mut rng));
        let att = (spec.agg == AggKind::Att)
            .then(|| SelectiveAttention::new(&mut store, "att", sent_dim, num_relations, &mut rng));
        let re_head = Linear::new(&mut store, "re_head", sent_dim, num_relations, &mut rng);
        let mr = spec
            .use_mr
            .then(|| MrComponent::new(&mut store, "mr", entity_dim, num_relations, &mut rng));
        let ty = spec.use_type.then(|| {
            TypeComponent::new(
                &mut store,
                "ty",
                num_types,
                hp.type_dim,
                num_relations,
                &mut rng,
            )
        });
        let combiner = (spec.use_mr || spec.use_type)
            .then(|| Combiner::new(&mut store, "comb", num_relations, &mut rng));
        let grads = GradStore::zeros_like(&store);
        ReModel {
            spec,
            hp: hp.clone(),
            store,
            grads,
            arena: BufferPool::new(),
            encoder,
            word_att,
            att,
            re_head,
            mr,
            ty,
            combiner,
            num_relations,
            vocab_size,
            num_types,
            entity_dim,
        }
    }

    /// The vocabulary size the model was built for.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The number of coarse entity types the model was built for.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// The entity-embedding width the MR component expects.
    pub fn entity_dim(&self) -> usize {
        self.entity_dim
    }

    /// Number of relation labels.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Encodes one sentence (dispatching on the BGWA word-attention flag).
    fn encode_sentence(
        &self,
        tape: &mut Tape,
        feats: &SentenceFeatures,
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        match &self.word_att {
            None => self.encoder.encode(tape, feats, training, rng),
            Some(wa) => {
                let states = self.encoder.token_states(tape, feats);
                let pooled = wa.pool(tape, states);
                tape.tanh(pooled)
            }
        }
    }

    /// Stacks all sentence encodings of a bag into `[n, sent_dim]`.
    fn bag_matrix(
        &self,
        tape: &mut Tape,
        bag: &PreparedBag,
        training: bool,
        rng: &mut TensorRng,
    ) -> Var {
        let rows: Vec<Var> = bag
            .sentences
            .iter()
            .map(|s| self.encode_sentence(tape, s, training, rng))
            .collect();
        tape.stack_rows(&rows)
    }

    /// Pre-softmax component scores for a pair.
    fn side_logits(
        &self,
        tape: &mut Tape,
        bag: &PreparedBag,
        ctx: &BagContext,
    ) -> (Option<Var>, Option<Var>) {
        let mr_logits = self.mr.as_ref().map(|mr| {
            let emb = ctx
                .entity_embedding
                .expect("spec.use_mr requires BagContext::entity_embedding");
            let mut mr_vec = tape.alloc(&[emb.dim()]);
            emb.mutual_relation_into(bag.head, bag.tail, &mut mr_vec);
            mr.logits(tape, mr_vec)
        });
        let t_logits = self.ty.as_ref().map(|ty| {
            ty.logits(
                tape,
                &ctx.entity_types[bag.head],
                &ctx.entity_types[bag.tail],
            )
        });
        (mr_logits, t_logits)
    }

    /// Component confidences for a pair (shared by train and predict paths).
    fn side_confidences(
        &self,
        tape: &mut Tape,
        bag: &PreparedBag,
        ctx: &BagContext,
    ) -> (Option<Var>, Option<Var>) {
        let (mr_logits, t_logits) = self.side_logits(tape, bag, ctx);
        (
            mr_logits.map(|l| tape.softmax(l)),
            t_logits.map(|l| tape.softmax(l)),
        )
    }

    /// Computes the training loss for one bag and accumulates gradients
    /// (scaled by `scale`, typically `1 / batch_size`). Returns the loss.
    pub fn bag_loss_and_backward(
        &mut self,
        bag: &PreparedBag,
        ctx: &BagContext,
        scale: f32,
        rng: &mut TensorRng,
    ) -> f32 {
        // Split borrows: the tape reads `store` (a precise field loan),
        // backward writes `grads`. The arena moves into the tape and comes
        // back from `backward_scaled`, recycled for the next step.
        let arena = std::mem::take(&mut self.arena);
        let store = &self.store;
        let mut tape = Tape::with_pool(store, arena);

        let xs = self.bag_matrix(&mut tape, bag, true, rng);
        let bag_vec = match &self.att {
            Some(att) => att.aggregate(&mut tape, xs, bag.label),
            None => mean_aggregate(&mut tape, xs),
        };
        let re_logits = self.re_head.forward_vec(&mut tape, bag_vec);

        let loss = match &self.combiner {
            None => tape.softmax_cross_entropy(re_logits, bag.label),
            Some(comb) => {
                let re_soft = tape.softmax(re_logits);
                let (mr_logits, t_logits) = self.side_logits(&mut tape, bag, ctx);
                let c_mr = mr_logits.map(|l| tape.softmax(l));
                let c_t = t_logits.map(|l| tape.softmax(l));
                let logits = comb.combine(&mut tape, c_mr, c_t, re_soft);
                // Deep supervision: auxiliary cross-entropy on each
                // component's own logits (weight 0.5). The combined head
                // (the paper's P(r)) stays the only prediction path; the
                // auxiliary terms keep gradients flowing through the softmax
                // bottleneck — without the RE term the encoder starves and
                // the model collapses to always-NA, and ablations showed the
                // side-component terms also help PA-TMR (DESIGN.md §4b.2).
                let mut loss = tape.softmax_cross_entropy(logits, bag.label);
                for aux_logits in [Some(re_logits), mr_logits, t_logits].into_iter().flatten() {
                    let aux = tape.softmax_cross_entropy(aux_logits, bag.label);
                    let scaled = tape.scale(aux, 0.5);
                    loss = tape.add(loss, scaled);
                }
                loss
            }
        };
        let loss_val = tape.value(loss).data()[0];
        self.arena = tape.backward_scaled(loss, scale, &mut self.grads);
        loss_val
    }

    /// Allocator-pressure counters of the model's training arena.
    pub fn arena_stats(&self) -> PoolStats {
        self.arena.stats()
    }

    /// Loads pretrained word embeddings (e.g. skip-gram vectors from
    /// [`crate::pretrain`]) into the encoder's word table. The table is
    /// still fine-tuned during training, as in the paper's stack.
    ///
    /// # Panics
    /// If the matrix shape differs from `[vocab_size, word_dim]`.
    pub fn set_word_embeddings(&mut self, matrix: imre_tensor::Tensor) {
        self.store
            .set(self.encoder.frontend().word_emb_id(), matrix);
    }

    /// Sentence-vector width (the encoder output the heads consume).
    pub fn sent_dim(&self) -> usize {
        if self.spec.word_att {
            self.encoder.token_dim()
        } else {
            self.encoder.out_dim()
        }
    }

    /// Eval-mode encodings of every sentence in a bag (used by the CNN+RL
    /// instance selector, which scores sentences outside the tape).
    pub fn sentence_encodings(&self, bag: &PreparedBag) -> Vec<Vec<f32>> {
        let mut rng = TensorRng::seed(0);
        let mut tape = Tape::inference(&self.store);
        bag.sentences
            .iter()
            .map(|s| {
                let v = self.encode_sentence(&mut tape, s, false, &mut rng);
                tape.value(v).data().to_vec()
            })
            .collect()
    }

    /// Predicts the per-relation probability vector for a bag (eval mode).
    ///
    /// With selective attention, each candidate relation queries its own bag
    /// representation and contributes its diagonal softmax score (Lin et
    /// al.'s held-out protocol); the `PA-*` variants then pass that score
    /// vector through the combiner with the side confidences.
    pub fn predict(&self, bag: &PreparedBag, ctx: &BagContext) -> Vec<f32> {
        let mut tape = Tape::inference(&self.store);
        self.predict_into(&mut tape, bag, ctx)
    }

    /// [`ReModel::predict`] onto a caller-supplied tape. The serving engine
    /// uses this to run a whole micro-batch on one tape (see
    /// [`ReModel::predict_batch`]); the tape should be an inference tape and
    /// is left holding the last bag's graph — call [`Tape::reset`] between
    /// bags.
    pub fn predict_into<'a>(
        &'a self,
        tape: &mut Tape<'a>,
        bag: &PreparedBag,
        ctx: &BagContext,
    ) -> Vec<f32> {
        let mut rng = TensorRng::seed(0); // eval mode: dropout disabled, rng unused
        let xs = self.bag_matrix(tape, bag, false, &mut rng);
        self.scores_from_matrix(tape, xs, bag, ctx)
    }

    /// Scores a bag given its already-stacked sentence matrix — the shared
    /// tail of [`ReModel::predict_into`] and
    /// [`ReModel::predict_with_repr_into`], so the encoder runs exactly
    /// once per bag whether or not a representation is exported.
    fn scores_from_matrix<'a>(
        &'a self,
        tape: &mut Tape<'a>,
        xs: Var,
        bag: &PreparedBag,
        ctx: &BagContext,
    ) -> Vec<f32> {
        // The per-relation score vector lives in a pooled tensor: the only
        // heap allocation left on this path is the returned response Vec.
        let mut re_scores = tape.alloc(&[self.num_relations]);
        match &self.att {
            None => {
                let bag_vec = mean_aggregate(tape, xs);
                let logits = self.re_head.forward_vec(tape, bag_vec);
                let probs = tape.softmax(logits);
                re_scores
                    .data_mut()
                    .copy_from_slice(tape.value(probs).data());
            }
            Some(att) => {
                for r in 0..self.num_relations {
                    let bag_vec = att.aggregate(tape, xs, r);
                    let logits = self.re_head.forward_vec(tape, bag_vec);
                    let probs = tape.softmax(logits);
                    re_scores.data_mut()[r] = tape.value(probs).data()[r];
                }
            }
        }

        match &self.combiner {
            None => {
                let out = re_scores.data().to_vec();
                tape.recycle(re_scores);
                out
            }
            Some(comb) => {
                let re = tape.leaf(re_scores);
                let (c_mr, c_t) = self.side_confidences(tape, bag, ctx);
                let logits = comb.combine(tape, c_mr, c_t, re);
                let probs = tape.softmax(logits);
                tape.value(probs).data().to_vec()
            }
        }
    }

    /// Predicts a whole micro-batch of bags on one reused inference tape.
    /// Produces exactly the same scores as calling [`ReModel::predict`] per
    /// bag (each bag's graph is independent; the tape is reset in between),
    /// but amortizes tape allocation across the batch.
    ///
    /// With a multi-thread compute pool the bags run in parallel, one
    /// inference tape per bag writing its own output slot — bag-level
    /// parallelism for the serving engine's batched forward. Scores are
    /// bit-identical either way: each bag's graph is evaluated by exactly
    /// one thread with the same kernel code.
    pub fn predict_batch(&self, bags: &[&PreparedBag], ctx: &BagContext) -> Vec<Vec<f32>> {
        let mut pool = BufferPool::new();
        self.predict_batch_pooled(bags, ctx, &mut pool)
    }

    /// [`ReModel::predict_batch`] served from a caller-owned buffer arena.
    ///
    /// The serving engine holds one arena per worker and passes it to every
    /// batch: after the first batch warms the pool, steady-state forward
    /// passes perform zero tensor allocations (`pool.stats().misses` stops
    /// growing). On a multi-thread compute pool each task runs on its
    /// worker thread's own stash ([`bufpool::with_local`]) — buffers never
    /// cross threads — and the stash activity is folded into `pool`'s
    /// counters so the caller sees the whole batch's allocator pressure.
    /// Scores are bit-identical to [`ReModel::predict_batch`]: pooled
    /// buffers are re-zeroed on alloc, and batch partitioning never changes
    /// per-bag kernel order.
    pub fn predict_batch_pooled(
        &self,
        bags: &[&PreparedBag],
        ctx: &BagContext,
        pool: &mut BufferPool,
    ) -> Vec<Vec<f32>> {
        if imre_tensor::pool::current_threads() <= 1 || bags.len() <= 1 {
            let mut tape = Tape::inference_with_pool(&self.store, std::mem::take(pool));
            let scores = bags
                .iter()
                .map(|bag| {
                    tape.reset();
                    self.predict_into(&mut tape, bag, ctx)
                })
                .collect();
            *pool = tape.into_pool();
            return scores;
        }
        let results = imre_tensor::pool::par_map(bags.len(), |i| {
            bufpool::with_local(|stash| {
                let before = stash.stats();
                let mut tape = Tape::inference_with_pool(&self.store, std::mem::take(stash));
                let scores = self.predict_into(&mut tape, bags[i], ctx);
                *stash = tape.into_pool();
                (scores, stash.stats().since(&before))
            })
        });
        results
            .into_iter()
            .map(|(scores, delta)| {
                pool.absorb_stats(&delta);
                scores
            })
            .collect()
    }

    /// Writes the pooled bag representation for stacked sentence encodings
    /// `xs` into `out`. This is the **single** pooling code path behind
    /// every representation consumer — training-time index export,
    /// `imre eval --knn`, and the serve-time query — so the index and its
    /// queries can never drift apart (ISSUE 6 satellite).
    ///
    /// The representation is the eval-mode unweighted mean over the bag's
    /// sentence encodings (`mean_aggregate`), dimension
    /// [`ReModel::sent_dim`]. Attention is deliberately not applied: it is
    /// relation-conditioned, and the index needs one vector per bag.
    fn repr_from_matrix<'a>(&'a self, tape: &mut Tape<'a>, xs: Var, out: &mut [f32]) {
        let pooled = mean_aggregate(tape, xs);
        out.copy_from_slice(tape.value(pooled).data());
    }

    /// Pooled bag representation onto a caller-supplied tape; `out` must
    /// have length [`ReModel::sent_dim`].
    pub fn predict_repr_into<'a>(
        &'a self,
        tape: &mut Tape<'a>,
        bag: &PreparedBag,
        out: &mut [f32],
    ) {
        let mut rng = TensorRng::seed(0); // eval mode: dropout disabled, rng unused
        let xs = self.bag_matrix(tape, bag, false, &mut rng);
        self.repr_from_matrix(tape, xs, out);
    }

    /// Pooled bag representation of one bag (eval mode, fresh tape).
    pub fn predict_repr(&self, bag: &PreparedBag) -> Vec<f32> {
        let mut tape = Tape::inference(&self.store);
        let mut out = vec![0.0; self.sent_dim()];
        self.predict_repr_into(&mut tape, bag, &mut out);
        out
    }

    /// Pooled bag representations for a batch, parallelized over the
    /// compute pool exactly like [`ReModel::predict_batch_pooled`] (each
    /// bag's encodings are computed by one thread in a fixed kernel order,
    /// so results are bit-identical across `--threads`). Used to export
    /// the training-bag matrix the ANN index is built over.
    pub fn predict_repr_batch(&self, bags: &[&PreparedBag]) -> Vec<Vec<f32>> {
        if imre_tensor::pool::current_threads() <= 1 || bags.len() <= 1 {
            let mut tape = Tape::inference(&self.store);
            return bags
                .iter()
                .map(|bag| {
                    tape.reset();
                    let mut out = vec![0.0; self.sent_dim()];
                    self.predict_repr_into(&mut tape, bag, &mut out);
                    out
                })
                .collect();
        }
        imre_tensor::pool::par_map(bags.len(), |i| {
            bufpool::with_local(|stash| {
                let mut tape = Tape::inference_with_pool(&self.store, std::mem::take(stash));
                let mut out = vec![0.0; self.sent_dim()];
                self.predict_repr_into(&mut tape, bags[i], &mut out);
                *stash = tape.into_pool();
                out
            })
        })
    }

    /// [`ReModel::predict_into`] that additionally exports the bag's pooled
    /// representation (for the serve-time kNN query) from the same stacked
    /// sentence matrix — one encoder pass serves both outputs.
    pub fn predict_with_repr_into<'a>(
        &'a self,
        tape: &mut Tape<'a>,
        bag: &PreparedBag,
        ctx: &BagContext,
        repr_out: &mut [f32],
    ) -> Vec<f32> {
        let mut rng = TensorRng::seed(0); // eval mode: dropout disabled, rng unused
        let xs = self.bag_matrix(tape, bag, false, &mut rng);
        self.repr_from_matrix(tape, xs, repr_out);
        self.scores_from_matrix(tape, xs, bag, ctx)
    }

    /// [`ReModel::predict_batch_pooled`] where each bag may additionally
    /// export its pooled representation (`wants_repr[i]`). Bags that do not
    /// want a representation run the exact same code as
    /// [`ReModel::predict_batch_pooled`] — their scores stay bit-identical
    /// whether or not neighbors in the batch export representations.
    pub fn predict_batch_pooled_with_repr(
        &self,
        bags: &[&PreparedBag],
        ctx: &BagContext,
        pool: &mut BufferPool,
        wants_repr: &[bool],
    ) -> Vec<(Vec<f32>, Option<Vec<f32>>)> {
        debug_assert_eq!(bags.len(), wants_repr.len());
        if imre_tensor::pool::current_threads() <= 1 || bags.len() <= 1 {
            let mut tape = Tape::inference_with_pool(&self.store, std::mem::take(pool));
            let out = bags
                .iter()
                .zip(wants_repr)
                .map(|(bag, &wants)| {
                    tape.reset();
                    if wants {
                        let mut repr = vec![0.0; self.sent_dim()];
                        let scores = self.predict_with_repr_into(&mut tape, bag, ctx, &mut repr);
                        (scores, Some(repr))
                    } else {
                        (self.predict_into(&mut tape, bag, ctx), None)
                    }
                })
                .collect();
            *pool = tape.into_pool();
            return out;
        }
        let results = imre_tensor::pool::par_map(bags.len(), |i| {
            bufpool::with_local(|stash| {
                let before = stash.stats();
                let mut tape = Tape::inference_with_pool(&self.store, std::mem::take(stash));
                let item = if wants_repr[i] {
                    let mut repr = vec![0.0; self.sent_dim()];
                    let scores = self.predict_with_repr_into(&mut tape, bags[i], ctx, &mut repr);
                    (scores, Some(repr))
                } else {
                    (self.predict_into(&mut tape, bags[i], ctx), None)
                };
                *stash = tape.into_pool();
                (item, stash.stats().since(&before))
            })
        });
        results
            .into_iter()
            .map(|(item, delta)| {
                pool.absorb_stats(&delta);
                item
            })
            .collect()
    }

    /// Predicts and returns `(relation, score)` pairs sorted by descending
    /// score (ties broken by relation id for determinism).
    pub fn predict_ranked(&self, bag: &PreparedBag, ctx: &BagContext) -> Vec<(usize, f32)> {
        let scores = self.predict(bag, ctx);
        let mut ranked: Vec<(usize, f32)> = scores.into_iter().enumerate().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_match_paper() {
        assert_eq!(ModelSpec::pcnn().name(), "PCNN");
        assert_eq!(ModelSpec::pcnn_att().name(), "PCNN+ATT");
        assert_eq!(ModelSpec::cnn_att().name(), "CNN+ATT");
        assert_eq!(ModelSpec::gru_att().name(), "GRU+ATT");
        assert_eq!(ModelSpec::bgwa().name(), "BGWA");
        assert_eq!(ModelSpec::pa_t().name(), "PA-T");
        assert_eq!(ModelSpec::pa_mr().name(), "PA-MR");
        assert_eq!(ModelSpec::pa_tmr().name(), "PA-TMR");
        assert_eq!(ModelSpec::gru_att().with_tmr().name(), "GRU+ATT+TMR");
        assert_eq!(ModelSpec::pcnn().with_tmr().name(), "PCNN+TMR");
    }

    #[test]
    fn tmr_composition() {
        let spec = ModelSpec::pcnn_att().with_tmr();
        assert_eq!(spec, ModelSpec::pa_tmr());
    }

    fn toy_bag(label: usize) -> PreparedBag {
        let sentence = |tokens: Vec<usize>| SentenceFeatures {
            head_offsets: (0..tokens.len()).map(|i| i.min(8)).collect(),
            tail_offsets: (0..tokens.len()).map(|i| (i + 1).min(8)).collect(),
            head_pos: 1,
            tail_pos: 3,
            tokens,
        };
        PreparedBag {
            head: 0,
            tail: 1,
            label,
            sentences: vec![sentence(vec![2, 3, 4, 5, 6]), sentence(vec![4, 5, 6, 7, 2])],
        }
    }

    fn toy_types() -> Vec<Vec<usize>> {
        vec![vec![0], vec![1]]
    }

    fn tiny_hp() -> HyperParams {
        let mut hp = HyperParams::tiny();
        hp.pos_clip = 4; // matches toy offsets < 10
        hp
    }

    fn build(spec: ModelSpec) -> ReModel {
        ReModel::new(spec, &tiny_hp(), 10, 4, 5, 8, 7)
    }

    fn toy_embedding() -> imre_graph::EntityEmbedding {
        let mut rng = TensorRng::seed(1);
        imre_graph::EntityEmbedding::from_matrix(imre_tensor::Tensor::rand_uniform(
            &[3, 8],
            -1.0,
            1.0,
            &mut rng,
        ))
    }

    #[test]
    fn predict_returns_distribution_for_every_spec() {
        let emb = toy_embedding();
        let types = toy_types();
        for spec in [
            ModelSpec::pcnn(),
            ModelSpec::pcnn_att(),
            ModelSpec::cnn_att(),
            ModelSpec::gru_att(),
            ModelSpec::bgwa(),
            ModelSpec::pa_t(),
            ModelSpec::pa_mr(),
            ModelSpec::pa_tmr(),
        ] {
            let model = build(spec);
            let ctx = BagContext {
                entity_embedding: Some(&emb),
                entity_types: &types,
            };
            let probs = model.predict(&toy_bag(1), &ctx);
            assert_eq!(probs.len(), 4, "{}", spec.name());
            assert!(
                probs.iter().all(|&p| p.is_finite() && p >= 0.0),
                "{}",
                spec.name()
            );
            // combined and mean paths produce true distributions; the
            // attention diag path produces scores in (0, 1]
            assert!(probs.iter().all(|&p| p <= 1.0), "{}", spec.name());
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_bag() {
        let emb = toy_embedding();
        let types = toy_types();
        let mut model = build(ModelSpec::pa_tmr());
        let ctx = BagContext {
            entity_embedding: Some(&emb),
            entity_types: &types,
        };
        let bag = toy_bag(2);
        let mut rng = TensorRng::seed(9);
        let sgd = imre_nn::Sgd::new(0.2).with_clip_norm(5.0);
        let mut losses = Vec::new();
        for _ in 0..25 {
            let loss = model.bag_loss_and_backward(&bag, &ctx, 1.0, &mut rng);
            losses.push(loss);
            sgd.step(&mut model.store, &mut model.grads);
        }
        assert!(
            losses[24] < losses[0] * 0.7,
            "loss should shrink: {} → {}",
            losses[0],
            losses[24]
        );
    }

    #[test]
    fn repr_accessor_is_one_code_path() {
        let emb = toy_embedding();
        let types = toy_types();
        let model = build(ModelSpec::pa_tmr());
        let ctx = BagContext {
            entity_embedding: Some(&emb),
            entity_types: &types,
        };
        let (a, b) = (toy_bag(1), toy_bag(2));

        let repr = model.predict_repr(&a);
        assert_eq!(repr.len(), model.sent_dim());
        assert!(repr.iter().all(|v| v.is_finite()));

        // Batch export and the combined predict+repr path must agree bit
        // for bit with the single-bag accessor.
        let batch = model.predict_repr_batch(&[&a, &b]);
        assert_eq!(batch[0], repr);
        assert_eq!(batch[1], model.predict_repr(&b));

        let mut pool = BufferPool::new();
        let out = model.predict_batch_pooled_with_repr(&[&a, &b], &ctx, &mut pool, &[true, false]);
        assert_eq!(out[0].1.as_deref(), Some(&repr[..]));
        assert_eq!(out[1].1, None);

        // Exporting a repr must not perturb the scores, and bags that skip
        // the export must match plain predict exactly.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out[0].0), bits(&model.predict(&a, &ctx)));
        assert_eq!(bits(&out[1].0), bits(&model.predict(&b, &ctx)));
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn mr_without_embedding_panics() {
        let types = toy_types();
        let model = build(ModelSpec::pa_mr());
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let _ = model.predict(&toy_bag(0), &ctx);
    }

    #[test]
    fn prepare_bags_roundtrip() {
        use imre_corpus::{Dataset, DatasetConfig, SentenceGenConfig, WorldConfig};
        let ds = Dataset::generate(&DatasetConfig {
            name: "t".into(),
            world: WorldConfig {
                n_relations: 4,
                entities_per_cluster: 6,
                facts_per_relation: 8,
                cluster_reuse_prob: 0.3,
                seed: 1,
            },
            sentence: SentenceGenConfig::default(),
            train_fraction: 0.7,
            na_train: 5,
            na_test: 3,
            na_hard_fraction: 0.5,
            zipf_alpha: 2.0,
            max_sentences_per_bag: 10,
            seed: 2,
        });
        let hp = HyperParams::tiny();
        let prepared = prepare_bags(&ds.train, &hp);
        assert_eq!(prepared.len(), ds.train.len());
        for (p, b) in prepared.iter().zip(&ds.train) {
            assert_eq!(p.sentences.len(), b.sentences.len());
            assert_eq!(p.label, b.label.0);
        }
        let types = entity_type_table(&ds.world);
        assert_eq!(types.len(), ds.world.num_entities());
    }
}
