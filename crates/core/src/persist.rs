//! Whole-model persistence: save a trained [`ReModel`] with its metadata
//! and reload it later without re-training.
//!
//! The file carries a metadata header (spec flags, hyperparameters, shape
//! arguments) followed by the parameter store in the `imre-nn` IMRP format,
//! so a loaded model is reconstructed with the exact architecture and then
//! overwritten with the trained weights.

use crate::attention::AggKind;
use crate::config::HyperParams;
use crate::encoder::EncoderKind;
use crate::model::{ModelSpec, ReModel};
use imre_nn::serialize::{read_params, write_params};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"IMRM";
const VERSION: u32 = 1;

/// Saves a model (architecture + weights) to a writer.
pub fn write_model<W: Write>(model: &ReModel, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    // spec
    let enc = match model.spec.encoder {
        EncoderKind::Cnn => 0u8,
        EncoderKind::Pcnn => 1,
        EncoderKind::Gru => 2,
    };
    let agg = match model.spec.agg {
        AggKind::Mean => 0u8,
        AggKind::Att => 1,
    };
    w.write_all(&[
        enc,
        agg,
        model.spec.word_att as u8,
        model.spec.use_type as u8,
        model.spec.use_mr as u8,
    ])?;
    // shape arguments
    for v in [
        model.vocab_size() as u64,
        model.num_relations() as u64,
        model.num_types() as u64,
        model.entity_dim() as u64,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    // hyperparameters
    let hp = &model.hp;
    for v in [
        hp.entity_dim as u64,
        hp.type_dim as u64,
        hp.window as u64,
        hp.filters as u64,
        hp.pos_dim as u64,
        hp.word_dim as u64,
        hp.gru_hidden as u64,
        hp.max_len as u64,
        hp.batch_size as u64,
        hp.epochs as u64,
        hp.pos_clip as u64,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    w.write_all(&hp.lr.to_le_bytes())?;
    w.write_all(&hp.dropout.to_le_bytes())?;
    // weights
    write_params(&model.store, w)
}

/// Loads a model saved by [`write_model`].
///
/// # Errors
/// On malformed input or an architecture/weight mismatch.
pub fn read_model<R: Read>(r: &mut R) -> io::Result<ReModel> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an IMRM model file",
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported IMRM version {version}"),
        ));
    }
    let mut flags = [0u8; 5];
    r.read_exact(&mut flags)?;
    let encoder = match flags[0] {
        0 => EncoderKind::Cnn,
        1 => EncoderKind::Pcnn,
        2 => EncoderKind::Gru,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad encoder tag {other}"),
            ))
        }
    };
    let agg = match flags[1] {
        0 => AggKind::Mean,
        1 => AggKind::Att,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad aggregation tag {other}"),
            ))
        }
    };
    let spec = ModelSpec {
        encoder,
        agg,
        word_att: flags[2] != 0,
        use_type: flags[3] != 0,
        use_mr: flags[4] != 0,
    };
    let vocab_size = read_u64(r)? as usize;
    let num_relations = read_u64(r)? as usize;
    let num_types = read_u64(r)? as usize;
    let entity_dim = read_u64(r)? as usize;
    let mut hp = HyperParams::scaled();
    hp.entity_dim = read_u64(r)? as usize;
    hp.type_dim = read_u64(r)? as usize;
    hp.window = read_u64(r)? as usize;
    hp.filters = read_u64(r)? as usize;
    hp.pos_dim = read_u64(r)? as usize;
    hp.word_dim = read_u64(r)? as usize;
    hp.gru_hidden = read_u64(r)? as usize;
    hp.max_len = read_u64(r)? as usize;
    hp.batch_size = read_u64(r)? as usize;
    hp.epochs = read_u64(r)? as usize;
    hp.pos_clip = read_u64(r)? as usize;
    hp.lr = read_f32(r)?;
    hp.dropout = read_f32(r)?;

    let loaded = read_params(r)?;

    // Rebuild the architecture (seed irrelevant — weights are overwritten)
    // and copy the trained values in by name.
    let mut model = ReModel::new(
        spec,
        &hp,
        vocab_size,
        num_relations,
        num_types,
        entity_dim,
        0,
    );
    if loaded.len() != model.store.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "weight count mismatch: file has {}, architecture needs {}",
                loaded.len(),
                model.store.len()
            ),
        ));
    }
    for (_, name, tensor) in loaded.iter() {
        let id = model.store.find(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected parameter {name:?} in file"),
            )
        })?;
        if model.store.get(id).shape() != tensor.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for {name:?}"),
            ));
        }
        model.store.set(id, tensor.clone());
    }
    Ok(model)
}

/// A sibling temp path for atomic write-rename: `m.imrm` → `m.imrm.tmp`.
/// Same directory, so the final rename stays within one filesystem.
pub(crate) fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Saves a model to a file **atomically**: the bytes are written to a
/// `<path>.tmp` sibling, flushed, and renamed over `path`, so a crash
/// mid-save (or a reader racing a checkpoint) can never observe a
/// truncated `.imrm` — it sees either the old complete file or the new one.
pub fn save_model(model: &ReModel, path: &Path) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let file = std::fs::File::create(&tmp)?;
    let mut w = io::BufWriter::new(file);
    write_model(model, &mut w)?;
    w.flush()?;
    w.into_inner()
        .map_err(|e| io::Error::other(e.to_string()))?
        .sync_all()?;
    std::fs::rename(&tmp, path)
}

/// Loads a model from a file.
pub fn load_model(path: &Path) -> io::Result<ReModel> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    read_model(&mut file)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{entity_type_table, prepare_bags, BagContext};
    use imre_corpus::Dataset;
    use imre_eval_shim::smoke;

    /// Local stand-in to avoid a dev-dependency cycle with imre-eval: the
    /// same small dataset config the eval crate's smoke preset uses.
    mod imre_eval_shim {
        use imre_corpus::{DatasetConfig, SentenceGenConfig, WorldConfig};

        pub fn smoke(seed: u64) -> DatasetConfig {
            DatasetConfig {
                name: "persist-smoke".into(),
                world: WorldConfig {
                    n_relations: 5,
                    entities_per_cluster: 8,
                    facts_per_relation: 20,
                    cluster_reuse_prob: 0.3,
                    seed: seed ^ 0x5111,
                },
                sentence: SentenceGenConfig {
                    noise_prob: 0.2,
                    min_len: 6,
                    max_len: 14,
                },
                train_fraction: 0.7,
                na_train: 30,
                na_test: 15,
                na_hard_fraction: 0.5,
                zipf_alpha: 1.8,
                max_sentences_per_bag: 8,
                seed,
            }
        }
    }

    fn trained_model() -> (ReModel, Dataset) {
        let ds = Dataset::generate(&smoke(5));
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut model = ReModel::new(
            ModelSpec::pa_t(),
            &hp,
            ds.vocab.len(),
            ds.num_relations(),
            38,
            hp.entity_dim,
            7,
        );
        let tc = crate::train::TrainConfig {
            epochs: 2,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed: 3,
        };
        crate::train::train_model(&mut model, &bags, &ctx, &tc);
        (model, ds)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let (model, ds) = trained_model();
        let mut buf = Vec::new();
        write_model(&model, &mut buf).unwrap();
        let loaded = read_model(&mut buf.as_slice()).unwrap();

        let hp = HyperParams::tiny();
        let test = prepare_bags(&ds.test, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        for bag in test.iter().take(10) {
            let a = model.predict(bag, &ctx);
            let b = loaded.predict(bag, &ctx);
            assert_eq!(a, b, "loaded model must predict identically");
        }
        assert_eq!(loaded.spec, model.spec);
        assert_eq!(loaded.num_relations(), model.num_relations());
    }

    #[test]
    fn file_roundtrip() {
        let (model, _) = trained_model();
        let dir = std::env::temp_dir().join("imre_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.imrm");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.store.num_scalars(), model.store.num_scalars());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_no_tmp_residue() {
        let (model, _) = trained_model();
        let dir = std::env::temp_dir().join("imre_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.imrm");
        // Overwrite an existing (stale) file: rename must replace it whole.
        std::fs::write(&path, b"stale").unwrap();
        save_model(&model, &path).unwrap();
        assert!(
            !tmp_sibling(&path).exists(),
            "tmp sibling must be renamed away"
        );
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.store.num_scalars(), model.store.num_scalars());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_rejected() {
        let buf = b"XXXX\x01\x00\x00\x00".to_vec();
        assert!(read_model(&mut buf.as_slice()).is_err());
    }
}
