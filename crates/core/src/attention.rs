//! Bag aggregation (paper §III-C step 3).
//!
//! The selective attention of Lin et al. (2016) scores each sentence in a
//! bag against a relation query through a bilinear form with diagonal `A`:
//!
//! ```text
//! q_j = x_j A r        α_j = softmax(q)_j        X_bag = Σ_j α_j x_j
//! ```
//!
//! Since `A` is diagonal, `x_j A r = x_j · (a ⊙ r)`, which maps onto the
//! tape's `mul` + `matvec` ops. Models without attention aggregate by mean
//! (every sentence weighted equally — no noise mitigation, which is exactly
//! why plain PCNN trails PCNN+ATT in the paper's Table IV).

use imre_nn::{ParamId, ParamStore, Tape, Var};
use imre_tensor::TensorRng;

/// How a bag of sentence encodings becomes one bag vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Unweighted mean over sentences.
    Mean,
    /// Selective attention queried by relation.
    Att,
}

/// Learned selective-attention parameters.
pub struct SelectiveAttention {
    /// Diagonal of the bilinear matrix `A`, shape `[dim]`.
    a_diag: ParamId,
    /// Relation query vectors, shape `[num_relations, dim]`.
    queries: ParamId,
}

impl SelectiveAttention {
    /// Registers attention parameters under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        num_relations: usize,
        rng: &mut TensorRng,
    ) -> Self {
        // A starts at identity so early training behaves like dot-product
        // attention; queries start small-random.
        let a_diag = store.register(&format!("{name}.a_diag"), imre_tensor::Tensor::ones(&[dim]));
        let queries = store.uniform(&format!("{name}.queries"), &[num_relations, dim], 0.1, rng);
        SelectiveAttention { a_diag, queries }
    }

    /// Attention scores `α` for a `[n, dim]` bag queried by `relation`.
    pub fn weights(&self, tape: &mut Tape, xs: Var, relation: usize) -> Var {
        let a = tape.param(self.a_diag);
        let q2 = tape.gather(self.queries, &[relation]);
        let q = tape.reshape(q2, &[tape_cols(tape, xs)]);
        let ar = tape.mul(a, q);
        let scores = tape.matvec(xs, ar);
        tape.softmax(scores)
    }

    /// Aggregates a `[n, dim]` bag into a rank-1 bag vector using the
    /// attention distribution for `relation`.
    pub fn aggregate(&self, tape: &mut Tape, xs: Var, relation: usize) -> Var {
        let alpha = self.weights(tape, xs, relation);
        tape.weighted_sum_rows(xs, alpha)
    }
}

/// Mean aggregation of a `[n, dim]` bag.
pub fn mean_aggregate(tape: &mut Tape, xs: Var) -> Var {
    tape.mean_rows(xs)
}

fn tape_cols(tape: &Tape, v: Var) -> usize {
    tape.value(v).cols()
}

/// Word-level attention (BGWA, Jat et al. 2018): scores each token state
/// through a small MLP and pools tokens by the resulting distribution.
pub struct WordAttention {
    w: ParamId,
    v: ParamId,
}

impl WordAttention {
    /// Registers word-attention parameters for `token_dim`-wide states.
    pub fn new(store: &mut ParamStore, name: &str, token_dim: usize, rng: &mut TensorRng) -> Self {
        let w = store.xavier(&format!("{name}.w"), token_dim, token_dim, rng);
        let v = store.uniform(&format!("{name}.v"), &[token_dim], 0.1, rng);
        WordAttention { w, v }
    }

    /// Pools `[T, token_dim]` token states into a rank-1 sentence vector:
    /// `β_t = softmax(v · tanh(W h_t))`, output `Σ_t β_t h_t`.
    pub fn pool(&self, tape: &mut Tape, states: Var) -> Var {
        let w = tape.param(self.w);
        let proj = tape.matmul(states, w);
        let act = tape.tanh(proj);
        let v = tape.param(self.v);
        let scores = tape.matvec(act, v);
        let beta = tape.softmax(scores);
        tape.weighted_sum_rows(states, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_nn::GradStore;
    use imre_tensor::Tensor;

    #[test]
    fn attention_weights_sum_to_one() {
        let mut rng = TensorRng::seed(1);
        let mut store = ParamStore::new();
        let att = SelectiveAttention::new(&mut store, "att", 4, 3, &mut rng);
        let mut tape = Tape::new(&store);
        let xs = tape.leaf(Tensor::rand_uniform(&[5, 4], -1.0, 1.0, &mut rng));
        let alpha = att.weights(&mut tape, xs, 1);
        let sum: f32 = tape.value(alpha).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(tape.value(alpha).len(), 5);
    }

    #[test]
    fn attention_prefers_aligned_sentence() {
        // With identity A, the sentence most aligned with the query gets
        // the largest weight.
        let mut rng = TensorRng::seed(2);
        let mut store = ParamStore::new();
        let att = SelectiveAttention::new(&mut store, "att", 2, 1, &mut rng);
        store.set(
            store.find("att.queries").unwrap(),
            Tensor::from_vec(vec![1.0, 0.0], &[1, 2]),
        );
        let mut tape = Tape::new(&store);
        let xs = tape.leaf(Tensor::from_vec(
            vec![
                0.0, 1.0, // orthogonal to query
                3.0, 0.0, // aligned
                1.0, 1.0,
            ],
            &[3, 2],
        ));
        let alpha = att.weights(&mut tape, xs, 0);
        let w = tape.value(alpha).data();
        assert!(w[1] > w[0] && w[1] > w[2], "weights {w:?}");
    }

    #[test]
    fn aggregate_is_convex_combination() {
        let mut rng = TensorRng::seed(3);
        let mut store = ParamStore::new();
        let att = SelectiveAttention::new(&mut store, "att", 3, 2, &mut rng);
        let mut tape = Tape::new(&store);
        let rows = Tensor::from_vec(vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0], &[2, 3]);
        let xs = tape.leaf(rows);
        let agg = att.aggregate(&mut tape, xs, 0);
        for &v in tape.value(agg).data() {
            assert!((1.0..=2.0).contains(&v), "aggregate {v} outside hull");
        }
    }

    #[test]
    fn mean_aggregate_matches_manual() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let xs = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let m = mean_aggregate(&mut tape, xs);
        assert_eq!(tape.value(m).data(), &[2.0, 3.0]);
    }

    #[test]
    fn word_attention_pools_to_token_dim() {
        let mut rng = TensorRng::seed(4);
        let mut store = ParamStore::new();
        let wa = WordAttention::new(&mut store, "wa", 6, &mut rng);
        let mut tape = Tape::new(&store);
        let states = tape.leaf(Tensor::rand_uniform(&[9, 6], -1.0, 1.0, &mut rng));
        let pooled = wa.pool(&mut tape, states);
        assert_eq!(tape.value(pooled).len(), 6);
    }

    #[test]
    fn gradients_flow_through_attention() {
        let mut rng = TensorRng::seed(5);
        let mut store = ParamStore::new();
        let att = SelectiveAttention::new(&mut store, "att", 4, 3, &mut rng);
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let xs = tape.leaf(Tensor::rand_uniform(&[3, 4], -1.0, 1.0, &mut rng));
        let agg = att.aggregate(&mut tape, xs, 2);
        let loss = tape.softmax_cross_entropy(agg, 0);
        tape.backward(loss, &mut grads);
        assert!(grads.get(store.find("att.a_diag").unwrap()).norm_l2() > 0.0);
        let qg = grads.get(store.find("att.queries").unwrap());
        assert!(
            qg.row(2).iter().any(|&x| x != 0.0),
            "queried relation row must update"
        );
        assert!(
            qg.row(0).iter().all(|&x| x == 0.0),
            "unqueried rows must not update"
        );
    }
}
