//! Skip-gram word-embedding pretraining (word2vec; Mikolov et al. 2013).
//!
//! The paper's stack — like every NYT-corpus relation extractor since Lin
//! et al. — initialises its word embeddings from word2vec vectors trained
//! on the raw corpus text. That pretraining is unsupervised and sees the
//! *text* of every split (labels are never used), which is what lets the
//! encoders handle entity mentions that never occur in the labelled
//! training pairs. This module is the equivalent substrate: negative-
//! sampling skip-gram over tokenised sentences, reusing the alias sampler
//! from `imre-graph`.

use imre_graph::AliasTable;
use imre_tensor::{sigmoid_scalar, Tensor, TensorRng};

/// Skip-gram hyperparameters.
#[derive(Debug, Clone)]
pub struct SkipGramConfig {
    /// Embedding width (`k_w`).
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linear decay).
    pub lr: f32,
    /// Frequent-word subsampling threshold `t` (word2vec's `-sample`):
    /// a token with corpus frequency `f` is kept with probability
    /// `sqrt(t/f) + t/f`. Without it, uniformly-distributed frequent words
    /// dominate the positive pairs and all vectors collapse onto one
    /// direction. Set to 1.0 to disable.
    pub subsample: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 32,
            window: 3,
            negatives: 5,
            epochs: 5,
            lr: 0.05,
            subsample: 1e-3,
            seed: 73,
        }
    }
}

/// Trains skip-gram embeddings over tokenised sentences.
///
/// Returns a `[vocab_size, dim]` matrix; tokens that never occur keep small
/// random vectors. The noise distribution is the standard unigram^{3/4}.
///
/// # Panics
/// If `vocab_size == 0` or no sentence has at least two tokens.
pub fn train_skipgram(
    sentences: &[Vec<usize>],
    vocab_size: usize,
    config: &SkipGramConfig,
) -> Tensor {
    assert!(vocab_size > 0, "train_skipgram: empty vocabulary");
    let mut rng = TensorRng::seed(config.seed);
    let bound = 0.5 / config.dim as f32;
    let mut vectors = Tensor::rand_uniform(&[vocab_size, config.dim], -bound, bound, &mut rng);
    let mut contexts = Tensor::zeros(&[vocab_size, config.dim]);

    // unigram^{3/4} noise distribution
    let mut counts = vec![0.0f32; vocab_size];
    let mut total_tokens = 0usize;
    for s in sentences {
        for &t in s {
            assert!(
                t < vocab_size,
                "train_skipgram: token {t} outside vocab of {vocab_size}"
            );
            counts[t] += 1.0;
            total_tokens += 1;
        }
    }
    assert!(
        sentences.iter().any(|s| s.len() >= 2),
        "train_skipgram: no sentence with at least two tokens"
    );
    // keep-probability per token under frequent-word subsampling
    let keep_prob: Vec<f32> = counts
        .iter()
        .map(|&c| {
            if c == 0.0 || config.subsample >= 1.0 {
                return 1.0;
            }
            let f = c / total_tokens as f32;
            ((config.subsample / f).sqrt() + config.subsample / f).min(1.0)
        })
        .collect();
    for c in &mut counts {
        *c = c.powf(0.75);
    }
    let noise = AliasTable::new(&counts);

    let dim = config.dim;
    let total_steps = (total_tokens * config.epochs).max(1);
    let mut step = 0usize;
    let mut kept: Vec<usize> = Vec::new();
    for _ in 0..config.epochs {
        for s in sentences {
            // subsample the sentence, then slide windows over what remains
            kept.clear();
            kept.extend(s.iter().copied().filter(|&t| rng.f32() < keep_prob[t]));
            for (center_idx, &center) in kept.iter().enumerate() {
                let lr =
                    (config.lr * (1.0 - step as f32 / total_steps as f32)).max(config.lr * 1e-3);
                step += 1;
                let lo = center_idx.saturating_sub(config.window);
                let hi = (center_idx + config.window + 1).min(kept.len());
                for (ctx_idx, &ctx) in kept.iter().enumerate().take(hi).skip(lo) {
                    if ctx_idx == center_idx {
                        continue;
                    }
                    sgd_update(&mut vectors, &mut contexts, center, ctx, true, lr, dim);
                    for _ in 0..config.negatives {
                        let neg = noise.sample(&mut rng);
                        if neg != ctx {
                            sgd_update(&mut vectors, &mut contexts, center, neg, false, lr, dim);
                        }
                    }
                }
            }
        }
    }
    // Remove the shared mean direction ("all-but-the-top" postprocessing):
    // any residual common component carries no distributional information.
    let mean = vectors.mean_rows();
    for r in 0..vocab_size {
        for (v, &m) in vectors.row_mut(r).iter_mut().zip(mean.data()) {
            *v -= m;
        }
    }
    vectors
}

fn sgd_update(
    vectors: &mut Tensor,
    contexts: &mut Tensor,
    center: usize,
    target: usize,
    positive: bool,
    lr: f32,
    dim: usize,
) {
    let v = &mut vectors.data_mut()[center * dim..(center + 1) * dim];
    let c = &mut contexts.data_mut()[target * dim..(target + 1) * dim];
    let x: f32 = v.iter().zip(c.iter()).map(|(&a, &b)| a * b).sum();
    let label = if positive { 1.0 } else { 0.0 };
    let g = lr * (label - sigmoid_scalar(x));
    for i in 0..dim {
        let dv = g * c[i];
        let dc = g * v[i];
        v[i] += dv;
        c[i] += dc;
    }
}

/// Collects the raw token sequences of corpus bags (train and/or test) for
/// pretraining. Only the *text* is read — labels never enter.
pub fn corpus_sentences(bag_sets: &[&[imre_corpus::Bag]]) -> Vec<Vec<usize>> {
    bag_sets
        .iter()
        .flat_map(|bags| bags.iter())
        .flat_map(|b| b.sentences.iter())
        .map(|s| s.tokens.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic corpus with two topic groups: tokens 1–4 co-occur, tokens
    /// 5–8 co-occur, token 0 is background noise.
    fn topic_corpus(rng: &mut TensorRng) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for _ in 0..600 {
            let base = if rng.bernoulli(0.5) { 1 } else { 5 };
            let mut s = Vec::new();
            for _ in 0..8 {
                let t = if rng.bernoulli(0.15) {
                    0
                } else {
                    base + rng.below(4)
                };
                s.push(t);
            }
            out.push(s);
        }
        out
    }

    #[test]
    fn same_topic_tokens_cluster() {
        let mut rng = TensorRng::seed(1);
        let corpus = topic_corpus(&mut rng);
        let emb = train_skipgram(
            &corpus,
            9,
            &SkipGramConfig {
                dim: 16,
                epochs: 4,
                ..Default::default()
            },
        );
        let vec_of = |t: usize| Tensor::from_vec(emb.row(t).to_vec(), &[16]);
        let intra = vec_of(1).cosine(&vec_of(2));
        let inter = vec_of(1).cosine(&vec_of(6));
        assert!(
            intra > inter + 0.2,
            "topic structure not learned: intra {intra} inter {inter}"
        );
    }

    #[test]
    fn shapes_and_determinism() {
        let corpus = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        };
        let a = train_skipgram(&corpus, 5, &cfg);
        let b = train_skipgram(&corpus, 5, &cfg);
        assert_eq!(a.shape(), &[5, 8]);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn unused_tokens_keep_small_init() {
        let corpus = vec![vec![0, 1], vec![1, 0]];
        let emb = train_skipgram(
            &corpus,
            4,
            &SkipGramConfig {
                dim: 8,
                epochs: 2,
                ..Default::default()
            },
        );
        let unused_norm: f32 = emb.row(3).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(unused_norm < 0.5, "unused token norm {unused_norm}");
    }

    #[test]
    #[should_panic(expected = "outside vocab")]
    fn oob_token_panics() {
        let _ = train_skipgram(&[vec![9, 1]], 5, &SkipGramConfig::default());
    }
}
