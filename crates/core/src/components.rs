//! The paper's entity-information components and their combination
//! (§III-B, §III-D).
//!
//! Each component produces a *confidence vector* over the relation labels:
//!
//! * [`MrComponent`] — `C_MR = softmax(W_MR · (U_t − U_h) + b_MR)` from the
//!   LINE entity embeddings (the implicit mutual relation).
//! * [`TypeComponent`] — `C_T = softmax(W_T · [Type_h ; Type_t] + b_T)` from
//!   learned coarse-type embeddings (averaged over an entity's types).
//! * [`Combiner`] — `P(r) = softmax(w(α·C_MR + β·C_T + γ·RE) + b)` with
//!   learned scalar mixing weights α, β, γ and a final linear map.

use imre_nn::{Linear, ParamId, ParamStore, Tape, Var};
use imre_tensor::{Tensor, TensorRng};

/// The implicit-mutual-relation confidence head.
pub struct MrComponent {
    fc: Linear,
}

impl MrComponent {
    /// Registers the head: `entity_dim → num_relations`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        entity_dim: usize,
        num_relations: usize,
        rng: &mut TensorRng,
    ) -> Self {
        MrComponent {
            fc: Linear::new(store, name, entity_dim, num_relations, rng),
        }
    }

    /// Pre-softmax relation scores from a precomputed `MR_ij = U_j − U_i`
    /// vector.
    ///
    /// The MR vector is a *constant input* — the entity embeddings are
    /// learned separately on the proximity graph (the paper trains LINE
    /// offline); only `W_MR`/`b_MR` receive gradients here.
    pub fn logits(&self, tape: &mut Tape, mr: Tensor) -> Var {
        let x = tape.leaf(mr);
        self.fc.forward_vec(tape, x)
    }

    /// The paper's `C_MR = softmax(W_MR · MR + b_MR)`.
    pub fn confidence(&self, tape: &mut Tape, mr: Tensor) -> Var {
        let logits = self.logits(tape, mr);
        tape.softmax(logits)
    }
}

/// The entity-type confidence head.
pub struct TypeComponent {
    type_emb: ParamId,
    fc: Linear,
    type_dim: usize,
}

impl TypeComponent {
    /// Registers the type-embedding table (`num_types × type_dim`) and the
    /// confidence head (`2·type_dim → num_relations`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num_types: usize,
        type_dim: usize,
        num_relations: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let type_emb = store.uniform(&format!("{name}.emb"), &[num_types, type_dim], 0.25, rng);
        let fc = Linear::new(
            store,
            &format!("{name}.fc"),
            2 * type_dim,
            num_relations,
            rng,
        );
        TypeComponent {
            type_emb,
            fc,
            type_dim,
        }
    }

    /// Embeds one entity's type set (mean over multiple types, per paper).
    fn embed_types(&self, tape: &mut Tape, types: &[usize]) -> Var {
        debug_assert!(!types.is_empty(), "entity with no types");
        let rows = tape.gather(self.type_emb, types);
        tape.mean_rows(rows)
    }

    /// Pre-softmax relation scores for a head/tail type assignment.
    pub fn logits(&self, tape: &mut Tape, head_types: &[usize], tail_types: &[usize]) -> Var {
        let h = self.embed_types(tape, head_types);
        let t = self.embed_types(tape, tail_types);
        let cat = tape.concat(&[h, t]);
        debug_assert_eq!(tape.value(cat).len(), 2 * self.type_dim);
        self.fc.forward_vec(tape, cat)
    }

    /// The paper's `C_T = softmax(W_T · [Type_h ; Type_t] + b_T)`.
    pub fn confidence(&self, tape: &mut Tape, head_types: &[usize], tail_types: &[usize]) -> Var {
        let logits = self.logits(tape, head_types, tail_types);
        tape.softmax(logits)
    }
}

/// The learned linear combination of component confidences.
pub struct Combiner {
    /// Mixing weight for `C_MR`.
    pub alpha: ParamId,
    /// Mixing weight for `C_T`.
    pub beta: ParamId,
    /// Mixing weight for the base RE model's prediction.
    pub gamma: ParamId,
    out: Linear,
}

impl Combiner {
    /// Registers α, β, γ (initialised to 1) and the final linear layer.
    ///
    /// The linear map is initialised near `κ·I` (κ = 6) rather than Xavier:
    /// its inputs are probability mixtures in `[0, Σ mixing weights]`, so an
    /// identity-scaled start turns confidence differences into usable logit
    /// gaps from step one instead of a near-uniform softmax.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num_relations: usize,
        rng: &mut TensorRng,
    ) -> Self {
        // The side components start at half the RE model's weight: they are
        // priors refined by training, while the text pathway carries the
        // NA-vs-relation decision from the start.
        let alpha = store.register(&format!("{name}.alpha"), Tensor::full(&[1], 0.5));
        let beta = store.register(&format!("{name}.beta"), Tensor::full(&[1], 0.5));
        let gamma = store.register(&format!("{name}.gamma"), Tensor::ones(&[1]));
        let out = Linear::new(
            store,
            &format!("{name}.out"),
            num_relations,
            num_relations,
            rng,
        );
        let mut w = Tensor::eye(num_relations).scale(6.0);
        let noise = Tensor::rand_uniform(&[num_relations, num_relations], -0.05, 0.05, rng);
        w.add_assign(&noise);
        store.set(out.w, w);
        Combiner {
            alpha,
            beta,
            gamma,
            out,
        }
    }

    /// Combines the available confidences into final *logits* (apply
    /// softmax or cross-entropy downstream). Missing components (PA-T has
    /// no `C_MR`, PA-MR no `C_T`) simply drop out of the sum.
    pub fn combine(&self, tape: &mut Tape, c_mr: Option<Var>, c_t: Option<Var>, re: Var) -> Var {
        let g = tape.param(self.gamma);
        let mut acc = tape.scale_by_var(re, g);
        if let Some(mr) = c_mr {
            let a = tape.param(self.alpha);
            let term = tape.scale_by_var(mr, a);
            acc = tape.add(acc, term);
        }
        if let Some(t) = c_t {
            let b = tape.param(self.beta);
            let term = tape.scale_by_var(t, b);
            acc = tape.add(acc, term);
        }
        self.out.forward_vec(tape, acc)
    }

    /// Current `(α, β, γ)` values — reported by the ablation benches.
    pub fn mixing_weights(&self, store: &ParamStore) -> (f32, f32, f32) {
        (
            store.get(self.alpha).data()[0],
            store.get(self.beta).data()[0],
            store.get(self.gamma).data()[0],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_nn::GradStore;

    #[test]
    fn mr_confidence_is_distribution() {
        let mut rng = TensorRng::seed(1);
        let mut store = ParamStore::new();
        let mr = MrComponent::new(&mut store, "mr", 8, 5, &mut rng);
        let mut tape = Tape::new(&store);
        let c = mr.confidence(&mut tape, Tensor::rand_uniform(&[8], -1.0, 1.0, &mut rng));
        let v = tape.value(c);
        assert_eq!(v.len(), 5);
        assert!((v.sum() - 1.0).abs() < 1e-5);
        assert!(v.data().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn type_confidence_handles_multi_types() {
        let mut rng = TensorRng::seed(2);
        let mut store = ParamStore::new();
        let ty = TypeComponent::new(&mut store, "ty", 38, 4, 6, &mut rng);
        let mut tape = Tape::new(&store);
        let c = ty.confidence(&mut tape, &[0, 5], &[12]);
        let v = tape.value(c);
        assert_eq!(v.len(), 6);
        assert!((v.sum() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn type_mean_over_types_matters() {
        // entity with types {0} vs {0, 1} must embed differently (average)
        let mut rng = TensorRng::seed(3);
        let mut store = ParamStore::new();
        let ty = TypeComponent::new(&mut store, "ty", 10, 4, 3, &mut rng);
        let mut tape = Tape::new(&store);
        let c1 = ty.confidence(&mut tape, &[0], &[2]);
        let c2 = ty.confidence(&mut tape, &[0, 1], &[2]);
        assert_ne!(tape.value(c1).data(), tape.value(c2).data());
    }

    #[test]
    fn combiner_with_all_components() {
        let mut rng = TensorRng::seed(4);
        let mut store = ParamStore::new();
        let comb = Combiner::new(&mut store, "comb", 4, &mut rng);
        let mut tape = Tape::new(&store);
        let c_mr = tape.leaf(Tensor::from_vec(vec![0.7, 0.1, 0.1, 0.1], &[4]));
        let c_t = tape.leaf(Tensor::from_vec(vec![0.25; 4], &[4]));
        let re = tape.leaf(Tensor::from_vec(vec![0.1, 0.6, 0.2, 0.1], &[4]));
        let logits = comb.combine(&mut tape, Some(c_mr), Some(c_t), re);
        assert_eq!(tape.value(logits).len(), 4);
    }

    #[test]
    fn combiner_learns_mixing_weights() {
        let mut rng = TensorRng::seed(5);
        let mut store = ParamStore::new();
        let comb = Combiner::new(&mut store, "comb", 3, &mut rng);
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let c_mr = tape.leaf(Tensor::from_vec(vec![0.8, 0.1, 0.1], &[3]));
        let re = tape.leaf(Tensor::from_vec(vec![0.3, 0.4, 0.3], &[3]));
        let logits = comb.combine(&mut tape, Some(c_mr), None, re);
        let loss = tape.softmax_cross_entropy(logits, 0);
        tape.backward(loss, &mut grads);
        assert!(
            grads.get(comb.alpha).data()[0].abs() > 0.0,
            "α must receive gradient"
        );
        assert!(
            grads.get(comb.gamma).data()[0].abs() > 0.0,
            "γ must receive gradient"
        );
        assert_eq!(
            grads.get(comb.beta).data()[0],
            0.0,
            "β untouched when C_T absent"
        );
    }

    #[test]
    fn mixing_weights_readable() {
        let mut rng = TensorRng::seed(6);
        let mut store = ParamStore::new();
        let comb = Combiner::new(&mut store, "comb", 3, &mut rng);
        assert_eq!(comb.mixing_weights(&store), (0.5, 0.5, 1.0));
    }
}
