//! Baseline systems the paper compares against.
//!
//! * [`sparse`] — the feature-based, non-neural baselines of Figure 4:
//!   Mintz (2009) multiclass logistic regression, MultiR (2011)
//!   multi-instance perceptron, MIMLRE (2012) multi-instance multi-label
//!   EM. Implemented over hashed sparse lexical features.
//! * [`rl`] — CNN+RL (Feng 2018): a REINFORCE instance selector wrapped
//!   around a CNN relation classifier.

pub mod rl;
pub mod sparse;

pub use rl::{CnnRl, RlConfig};
pub use sparse::{Mimlre, Mintz, MultiR, SparseFeaturizer};
