//! CNN+RL (Feng et al., AAAI 2018): reinforcement-learning instance
//! selection around a CNN relation classifier.
//!
//! Two modules, as in the paper: an **instance selector** (logistic policy
//! over sentence encodings, trained with REINFORCE against a moving-average
//! baseline) and a **relation classifier** (a CNN bag model trained on the
//! selected sentences). The selector learns to drop noisy sentences; the
//! classifier's log-likelihood on the cleaned bag is the reward.

use crate::config::HyperParams;
use crate::model::{BagContext, ModelSpec, PreparedBag, ReModel};
use imre_nn::Sgd;
use imre_tensor::{sigmoid_scalar, TensorRng};

/// CNN+RL training schedule.
#[derive(Debug, Clone)]
pub struct RlConfig {
    /// Supervised warm-up epochs for the classifier (all sentences kept).
    pub pretrain_epochs: usize,
    /// Joint selector + classifier epochs.
    pub joint_epochs: usize,
    /// Classifier learning rate.
    pub lr: f32,
    /// Policy learning rate.
    pub policy_lr: f32,
    /// Batch size (bags).
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            pretrain_epochs: 3,
            joint_epochs: 3,
            lr: 0.2,
            policy_lr: 0.05,
            batch_size: 16,
            seed: 41,
        }
    }
}

/// The CNN+RL system.
pub struct CnnRl {
    /// The relation classifier: CNN encoder, mean aggregation over the
    /// *selected* sentences.
    pub classifier: ReModel,
    policy_w: Vec<f32>,
    policy_b: f32,
    reward_baseline: f32,
}

impl CnnRl {
    /// Builds an untrained CNN+RL system.
    pub fn new(hp: &HyperParams, vocab_size: usize, num_relations: usize, seed: u64) -> Self {
        let classifier = ReModel::new(
            ModelSpec::pcnn(),
            hp,
            vocab_size,
            num_relations,
            38,
            1,
            seed,
        );
        let dim = classifier.sent_dim();
        CnnRl {
            classifier,
            policy_w: vec![0.0; dim],
            policy_b: 0.0,
            reward_baseline: 0.0,
        }
    }

    fn keep_probability(&self, encoding: &[f32]) -> f32 {
        let score: f32 = self
            .policy_w
            .iter()
            .zip(encoding)
            .map(|(&w, &x)| w * x)
            .sum::<f32>()
            + self.policy_b;
        sigmoid_scalar(score)
    }

    /// Selects the sentence subset the current policy keeps (greedy: keep
    /// when `p ≥ 0.5`; all kept if the policy would drop everything).
    pub fn select(&self, bag: &PreparedBag) -> Vec<usize> {
        let encodings = self.classifier.sentence_encodings(bag);
        let kept: Vec<usize> = encodings
            .iter()
            .enumerate()
            .filter(|(_, e)| self.keep_probability(e) >= 0.5)
            .map(|(i, _)| i)
            .collect();
        if kept.is_empty() {
            (0..bag.sentences.len()).collect()
        } else {
            kept
        }
    }

    fn subset_bag(bag: &PreparedBag, keep: &[usize]) -> PreparedBag {
        PreparedBag {
            head: bag.head,
            tail: bag.tail,
            label: bag.label,
            sentences: keep.iter().map(|&i| bag.sentences[i].clone()).collect(),
        }
    }

    /// Trains the system: supervised warm-up, then joint REINFORCE.
    pub fn train(&mut self, bags: &[PreparedBag], ctx: &BagContext, config: &RlConfig) {
        let mut rng = TensorRng::seed(config.seed);
        let sgd = Sgd::new(config.lr).with_clip_norm(5.0);
        let mut order: Vec<usize> = (0..bags.len()).collect();

        // ---- warm-up: train the classifier on whole bags ----
        for _ in 0..config.pretrain_epochs {
            rng.shuffle(&mut order);
            for batch in order.chunks(config.batch_size) {
                let scale = 1.0 / batch.len() as f32;
                for &bi in batch {
                    self.classifier
                        .bag_loss_and_backward(&bags[bi], ctx, scale, &mut rng);
                }
                sgd.step(&mut self.classifier.store, &mut self.classifier.grads);
            }
        }

        // ---- joint phase ----
        for _ in 0..config.joint_epochs {
            rng.shuffle(&mut order);
            for batch in order.chunks(config.batch_size) {
                let scale = 1.0 / batch.len() as f32;
                for &bi in batch {
                    let bag = &bags[bi];
                    let encodings = self.classifier.sentence_encodings(bag);
                    // sample actions from the stochastic policy
                    let probs: Vec<f32> =
                        encodings.iter().map(|e| self.keep_probability(e)).collect();
                    let actions: Vec<bool> = probs.iter().map(|&p| rng.bernoulli(p)).collect();
                    let mut kept: Vec<usize> = actions
                        .iter()
                        .enumerate()
                        .filter(|(_, &a)| a)
                        .map(|(i, _)| i)
                        .collect();
                    if kept.is_empty() {
                        kept = (0..bag.sentences.len()).collect();
                    }
                    let sub = Self::subset_bag(bag, &kept);
                    // classifier step on the selected subset; its loss is
                    // −log p(gold), so reward = −loss
                    let loss = self
                        .classifier
                        .bag_loss_and_backward(&sub, ctx, scale, &mut rng);
                    let reward = -loss;
                    let advantage = reward - self.reward_baseline;
                    self.reward_baseline = 0.95 * self.reward_baseline + 0.05 * reward;

                    // REINFORCE: ∇ log π(a|s) = (a − p) · x for a Bernoulli
                    // logistic policy
                    for (i, enc) in encodings.iter().enumerate() {
                        let a = if actions.get(i).copied().unwrap_or(true) {
                            1.0
                        } else {
                            0.0
                        };
                        let g = advantage * (a - probs[i]);
                        for (w, &x) in self.policy_w.iter_mut().zip(enc) {
                            *w += config.policy_lr * g * x;
                        }
                        self.policy_b += config.policy_lr * g;
                    }
                }
                sgd.step(&mut self.classifier.store, &mut self.classifier.grads);
            }
        }
    }

    /// Predicts relation probabilities on the policy-selected subset.
    pub fn predict(&self, bag: &PreparedBag, ctx: &BagContext) -> Vec<f32> {
        let keep = self.select(bag);
        let sub = Self::subset_bag(bag, &keep);
        self.classifier.predict(&sub, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::entity_type_table;
    use imre_corpus::{Dataset, DatasetConfig, SentenceGenConfig, WorldConfig};

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig {
            name: "t".into(),
            world: WorldConfig {
                n_relations: 4,
                entities_per_cluster: 6,
                facts_per_relation: 12,
                cluster_reuse_prob: 0.3,
                seed: 7,
            },
            sentence: SentenceGenConfig {
                noise_prob: 0.3,
                min_len: 6,
                max_len: 12,
            },
            train_fraction: 0.7,
            na_train: 10,
            na_test: 5,
            na_hard_fraction: 0.5,
            zipf_alpha: 1.6,
            max_sentences_per_bag: 6,
            seed: 9,
        })
    }

    #[test]
    fn trains_and_predicts_distribution() {
        let ds = dataset();
        let hp = HyperParams::tiny();
        let bags = crate::model::prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let ctx = BagContext {
            entity_embedding: None,
            entity_types: &types,
        };
        let mut rl = CnnRl::new(&hp, ds.vocab.len(), ds.num_relations(), 3);
        rl.train(
            &bags,
            &ctx,
            &RlConfig {
                pretrain_epochs: 2,
                joint_epochs: 1,
                batch_size: 8,
                ..Default::default()
            },
        );
        let p = rl.predict(&bags[0], &ctx);
        assert_eq!(p.len(), ds.num_relations());
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn selection_never_empty() {
        let ds = dataset();
        let hp = HyperParams::tiny();
        let bags = crate::model::prepare_bags(&ds.train, &hp);
        let rl = CnnRl::new(&hp, ds.vocab.len(), ds.num_relations(), 5);
        for b in bags.iter().take(20) {
            let kept = rl.select(b);
            assert!(!kept.is_empty());
            assert!(kept.iter().all(|&i| i < b.sentences.len()));
        }
    }

    #[test]
    fn subset_bag_preserves_metadata() {
        let ds = dataset();
        let hp = HyperParams::tiny();
        let bags = crate::model::prepare_bags(&ds.train, &hp);
        let bag = bags
            .iter()
            .find(|b| b.sentences.len() >= 2)
            .expect("multi-sentence bag");
        let sub = CnnRl::subset_bag(bag, &[0]);
        assert_eq!(sub.head, bag.head);
        assert_eq!(sub.label, bag.label);
        assert_eq!(sub.sentences.len(), 1);
    }
}
