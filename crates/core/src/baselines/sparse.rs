//! Feature-based (non-neural) baselines: Mintz, MultiR and MIMLRE.
//!
//! All three operate on hashed sparse lexical features. They exist because
//! the paper's Figure 4 plots them (via Lin et al.'s published curves) as
//! the non-neural reference points on NYT; reproducing the figure requires
//! running *something* faithful to each method's core idea:
//!
//! * **Mintz** — one multiclass logistic-regression over aggregated bag
//!   features (pure distant supervision, no noise handling).
//! * **MultiR** — multi-instance perceptron: only the best-scoring sentence
//!   of a bag is credited/blamed, handling noisy sentences.
//! * **MIMLRE** — EM over latent per-sentence labels with a noisy-OR bag
//!   aggregation, handling multi-instance *and* bag-level uncertainty.

use crate::model::PreparedBag;
use imre_tensor::TensorRng;

/// Hashed sparse feature extraction shared by the three baselines.
///
/// Features per sentence: token unigrams, tokens strictly between the two
/// entity mentions (position-tagged), the ordered entity-pair distance
/// bucket, and the head/tail coarse-type pair.
pub struct SparseFeaturizer {
    /// Feature-space size (power of two).
    dim: usize,
}

impl SparseFeaturizer {
    /// Creates a featurizer with `2^bits` hashed dimensions.
    pub fn new(bits: u32) -> Self {
        SparseFeaturizer { dim: 1 << bits }
    }

    /// Feature-space width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn slot(&self, kind: u64, value: u64) -> usize {
        // Fibonacci-style mix of (kind, value) into the table.
        let mut h =
            kind.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ value.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 31;
        (h as usize) & (self.dim - 1)
    }

    /// Extracts the sparse feature indices of one sentence.
    pub fn sentence_features(
        &self,
        s: &crate::features::SentenceFeatures,
        head_type: usize,
        tail_type: usize,
    ) -> Vec<usize> {
        let mut feats = Vec::with_capacity(s.tokens.len() + 8);
        for &t in &s.tokens {
            feats.push(self.slot(1, t as u64));
        }
        let (lo, hi) = (s.head_pos.min(s.tail_pos), s.head_pos.max(s.tail_pos));
        for (i, &t) in s.tokens[lo..=hi].iter().enumerate() {
            feats.push(self.slot(2, (t as u64) << 8 | i as u64 & 0xff));
        }
        let dist_bucket = ((hi - lo) / 3).min(7) as u64;
        feats.push(self.slot(3, dist_bucket));
        feats.push(self.slot(4, (head_type as u64) << 16 | tail_type as u64));
        feats
    }

    /// Union (with repeats) of all sentence features of a bag.
    pub fn bag_features(&self, bag: &PreparedBag, types: &[Vec<usize>]) -> Vec<usize> {
        let ht = types[bag.head].first().copied().unwrap_or(0);
        let tt = types[bag.tail].first().copied().unwrap_or(0);
        bag.sentences
            .iter()
            .flat_map(|s| self.sentence_features(s, ht, tt))
            .collect()
    }
}

fn scores(w: &[f32], m: usize, dim: usize, feats: &[usize]) -> Vec<f32> {
    let mut out = vec![0.0f32; m];
    for (r, o) in out.iter_mut().enumerate() {
        let row = &w[r * dim..(r + 1) * dim];
        *o = feats.iter().map(|&f| row[f]).sum();
    }
    out
}

fn softmax_vec(scores: &[f32]) -> Vec<f32> {
    let m = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&s| (s - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

/// Mintz et al. (2009): distant supervision with multiclass logistic
/// regression over aggregate bag features.
pub struct Mintz {
    featurizer: SparseFeaturizer,
    w: Vec<f32>,
    m: usize,
}

impl Mintz {
    /// Creates an untrained model with `num_relations` classes.
    pub fn new(num_relations: usize, feature_bits: u32) -> Self {
        let featurizer = SparseFeaturizer::new(feature_bits);
        let dim = featurizer.dim();
        Mintz {
            featurizer,
            w: vec![0.0; num_relations * dim],
            m: num_relations,
        }
    }

    /// Trains with plain SGD on the bag-level multiclass logistic loss.
    pub fn train(
        &mut self,
        bags: &[PreparedBag],
        types: &[Vec<usize>],
        epochs: usize,
        lr: f32,
        seed: u64,
    ) {
        let dim = self.featurizer.dim();
        let mut rng = TensorRng::seed(seed);
        let mut order: Vec<usize> = (0..bags.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &bi in &order {
                let bag = &bags[bi];
                let feats = self.featurizer.bag_features(bag, types);
                let p = softmax_vec(&scores(&self.w, self.m, dim, &feats));
                for (r, &pr) in p.iter().enumerate() {
                    let g = pr - if r == bag.label { 1.0 } else { 0.0 };
                    if g.abs() < 1e-8 {
                        continue;
                    }
                    let row = &mut self.w[r * dim..(r + 1) * dim];
                    for &f in &feats {
                        row[f] -= lr * g;
                    }
                }
            }
        }
    }

    /// Per-relation probabilities for a bag.
    pub fn predict(&self, bag: &PreparedBag, types: &[Vec<usize>]) -> Vec<f32> {
        let feats = self.featurizer.bag_features(bag, types);
        softmax_vec(&scores(&self.w, self.m, self.featurizer.dim(), &feats))
    }
}

/// Hoffmann et al. (2011) MultiR, simplified to its multi-instance
/// perceptron core: credit/blame flows only through each bag's best
/// sentence for the relevant label.
pub struct MultiR {
    featurizer: SparseFeaturizer,
    w: Vec<f32>,
    m: usize,
}

impl MultiR {
    /// Creates an untrained model.
    pub fn new(num_relations: usize, feature_bits: u32) -> Self {
        let featurizer = SparseFeaturizer::new(feature_bits);
        let dim = featurizer.dim();
        MultiR {
            featurizer,
            w: vec![0.0; num_relations * dim],
            m: num_relations,
        }
    }

    fn best_sentence(
        &self,
        bag: &PreparedBag,
        types: &[Vec<usize>],
        relation: usize,
    ) -> Vec<usize> {
        let dim = self.featurizer.dim();
        let ht = types[bag.head].first().copied().unwrap_or(0);
        let tt = types[bag.tail].first().copied().unwrap_or(0);
        bag.sentences
            .iter()
            .map(|s| self.featurizer.sentence_features(s, ht, tt))
            .max_by(|a, b| {
                let sa: f32 = a.iter().map(|&f| self.w[relation * dim + f]).sum();
                let sb: f32 = b.iter().map(|&f| self.w[relation * dim + f]).sum();
                sa.partial_cmp(&sb).expect("finite scores")
            })
            .expect("non-empty bag")
    }

    /// Perceptron training: when the bag-level argmax is wrong, promote the
    /// gold label on its best sentence and demote the predicted one.
    pub fn train(
        &mut self,
        bags: &[PreparedBag],
        types: &[Vec<usize>],
        epochs: usize,
        lr: f32,
        seed: u64,
    ) {
        let dim = self.featurizer.dim();
        let mut rng = TensorRng::seed(seed);
        let mut order: Vec<usize> = (0..bags.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &bi in &order {
                let bag = &bags[bi];
                let pred = self
                    .predict(bag, types)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty scores");
                if pred == bag.label {
                    continue;
                }
                let gold_feats = self.best_sentence(bag, types, bag.label);
                for &f in &gold_feats {
                    self.w[bag.label * dim + f] += lr;
                }
                let pred_feats = self.best_sentence(bag, types, pred);
                for &f in &pred_feats {
                    self.w[pred * dim + f] -= lr;
                }
            }
        }
    }

    /// Bag scores: per relation, the max sentence score squashed by a
    /// sigmoid, renormalised into a distribution.
    pub fn predict(&self, bag: &PreparedBag, types: &[Vec<usize>]) -> Vec<f32> {
        let dim = self.featurizer.dim();
        let ht = types[bag.head].first().copied().unwrap_or(0);
        let tt = types[bag.tail].first().copied().unwrap_or(0);
        let per_sentence: Vec<Vec<f32>> = bag
            .sentences
            .iter()
            .map(|s| {
                let feats = self.featurizer.sentence_features(s, ht, tt);
                scores(&self.w, self.m, dim, &feats)
            })
            .collect();
        let mut best = vec![f32::NEG_INFINITY; self.m];
        for ss in &per_sentence {
            for (b, &s) in best.iter_mut().zip(ss) {
                *b = b.max(s);
            }
        }
        softmax_vec(&best)
    }
}

/// Surdeanu et al. (2012) MIMLRE, simplified to hard-EM: latent
/// per-sentence labels re-estimated each round, per-sentence logistic
/// regression re-fit, bag prediction by noisy-OR.
pub struct Mimlre {
    featurizer: SparseFeaturizer,
    w: Vec<f32>,
    m: usize,
}

impl Mimlre {
    /// Creates an untrained model.
    pub fn new(num_relations: usize, feature_bits: u32) -> Self {
        let featurizer = SparseFeaturizer::new(feature_bits);
        let dim = featurizer.dim();
        Mimlre {
            featurizer,
            w: vec![0.0; num_relations * dim],
            m: num_relations,
        }
    }

    /// Trains with `em_rounds` of hard-EM; each M-step runs one SGD pass
    /// over the per-sentence logistic loss with the current assignments.
    pub fn train(
        &mut self,
        bags: &[PreparedBag],
        types: &[Vec<usize>],
        em_rounds: usize,
        lr: f32,
        seed: u64,
    ) {
        let dim = self.featurizer.dim();
        let mut rng = TensorRng::seed(seed);
        // initial assignment: every sentence takes the bag label
        let mut assignments: Vec<Vec<usize>> = bags
            .iter()
            .map(|b| vec![b.label; b.sentences.len()])
            .collect();
        for round in 0..em_rounds {
            // M-step
            let mut order: Vec<usize> = (0..bags.len()).collect();
            rng.shuffle(&mut order);
            for &bi in &order {
                let bag = &bags[bi];
                let ht = types[bag.head].first().copied().unwrap_or(0);
                let tt = types[bag.tail].first().copied().unwrap_or(0);
                for (si, s) in bag.sentences.iter().enumerate() {
                    let feats = self.featurizer.sentence_features(s, ht, tt);
                    let p = softmax_vec(&scores(&self.w, self.m, dim, &feats));
                    let label = assignments[bi][si];
                    for (r, &pr) in p.iter().enumerate() {
                        let g = pr - if r == label { 1.0 } else { 0.0 };
                        if g.abs() < 1e-8 {
                            continue;
                        }
                        let row = &mut self.w[r * dim..(r + 1) * dim];
                        for &f in &feats {
                            row[f] -= lr * g;
                        }
                    }
                }
            }
            // E-step: a sentence keeps the bag label only if the model now
            // prefers it over NA; at least one sentence always keeps it
            // (the at-least-one assumption).
            if round + 1 < em_rounds {
                for (bi, bag) in bags.iter().enumerate() {
                    if bag.label == 0 {
                        continue; // NA bags stay NA
                    }
                    let ht = types[bag.head].first().copied().unwrap_or(0);
                    let tt = types[bag.tail].first().copied().unwrap_or(0);
                    let mut best_si = 0;
                    let mut best_p = f32::NEG_INFINITY;
                    for (si, s) in bag.sentences.iter().enumerate() {
                        let feats = self.featurizer.sentence_features(s, ht, tt);
                        let p = softmax_vec(&scores(&self.w, self.m, dim, &feats));
                        assignments[bi][si] = if p[bag.label] >= p[0] { bag.label } else { 0 };
                        if p[bag.label] > best_p {
                            best_p = p[bag.label];
                            best_si = si;
                        }
                    }
                    assignments[bi][best_si] = bag.label;
                }
            }
        }
    }

    /// Noisy-OR bag prediction: `P(r|bag) = 1 − Π_s (1 − P(r|s))`,
    /// renormalised.
    pub fn predict(&self, bag: &PreparedBag, types: &[Vec<usize>]) -> Vec<f32> {
        let dim = self.featurizer.dim();
        let ht = types[bag.head].first().copied().unwrap_or(0);
        let tt = types[bag.tail].first().copied().unwrap_or(0);
        let mut not_prob = vec![1.0f32; self.m];
        for s in &bag.sentences {
            let feats = self.featurizer.sentence_features(s, ht, tt);
            let p = softmax_vec(&scores(&self.w, self.m, dim, &feats));
            for (np, &pi) in not_prob.iter_mut().zip(&p) {
                *np *= 1.0 - pi;
            }
        }
        let raw: Vec<f32> = not_prob.into_iter().map(|np| 1.0 - np).collect();
        let z: f32 = raw.iter().sum::<f32>().max(1e-12);
        raw.into_iter().map(|r| r / z).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::SentenceFeatures;

    fn bag(label: usize, token_sets: &[Vec<usize>]) -> PreparedBag {
        PreparedBag {
            head: 0,
            tail: 1,
            label,
            sentences: token_sets
                .iter()
                .map(|tokens| SentenceFeatures {
                    head_offsets: vec![0; tokens.len()],
                    tail_offsets: vec![1; tokens.len()],
                    head_pos: 0,
                    tail_pos: tokens.len() - 1,
                    tokens: tokens.clone(),
                })
                .collect(),
        }
    }

    /// Two lexically separable classes: class 1 sentences contain token 100,
    /// class 2 sentences contain token 200.
    fn separable_dataset() -> (Vec<PreparedBag>, Vec<Vec<usize>>) {
        let mut bags = Vec::new();
        for i in 0..30 {
            bags.push(bag(1, &[vec![100, 5 + i % 3, 7]]));
            bags.push(bag(2, &[vec![200, 6 + i % 3, 8]]));
        }
        (bags, vec![vec![0], vec![1]])
    }

    fn accuracy(predict: impl Fn(&PreparedBag) -> Vec<f32>, bags: &[PreparedBag]) -> f32 {
        let correct = bags
            .iter()
            .filter(|b| {
                let p = predict(b);
                let am = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                am == b.label
            })
            .count();
        correct as f32 / bags.len() as f32
    }

    #[test]
    fn featurizer_dims_and_determinism() {
        let f = SparseFeaturizer::new(10);
        assert_eq!(f.dim(), 1024);
        let b = bag(1, &[vec![1, 2, 3]]);
        let a1 = f.bag_features(&b, &[vec![0], vec![1]]);
        let a2 = f.bag_features(&b, &[vec![0], vec![1]]);
        assert_eq!(a1, a2);
        assert!(a1.iter().all(|&i| i < 1024));
    }

    #[test]
    fn mintz_learns_separable_data() {
        let (bags, types) = separable_dataset();
        let mut m = Mintz::new(3, 12);
        m.train(&bags, &types, 5, 0.1, 1);
        assert!(accuracy(|b| m.predict(b, &types), &bags) > 0.95);
    }

    #[test]
    fn multir_learns_despite_noisy_sentence() {
        // each bag has one signal sentence and one noise sentence shared
        // across classes — per-bag aggregation would blur, best-sentence
        // credit assignment should not
        let mut bags = Vec::new();
        for i in 0..30 {
            bags.push(bag(1, &[vec![100, 3 + i % 2], vec![50, 51, 52]]));
            bags.push(bag(2, &[vec![200, 4 + i % 2], vec![50, 51, 52]]));
        }
        let types = vec![vec![0], vec![1]];
        let mut m = MultiR::new(3, 12);
        m.train(&bags, &types, 8, 0.5, 2);
        assert!(accuracy(|b| m.predict(b, &types), &bags) > 0.9);
    }

    #[test]
    fn mimlre_learns_separable_data() {
        let (bags, types) = separable_dataset();
        let mut m = Mimlre::new(3, 12);
        m.train(&bags, &types, 3, 0.1, 3);
        assert!(accuracy(|b| m.predict(b, &types), &bags) > 0.9);
    }

    #[test]
    fn predictions_are_distributions() {
        let (bags, types) = separable_dataset();
        let m = Mintz::new(3, 10);
        let p = m.predict(&bags[0], &types);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let mr = MultiR::new(3, 10);
        let p = mr.predict(&bags[0], &types);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let mi = Mimlre::new(3, 10);
        let p = mi.predict(&bags[0], &types);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
