//! Hyperparameters (paper Table III).
//!
//! The paper's values are kept where scale-free (window 3, dropout 0.5,
//! position dim 5, type dim 20); width-like parameters (word dim, filter
//! count, entity-embedding dim, batch size) are scaled down for a CPU-only
//! reproduction and noted as such. `HyperParams::paper()` returns the
//! original values for reference/reporting.

/// Model and training hyperparameters.
#[derive(Debug, Clone)]
pub struct HyperParams {
    /// Entity-embedding width `k_e` (LINE output; paper 128).
    pub entity_dim: usize,
    /// Entity-type embedding width `k_t` (paper 20).
    pub type_dim: usize,
    /// CNN window size `l` (paper 3).
    pub window: usize,
    /// CNN filter count `k` (paper 230).
    pub filters: usize,
    /// Position-embedding width `k_p` (paper 5).
    pub pos_dim: usize,
    /// Word-embedding width `k_w` (paper 50).
    pub word_dim: usize,
    /// GRU hidden width per direction (for RNN encoders).
    pub gru_hidden: usize,
    /// SGD learning rate (paper 0.3).
    pub lr: f32,
    /// Maximum sentence length (paper 120; our corpus caps at 24).
    pub max_len: usize,
    /// Dropout probability `p` (paper 0.5).
    pub dropout: f32,
    /// Bags per SGD step (paper 160).
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Relative positions are clipped to `±pos_clip`.
    pub pos_clip: usize,
}

impl HyperParams {
    /// CPU-scaled defaults used throughout the reproduction.
    pub fn scaled() -> Self {
        HyperParams {
            entity_dim: 64,
            type_dim: 10,
            window: 3,
            filters: 64,
            pos_dim: 5,
            word_dim: 32,
            gru_hidden: 32,
            lr: 0.2,
            max_len: 30,
            dropout: 0.5,
            batch_size: 32,
            epochs: 8,
            pos_clip: 30,
        }
    }

    /// The paper's exact Table III values (for reference; training at this
    /// width on CPU is possible but slow).
    pub fn paper() -> Self {
        HyperParams {
            entity_dim: 128,
            type_dim: 20,
            window: 3,
            filters: 230,
            pos_dim: 5,
            word_dim: 50,
            gru_hidden: 115,
            lr: 0.3,
            max_len: 120,
            dropout: 0.5,
            batch_size: 160,
            epochs: 15,
            pos_clip: 30,
        }
    }

    /// Tiny settings for unit tests and the quickstart example.
    pub fn tiny() -> Self {
        HyperParams {
            entity_dim: 16,
            type_dim: 4,
            window: 3,
            filters: 16,
            pos_dim: 3,
            word_dim: 12,
            gru_hidden: 10,
            lr: 0.2,
            max_len: 25,
            dropout: 0.3,
            batch_size: 8,
            epochs: 4,
            pos_clip: 20,
        }
    }

    /// Number of distinct relative-position ids (`2 · pos_clip + 1`).
    pub fn pos_vocab(&self) -> usize {
        2 * self.pos_clip + 1
    }

    /// Rows printed by the Table III bench: `(symbol, description, value)`.
    pub fn table3_rows(&self) -> Vec<(&'static str, &'static str, String)> {
        vec![
            ("ke", "Embedding vector size", self.entity_dim.to_string()),
            (
                "kt",
                "Entity type embedding size",
                self.type_dim.to_string(),
            ),
            ("l", "Window size", self.window.to_string()),
            ("k", "CNN filters number", self.filters.to_string()),
            ("kp", "POS embedding dimension", self.pos_dim.to_string()),
            ("kw", "Word embedding dimension", self.word_dim.to_string()),
            ("lr", "Learning rate", format!("{}", self.lr)),
            ("len", "Sentence max length", self.max_len.to_string()),
            ("p", "Dropout probability", format!("{}", self.dropout)),
            ("n", "Batch size", self.batch_size.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table3() {
        let p = HyperParams::paper();
        assert_eq!(p.entity_dim, 128);
        assert_eq!(p.type_dim, 20);
        assert_eq!(p.window, 3);
        assert_eq!(p.filters, 230);
        assert_eq!(p.pos_dim, 5);
        assert_eq!(p.word_dim, 50);
        assert!((p.lr - 0.3).abs() < 1e-6);
        assert_eq!(p.max_len, 120);
        assert!((p.dropout - 0.5).abs() < 1e-6);
        assert_eq!(p.batch_size, 160);
    }

    #[test]
    fn pos_vocab_is_odd() {
        assert_eq!(HyperParams::scaled().pos_vocab() % 2, 1);
    }

    #[test]
    fn table3_has_ten_rows() {
        assert_eq!(HyperParams::paper().table3_rows().len(), 10);
    }
}
