//! Sentence featurisation: token ids plus the two relative-position id
//! sequences every encoder in the paper consumes.

use imre_corpus::EncodedSentence;

/// A sentence prepared for an encoder: token ids and, per token, its clipped
/// relative position to the head and tail entities (offset to be a valid
/// embedding row).
#[derive(Debug, Clone)]
pub struct SentenceFeatures {
    /// Token ids, truncated to the configured maximum length.
    pub tokens: Vec<usize>,
    /// Relative-position id w.r.t. the head entity, in `0..2·clip+1`.
    pub head_offsets: Vec<usize>,
    /// Relative-position id w.r.t. the tail entity, in `0..2·clip+1`.
    pub tail_offsets: Vec<usize>,
    /// Head entity token index after truncation.
    pub head_pos: usize,
    /// Tail entity token index after truncation.
    pub tail_pos: usize,
}

/// Converts a corpus sentence into encoder features.
///
/// Sentences longer than `max_len` are truncated to a window that contains
/// both entity mentions (sliding the window start just enough); relative
/// positions are clipped to `±clip` and shifted by `clip` to index an
/// embedding table of `2·clip + 1` rows.
pub fn featurize(sentence: &EncodedSentence, max_len: usize, clip: usize) -> SentenceFeatures {
    let len = sentence.tokens.len();
    let (start, end) = if len <= max_len {
        (0, len)
    } else {
        // choose a window covering both entities
        let lo_ent = sentence.head_pos.min(sentence.tail_pos);
        let hi_ent = sentence.head_pos.max(sentence.tail_pos);
        let start = lo_ent
            .min(len - max_len)
            .min(hi_ent.saturating_sub(max_len - 1));
        (start, (start + max_len).min(len))
    };
    let tokens: Vec<usize> = sentence.tokens[start..end].to_vec();
    let head_pos = sentence
        .head_pos
        .saturating_sub(start)
        .min(tokens.len() - 1);
    let tail_pos = sentence
        .tail_pos
        .saturating_sub(start)
        .min(tokens.len() - 1);

    let offset = |i: usize, anchor: usize| -> usize {
        let rel = i as isize - anchor as isize;
        let clipped = rel.clamp(-(clip as isize), clip as isize);
        (clipped + clip as isize) as usize
    };
    let head_offsets = (0..tokens.len()).map(|i| offset(i, head_pos)).collect();
    let tail_offsets = (0..tokens.len()).map(|i| offset(i, tail_pos)).collect();

    SentenceFeatures {
        tokens,
        head_offsets,
        tail_offsets,
        head_pos,
        tail_pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentence(tokens: Vec<usize>, head: usize, tail: usize) -> EncodedSentence {
        EncodedSentence {
            tokens,
            head_pos: head,
            tail_pos: tail,
            expresses_relation: true,
        }
    }

    #[test]
    fn short_sentence_untouched() {
        let s = sentence(vec![5, 6, 7, 8], 1, 3);
        let f = featurize(&s, 10, 5);
        assert_eq!(f.tokens, vec![5, 6, 7, 8]);
        assert_eq!(f.head_pos, 1);
        assert_eq!(f.tail_pos, 3);
    }

    #[test]
    fn offsets_centered_at_entities() {
        let s = sentence(vec![0, 1, 2, 3, 4], 2, 4);
        let f = featurize(&s, 10, 5);
        // token 0 is 2 left of head → −2 + 5 = 3
        assert_eq!(f.head_offsets, vec![3, 4, 5, 6, 7]);
        assert_eq!(f.tail_offsets, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn offsets_clip_at_bounds() {
        let s = sentence((0..20).collect(), 0, 19);
        let f = featurize(&s, 30, 4);
        assert_eq!(f.head_offsets[0], 4); // rel 0
        assert_eq!(*f.head_offsets.last().unwrap(), 8); // rel 19 clipped to +4
        assert_eq!(f.tail_offsets[0], 0); // rel −19 clipped to −4
    }

    #[test]
    fn truncation_keeps_entities_visible() {
        let mut tokens: Vec<usize> = (0..50).collect();
        tokens[20] = 999;
        tokens[28] = 888;
        let s = sentence(tokens, 20, 28);
        let f = featurize(&s, 12, 5);
        assert_eq!(f.tokens.len(), 12);
        assert_eq!(
            f.tokens[f.head_pos], 999,
            "head token must survive truncation"
        );
        assert_eq!(
            f.tokens[f.tail_pos], 888,
            "tail token must survive truncation"
        );
    }

    #[test]
    fn truncation_entities_at_extremes() {
        // entities further apart than max_len: window must still keep
        // positions in range (clamped), never panic
        let s = sentence((0..40).collect(), 0, 39);
        let f = featurize(&s, 10, 5);
        assert_eq!(f.tokens.len(), 10);
        assert!(f.head_pos < 10 && f.tail_pos < 10);
    }

    #[test]
    fn position_ids_always_in_embedding_range() {
        for len in 1..25 {
            for h in 0..len {
                for t in 0..len {
                    let s = sentence((0..len).collect(), h, t);
                    let f = featurize(&s, 15, 6);
                    let bound = 2 * 6 + 1;
                    assert!(f.head_offsets.iter().all(|&o| o < bound));
                    assert!(f.tail_offsets.iter().all(|&o| o < bound));
                }
            }
        }
    }
}
