//! Post-training int8 quantization of a trained [`ReModel`] and the
//! tape-free quantized inference forward (`predict_batch_quant`).
//!
//! [`QuantModel::from_model`] snapshots every large table of a trained
//! model — the word/position embedding front-end, the conv filter bank,
//! the selective-attention queries (pre-multiplied by the diagonal `A`),
//! the relation head, and the optional MR / entity-type / combiner
//! components plus the LINE entity embeddings — into per-row affine
//! [`QuantTensor`]s (`imre_tensor::quant`). Small parameters (biases,
//! α/β/γ) stay f32.
//!
//! The forward replays the eval-mode f32 graph exactly, with every
//! matrix-vector product running in i8×i8→i32 and dequantizing only at the
//! nonlinearity boundaries (tanh, softmax) and the attention-weighted sums:
//!
//! ```text
//! gather-dequant embeddings → unfold → qmatvec(conv) → piecewise max →
//! tanh → [per-relation: qmatvec(a⊙q) → softmax → weighted sum →
//! qmatvec(re_head) → softmax] → combiner (f32 mix → qmatvec → softmax)
//! ```
//!
//! All intermediate storage lives in a [`QuantScratch`] whose `Vec`s are
//! `clear()`+`resize()`d — capacity is retained across calls, so a warm
//! quantized inference performs **zero** heap allocations (gated by
//! `crates/bench/tests/zero_alloc_quant.rs`), mirroring the PR 4 arena
//! discipline of the f32 path.
//!
//! GRU-family encoders (GRU+ATT, BGWA) are recurrent with per-step
//! activation ranges; they are not supported by the post-training scheme
//! and [`QuantModel::from_model`] reports a typed error for them.

use crate::config::HyperParams;
use crate::model::{ModelSpec, PreparedBag};
use imre_graph::EntityEmbedding;
use imre_nn::pcnn_segments_array;
use imre_tensor::quant::{self, QuantRowParams};
use imre_tensor::{QuantTensor, Tensor};

use crate::encoder::EncoderKind;
use crate::model::ReModel;
use crate::AggKind;

/// Why a model cannot be quantized.
#[derive(Debug)]
pub enum QuantizeError {
    /// The architecture is outside the post-training int8 scheme.
    Unsupported(String),
    /// A required parameter or input was missing.
    Missing(String),
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::Unsupported(what) => {
                write!(f, "unsupported for int8 quantization: {what}")
            }
            QuantizeError::Missing(what) => write!(f, "missing quantization input: {what}"),
        }
    }
}

impl std::error::Error for QuantizeError {}

/// A quantized dense layer: `[out, in]` int8 weight rows + f32 bias.
pub struct QuantLinear {
    /// Weight rows, one per output unit (transposed from the f32 layout).
    pub w: QuantTensor,
    /// f32 bias, length `w.rows()`.
    pub b: Vec<f32>,
}

impl QuantLinear {
    fn from_store(store: &imre_nn::ParamStore, name: &str) -> Result<QuantLinear, QuantizeError> {
        let w = find(store, &format!("{name}.w"))?;
        let b = find(store, &format!("{name}.b"))?;
        Ok(QuantLinear {
            w: QuantTensor::quantize_transposed(w),
            b: b.data().to_vec(),
        })
    }

    /// `out = dequant(act · wᵀ) + b` for a pre-quantized activation row.
    fn apply(&self, act: &[i8], p: QuantRowParams, out: &mut [f32]) {
        quant::qmatvec_into(&self.w, act, p, Some(&self.b), out);
    }
}

/// The quantized entity-type component.
pub struct QuantType {
    /// Type-embedding table `[num_types, type_dim]`.
    pub emb: QuantTensor,
    /// Confidence head `2·type_dim → num_relations`.
    pub fc: QuantLinear,
}

/// The quantized combiner (α/β/γ stay f32; the near-identity output map is
/// quantized like any other linear layer).
pub struct QuantCombiner {
    /// Mixing weight for `C_MR`.
    pub alpha: f32,
    /// Mixing weight for `C_T`.
    pub beta: f32,
    /// Mixing weight for the RE score vector.
    pub gamma: f32,
    /// Final `num_relations → num_relations` map.
    pub out: QuantLinear,
}

/// An int8-quantized, inference-only snapshot of a trained [`ReModel`].
///
/// Fields are public so the bundle layer can serialize them and rebuild the
/// struct from (possibly memory-mapped) parts; always run
/// [`QuantModel::validate`] after manual construction.
pub struct QuantModel {
    /// The architecture this snapshot implements.
    pub spec: ModelSpec,
    /// Hyperparameters (featurization + widths).
    pub hp: HyperParams,
    /// Word embeddings `[vocab, word_dim]`.
    pub word_emb: QuantTensor,
    /// Head relative-position embeddings `[pos_vocab, pos_dim]`.
    pub head_pos_emb: QuantTensor,
    /// Tail relative-position embeddings `[pos_vocab, pos_dim]`.
    pub tail_pos_emb: QuantTensor,
    /// Conv filter bank `[filters, window·in_dim]` (transposed).
    pub conv: QuantLinear,
    /// Selective-attention query rows `a ⊙ q_r`, `[num_relations,
    /// sent_dim]` (absent under mean aggregation).
    pub att_queries: Option<QuantTensor>,
    /// Relation head `sent_dim → num_relations`.
    pub re_head: QuantLinear,
    /// MR head `entity_dim → num_relations` (PA-MR/PA-TMR).
    pub mr: Option<QuantLinear>,
    /// LINE entity embeddings `[entities, entity_dim]` (required with
    /// `mr`).
    pub entity_emb: Option<QuantTensor>,
    /// Entity-type component (PA-T/PA-TMR).
    pub ty: Option<QuantType>,
    /// Confidence combiner (any PA-* variant).
    pub comb: Option<QuantCombiner>,
    /// Number of relation labels.
    pub num_relations: usize,
}

fn find<'a>(store: &'a imre_nn::ParamStore, name: &str) -> Result<&'a Tensor, QuantizeError> {
    store
        .find(name)
        .map(|id| store.get(id))
        .ok_or_else(|| QuantizeError::Missing(format!("parameter {name}")))
}

impl QuantModel {
    /// Quantizes a trained model (plus, for MR variants, the LINE entity
    /// embeddings that live next to the model in the bundle).
    pub fn from_model(
        model: &ReModel,
        entity_emb: Option<&EntityEmbedding>,
    ) -> Result<QuantModel, QuantizeError> {
        let spec = model.spec;
        if spec.encoder == EncoderKind::Gru || spec.word_att {
            return Err(QuantizeError::Unsupported(format!(
                "{} uses a recurrent encoder; post-training int8 covers the CNN/PCNN family",
                spec.name()
            )));
        }
        let store = &model.store;
        let word_emb = QuantTensor::quantize(find(store, "enc.word_emb")?);
        let head_pos_emb = QuantTensor::quantize(find(store, "enc.head_pos_emb")?);
        let tail_pos_emb = QuantTensor::quantize(find(store, "enc.tail_pos_emb")?);
        let conv = QuantLinear::from_store(store, "enc.conv")?;
        let att_queries = if spec.agg == AggKind::Att {
            let a = find(store, "att.a_diag")?;
            let q = find(store, "att.queries")?;
            let (rows, cols) = (q.rows(), q.cols());
            let mut aq = Tensor::zeros(&[rows, cols]);
            for r in 0..rows {
                for c in 0..cols {
                    aq.data_mut()[r * cols + c] = a.data()[c] * q.data()[r * cols + c];
                }
            }
            Some(QuantTensor::quantize(&aq))
        } else {
            None
        };
        let re_head = QuantLinear::from_store(store, "re_head")?;
        let mr = if spec.use_mr {
            Some(QuantLinear::from_store(store, "mr")?)
        } else {
            None
        };
        let entity_emb = if spec.use_mr {
            let emb = entity_emb.ok_or_else(|| {
                QuantizeError::Missing("entity embeddings (spec.use_mr)".to_string())
            })?;
            Some(QuantTensor::quantize(emb.matrix()))
        } else {
            None
        };
        let ty = if spec.use_type {
            Some(QuantType {
                emb: QuantTensor::quantize(find(store, "ty.emb")?),
                fc: QuantLinear::from_store(store, "ty.fc")?,
            })
        } else {
            None
        };
        let comb = if spec.use_mr || spec.use_type {
            Some(QuantCombiner {
                alpha: find(store, "comb.alpha")?.data()[0],
                beta: find(store, "comb.beta")?.data()[0],
                gamma: find(store, "comb.gamma")?.data()[0],
                out: QuantLinear::from_store(store, "comb.out")?,
            })
        } else {
            None
        };
        let qm = QuantModel {
            spec,
            hp: model.hp.clone(),
            word_emb,
            head_pos_emb,
            tail_pos_emb,
            conv,
            att_queries,
            re_head,
            mr,
            entity_emb,
            ty,
            comb,
            num_relations: model.num_relations(),
        };
        qm.validate().map_err(QuantizeError::Unsupported)?;
        Ok(qm)
    }

    /// Per-token encoder input width.
    pub fn in_dim(&self) -> usize {
        self.hp.word_dim + 2 * self.hp.pos_dim
    }

    /// Sentence-vector width (`filters` for CNN, `3·filters` for PCNN).
    pub fn sent_dim(&self) -> usize {
        match self.spec.encoder {
            EncoderKind::Cnn => self.hp.filters,
            EncoderKind::Pcnn => 3 * self.hp.filters,
            EncoderKind::Gru => unreachable!("GRU specs are rejected at construction"),
        }
    }

    /// Total bytes of quantized payload (weights + per-row parameters) —
    /// the `quant_bytes_per_model` metric.
    pub fn bytes(&self) -> usize {
        let lin = |l: &QuantLinear| l.w.bytes() + l.b.len() * 4;
        let mut total = self.word_emb.bytes()
            + self.head_pos_emb.bytes()
            + self.tail_pos_emb.bytes()
            + lin(&self.conv)
            + lin(&self.re_head);
        if let Some(q) = &self.att_queries {
            total += q.bytes();
        }
        if let Some(mr) = &self.mr {
            total += lin(mr);
        }
        if let Some(e) = &self.entity_emb {
            total += e.bytes();
        }
        if let Some(ty) = &self.ty {
            total += ty.emb.bytes() + lin(&ty.fc);
        }
        if let Some(c) = &self.comb {
            total += lin(&c.out) + 3 * 4;
        }
        total
    }

    /// Whether any table borrows from an external (mmap) allocation.
    pub fn is_borrowed(&self) -> bool {
        self.word_emb.is_borrowed()
    }

    /// Checks internal shape consistency (bundle loads call this before
    /// serving; [`QuantModel::from_model`] output always passes).
    pub fn validate(&self) -> Result<(), String> {
        if self.spec.encoder == EncoderKind::Gru || self.spec.word_att {
            return Err("quantized model with a recurrent encoder".to_string());
        }
        let (in_dim, sent_dim, nr) = (self.in_dim(), self.sent_dim(), self.num_relations);
        if self.word_emb.cols() != self.hp.word_dim {
            return Err("word embedding width != hp.word_dim".to_string());
        }
        for (name, t) in [
            ("head_pos_emb", &self.head_pos_emb),
            ("tail_pos_emb", &self.tail_pos_emb),
        ] {
            if t.cols() != self.hp.pos_dim || t.rows() != self.hp.pos_vocab() {
                return Err(format!("{name} shape inconsistent with hyperparameters"));
            }
        }
        if self.conv.w.rows() != self.hp.filters
            || self.conv.w.cols() != self.hp.window * in_dim
            || self.conv.b.len() != self.hp.filters
        {
            return Err("conv table shape inconsistent with hyperparameters".to_string());
        }
        if (self.spec.agg == AggKind::Att) != self.att_queries.is_some() {
            return Err("attention queries presence does not match spec.agg".to_string());
        }
        if let Some(q) = &self.att_queries {
            if q.rows() != nr || q.cols() != sent_dim {
                return Err("attention query table shape mismatch".to_string());
            }
        }
        if self.re_head.w.rows() != nr || self.re_head.w.cols() != sent_dim {
            return Err("relation head shape mismatch".to_string());
        }
        if self.spec.use_mr != self.mr.is_some() || self.spec.use_mr != self.entity_emb.is_some() {
            return Err("MR component presence does not match spec.use_mr".to_string());
        }
        if let (Some(mr), Some(emb)) = (&self.mr, &self.entity_emb) {
            if mr.w.rows() != nr || mr.w.cols() != emb.cols() {
                return Err("MR head shape inconsistent with entity embeddings".to_string());
            }
        }
        if self.spec.use_type != self.ty.is_some() {
            return Err("type component presence does not match spec.use_type".to_string());
        }
        if let Some(ty) = &self.ty {
            if ty.fc.w.rows() != nr || ty.fc.w.cols() != 2 * ty.emb.cols() {
                return Err("type head shape inconsistent with type embeddings".to_string());
            }
        }
        if (self.spec.use_mr || self.spec.use_type) != self.comb.is_some() {
            return Err("combiner presence does not match spec".to_string());
        }
        if let Some(c) = &self.comb {
            if c.out.w.rows() != nr || c.out.w.cols() != nr {
                return Err("combiner output map shape mismatch".to_string());
            }
        }
        Ok(())
    }
}

/// Capacity-retaining workspace of the quantized forward. One per serving
/// worker (or thread-local under bag-level parallelism); after the first
/// bag warms the capacities, further passes allocate nothing.
#[derive(Default)]
pub struct QuantScratch {
    emb: Vec<f32>,
    unf: Vec<f32>,
    qrow: Vec<i8>,
    conv: Vec<f32>,
    xs: Vec<f32>,
    att_scores: Vec<f32>,
    alpha: Vec<f32>,
    bag_vec: Vec<f32>,
    logits: Vec<f32>,
    re_scores: Vec<f32>,
    side: Vec<f32>,
    side_b: Vec<f32>,
}

impl QuantScratch {
    /// An empty workspace (capacities grow on first use).
    pub fn new() -> QuantScratch {
        QuantScratch::default()
    }
}

/// `clear` + `resize` without shrinking: reuses capacity, so a warm vector
/// of sufficient capacity never reallocates.
fn reuse(v: &mut Vec<f32>, n: usize) -> &mut [f32] {
    v.clear();
    v.resize(n, 0.0);
    v
}

/// Numerically stable in-place softmax (same max/exp/sum/div order as
/// `Tensor::softmax_into`).
fn softmax_in_place(xs: &mut [f32]) {
    let mut m = f32::NEG_INFINITY;
    for &x in xs.iter() {
        if x > m {
            m = x;
        }
    }
    let mut z = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
    }
    for &x in xs.iter() {
        z += x;
    }
    for x in xs.iter_mut() {
        *x /= z;
    }
}

thread_local! {
    /// Per-thread scratch for bag-level parallel quantized batches,
    /// mirroring `bufpool::with_local` for the f32 arena.
    static LOCAL_SCRATCH: std::cell::RefCell<QuantScratch> =
        std::cell::RefCell::new(QuantScratch::new());
}

impl QuantModel {
    /// Quantized [`ReModel::predict`]: per-relation probabilities for one
    /// bag, written into `out` (length [`QuantModel::num_relations`]).
    ///
    /// `entity_types` is the per-entity type table (only read when
    /// `spec.use_type`). When `repr` is given it receives the eval-mode
    /// mean sentence encoding (length [`QuantModel::sent_dim`]) — the same
    /// representation contract as [`ReModel::predict_repr_into`], computed
    /// from the quantized encoder.
    pub fn predict_quant_into(
        &self,
        bag: &PreparedBag,
        entity_types: &[Vec<usize>],
        scratch: &mut QuantScratch,
        out: &mut [f32],
        repr: Option<&mut [f32]>,
    ) {
        let nr = self.num_relations;
        assert_eq!(out.len(), nr, "output length != num_relations");
        let (in_dim, sent_dim) = (self.in_dim(), self.sent_dim());
        let (window, filters) = (self.hp.window, self.hp.filters);
        let half = window / 2;
        let n = bag.sentences.len();

        // --- encode every sentence into xs[n, sent_dim] ---
        let max_t = bag
            .sentences
            .iter()
            .map(|s| s.tokens.len())
            .max()
            .unwrap_or(0);
        assert!(max_t > 0, "bag with no tokens");
        scratch.xs.clear();
        scratch.xs.resize(n * sent_dim, 0.0);
        scratch.emb.reserve(max_t * in_dim);
        scratch.conv.reserve(max_t * filters);
        for (j, feats) in bag.sentences.iter().enumerate() {
            let t = feats.tokens.len();
            let emb = reuse(&mut scratch.emb, t * in_dim);
            // Gather-dequant the three embedding tables, interleaved
            // per token (word ‖ head-pos ‖ tail-pos).
            let (wd, pd) = (self.hp.word_dim, self.hp.pos_dim);
            for row in 0..t {
                let base = row * in_dim;
                self.word_emb
                    .dequant_row_into(feats.tokens[row], &mut emb[base..base + wd]);
                self.head_pos_emb
                    .dequant_row_into(feats.head_offsets[row], &mut emb[base + wd..base + wd + pd]);
                self.tail_pos_emb.dequant_row_into(
                    feats.tail_offsets[row],
                    &mut emb[base + wd + pd..base + in_dim],
                );
            }
            // Conv as unfold → quantized matvec per output row. The
            // unfolded window is zero-padded exactly like `Tape::unfold`,
            // and quantization keeps zeros exact, so padding contributes
            // nothing — matching the f32 graph.
            let conv = {
                scratch.conv.clear();
                scratch.conv.resize(t * filters, 0.0);
                &mut scratch.conv
            };
            for row in 0..t {
                let unf = reuse(&mut scratch.unf, window * in_dim);
                for o in 0..window {
                    let src = row as isize + o as isize - half as isize;
                    if src >= 0 && (src as usize) < t {
                        let s = src as usize * in_dim;
                        unf[o * in_dim..(o + 1) * in_dim].copy_from_slice(&emb[s..s + in_dim]);
                    }
                }
                scratch.qrow.clear();
                scratch.qrow.resize(window * in_dim, 0);
                let p = quant::quantize_row_into(unf, &mut scratch.qrow);
                self.conv.apply(
                    &scratch.qrow,
                    p,
                    &mut conv[row * filters..(row + 1) * filters],
                );
            }
            // Piecewise max-pool + tanh into this sentence's xs row.
            let segs = match self.spec.encoder {
                EncoderKind::Cnn => [(0, t); 3],
                EncoderKind::Pcnn => pcnn_segments_array(t, feats.head_pos, feats.tail_pos),
                EncoderKind::Gru => unreachable!(),
            };
            let n_segs = sent_dim / filters;
            let xrow = &mut scratch.xs[j * sent_dim..(j + 1) * sent_dim];
            for (si, &(lo, hi)) in segs.iter().take(n_segs).enumerate() {
                for c in 0..filters {
                    let mut m = f32::NEG_INFINITY;
                    for r in lo..hi {
                        let v = conv[r * filters + c];
                        if v > m {
                            m = v;
                        }
                    }
                    xrow[si * filters + c] = m.tanh();
                }
            }
        }

        if let Some(r) = repr {
            assert_eq!(r.len(), sent_dim, "repr length != sent_dim");
            // Mean over sentence encodings — the single pooled-representation
            // contract shared with the f32 path (`repr_from_matrix`).
            r.fill(0.0);
            for j in 0..n {
                for (d, acc) in r.iter_mut().enumerate() {
                    *acc += scratch.xs[j * sent_dim + d];
                }
            }
            let inv = 1.0 / n as f32;
            for acc in r.iter_mut() {
                *acc *= inv;
            }
        }

        // --- aggregate + relation head → re_scores[nr] ---
        let re_scores = {
            scratch.re_scores.clear();
            scratch.re_scores.resize(nr, 0.0);
            &mut scratch.re_scores
        };
        match &self.att_queries {
            None => {
                let bag_vec = reuse(&mut scratch.bag_vec, sent_dim);
                let inv = 1.0 / n as f32;
                for j in 0..n {
                    for (d, acc) in bag_vec.iter_mut().enumerate() {
                        *acc += scratch.xs[j * sent_dim + d];
                    }
                }
                for acc in bag_vec.iter_mut() {
                    *acc *= inv;
                }
                scratch.qrow.clear();
                scratch.qrow.resize(sent_dim, 0);
                let p = quant::quantize_row_into(bag_vec, &mut scratch.qrow);
                let logits = reuse(&mut scratch.logits, nr);
                self.re_head.apply(&scratch.qrow, p, logits);
                softmax_in_place(logits);
                re_scores.copy_from_slice(logits);
            }
            Some(aq) => {
                // Score every sentence against every relation query in one
                // quantized matvec per sentence: att_scores[j, r] = x_j·(a⊙q_r).
                let att_scores = {
                    scratch.att_scores.clear();
                    scratch.att_scores.resize(n * nr, 0.0);
                    &mut scratch.att_scores
                };
                for j in 0..n {
                    scratch.qrow.clear();
                    scratch.qrow.resize(sent_dim, 0);
                    let p = quant::quantize_row_into(
                        &scratch.xs[j * sent_dim..(j + 1) * sent_dim],
                        &mut scratch.qrow,
                    );
                    quant::qmatvec_into(
                        aq,
                        &scratch.qrow,
                        p,
                        None,
                        &mut att_scores[j * nr..(j + 1) * nr],
                    );
                }
                for (r, score) in re_scores.iter_mut().enumerate() {
                    let alpha = reuse(&mut scratch.alpha, n);
                    for (j, a) in alpha.iter_mut().enumerate() {
                        *a = scratch.att_scores[j * nr + r];
                    }
                    softmax_in_place(alpha);
                    let bag_vec = reuse(&mut scratch.bag_vec, sent_dim);
                    for j in 0..n {
                        let a = scratch.alpha[j];
                        for (d, acc) in bag_vec.iter_mut().enumerate() {
                            *acc += a * scratch.xs[j * sent_dim + d];
                        }
                    }
                    scratch.qrow.clear();
                    scratch.qrow.resize(sent_dim, 0);
                    let p = quant::quantize_row_into(&scratch.bag_vec, &mut scratch.qrow);
                    let logits = reuse(&mut scratch.logits, nr);
                    self.re_head.apply(&scratch.qrow, p, logits);
                    softmax_in_place(logits);
                    *score = scratch.logits[r];
                }
            }
        }

        // --- side components + combiner (or plain RE scores) ---
        let Some(comb) = &self.comb else {
            out.copy_from_slice(re_scores);
            return;
        };
        let acc = reuse(&mut scratch.side, nr);
        for (a, &re) in acc.iter_mut().zip(re_scores.iter()) {
            *a = comb.gamma * re;
        }
        if let (Some(mr), Some(emb)) = (&self.mr, &self.entity_emb) {
            // MR_ij = U_j − U_i from the quantized LINE table.
            let dim = emb.cols();
            let head = reuse(&mut scratch.bag_vec, dim);
            emb.dequant_row_into(bag.head, head);
            let tail = reuse(&mut scratch.side_b, dim);
            emb.dequant_row_into(bag.tail, tail);
            for (t, &h) in tail.iter_mut().zip(scratch.bag_vec.iter()) {
                *t -= h;
            }
            scratch.qrow.clear();
            scratch.qrow.resize(dim, 0);
            let p = quant::quantize_row_into(&scratch.side_b, &mut scratch.qrow);
            let logits = reuse(&mut scratch.logits, nr);
            mr.apply(&scratch.qrow, p, logits);
            softmax_in_place(logits);
            for (a, &c) in scratch.side.iter_mut().zip(scratch.logits.iter()) {
                *a += comb.alpha * c;
            }
        }
        if let Some(ty) = &self.ty {
            let td = ty.emb.cols();
            let cat = reuse(&mut scratch.side_b, 2 * td);
            for (half, types) in [(0, &entity_types[bag.head]), (1, &entity_types[bag.tail])] {
                // Mean over the entity's type embeddings.
                let dst = &mut cat[half * td..(half + 1) * td];
                let inv = 1.0 / types.len() as f32;
                let row = reuse(&mut scratch.bag_vec, td);
                for &tid in types.iter() {
                    ty.emb.dequant_row_into(tid, row);
                    for (d, &v) in dst.iter_mut().zip(row.iter()) {
                        *d += v;
                    }
                }
                for d in dst.iter_mut() {
                    *d *= inv;
                }
            }
            scratch.qrow.clear();
            scratch.qrow.resize(2 * td, 0);
            let p = quant::quantize_row_into(&scratch.side_b, &mut scratch.qrow);
            let logits = reuse(&mut scratch.logits, nr);
            ty.fc.apply(&scratch.qrow, p, logits);
            softmax_in_place(logits);
            for (a, &c) in scratch.side.iter_mut().zip(scratch.logits.iter()) {
                *a += comb.beta * c;
            }
        }
        scratch.qrow.clear();
        scratch.qrow.resize(nr, 0);
        let p = quant::quantize_row_into(&scratch.side, &mut scratch.qrow);
        let logits = reuse(&mut scratch.logits, nr);
        comb.out.apply(&scratch.qrow, p, logits);
        softmax_in_place(logits);
        out.copy_from_slice(logits);
    }

    /// Quantized [`ReModel::predict_batch_pooled`]: scores a micro-batch,
    /// optionally exporting each bag's pooled representation.
    ///
    /// Single-threaded (or single-bag) batches run on the caller's
    /// `scratch`; with a multi-thread compute pool, bags run in parallel on
    /// per-thread scratches (results are identical — each bag is evaluated
    /// by exactly one thread with the same kernel order either way).
    pub fn predict_batch_quant_with_repr(
        &self,
        bags: &[&PreparedBag],
        entity_types: &[Vec<usize>],
        scratch: &mut QuantScratch,
        wants_repr: &[bool],
    ) -> Vec<(Vec<f32>, Option<Vec<f32>>)> {
        assert_eq!(bags.len(), wants_repr.len());
        let run_one = |bag: &PreparedBag, want: bool, scratch: &mut QuantScratch| {
            let mut scores = vec![0.0f32; self.num_relations];
            let mut repr = want.then(|| vec![0.0f32; self.sent_dim()]);
            self.predict_quant_into(bag, entity_types, scratch, &mut scores, repr.as_deref_mut());
            (scores, repr)
        };
        if imre_tensor::pool::current_threads() <= 1 || bags.len() <= 1 {
            return bags
                .iter()
                .zip(wants_repr)
                .map(|(bag, &want)| run_one(bag, want, scratch))
                .collect();
        }
        imre_tensor::pool::par_map(bags.len(), |i| {
            LOCAL_SCRATCH.with(|s| run_one(bags[i], wants_repr[i], &mut s.borrow_mut()))
        })
    }

    /// Quantized batch scoring without representation export.
    pub fn predict_batch_quant(
        &self,
        bags: &[&PreparedBag],
        entity_types: &[Vec<usize>],
        scratch: &mut QuantScratch,
    ) -> Vec<Vec<f32>> {
        let wants = vec![false; bags.len()];
        self.predict_batch_quant_with_repr(bags, entity_types, scratch, &wants)
            .into_iter()
            .map(|(scores, _)| scores)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BagContext;
    use crate::SentenceFeatures;
    use imre_tensor::TensorRng;

    fn tiny_hp() -> HyperParams {
        HyperParams {
            epochs: 1,
            ..HyperParams::tiny()
        }
    }

    fn toy_bag(label: usize, seed: u64) -> PreparedBag {
        let mut rng = TensorRng::seed(seed);
        let sentences = (0..3)
            .map(|_| {
                let t = 4 + rng.below(6);
                let head_pos = rng.below(t);
                let mut tail_pos = rng.below(t);
                if tail_pos == head_pos {
                    tail_pos = (tail_pos + 1) % t;
                }
                SentenceFeatures {
                    tokens: (0..t).map(|_| rng.below(10)).collect(),
                    head_offsets: (0..t).map(|_| rng.below(2 * 20 + 1)).collect(),
                    tail_offsets: (0..t).map(|_| rng.below(2 * 20 + 1)).collect(),
                    head_pos,
                    tail_pos,
                }
            })
            .collect();
        PreparedBag {
            head: 0,
            tail: 1,
            label,
            sentences,
        }
    }

    fn toy_types() -> Vec<Vec<usize>> {
        vec![vec![0, 2], vec![1], vec![3], vec![4, 1]]
    }

    fn toy_embedding(dim: usize) -> EntityEmbedding {
        let mut rng = TensorRng::seed(77);
        EntityEmbedding::from_matrix(Tensor::rand_uniform(&[4, dim], -1.0, 1.0, &mut rng))
    }

    fn build(spec: ModelSpec) -> ReModel {
        ReModel::new(spec, &tiny_hp(), 10, 4, 5, 8, 7)
    }

    #[test]
    fn gru_and_bgwa_rejected_with_typed_error() {
        for spec in [ModelSpec::gru_att(), ModelSpec::bgwa()] {
            let model = build(spec);
            match QuantModel::from_model(&model, None) {
                Err(QuantizeError::Unsupported(msg)) => {
                    assert!(msg.contains("recurrent"), "message: {msg}")
                }
                other => panic!("expected Unsupported, got {other:?}", other = other.err()),
            }
        }
    }

    #[test]
    fn mr_spec_requires_entity_embeddings() {
        let model = build(ModelSpec::pa_mr());
        assert!(matches!(
            QuantModel::from_model(&model, None),
            Err(QuantizeError::Missing(_))
        ));
    }

    /// The quantized forward must track the f32 reference closely on every
    /// supported spec — this is the in-crate version of the CI drift gate.
    #[test]
    fn quantized_scores_track_f32_for_every_supported_spec() {
        let emb = toy_embedding(8);
        let types = toy_types();
        for spec in [
            ModelSpec::pcnn(),
            ModelSpec::pcnn_att(),
            ModelSpec::cnn_att(),
            ModelSpec::pa_t(),
            ModelSpec::pa_mr(),
            ModelSpec::pa_tmr(),
        ] {
            let model = build(spec);
            let qm = QuantModel::from_model(&model, Some(&emb)).expect("quantizes");
            let ctx = BagContext {
                entity_embedding: Some(&emb),
                entity_types: &types,
            };
            let mut scratch = QuantScratch::new();
            for seed in 0..4u64 {
                let bag = toy_bag(seed as usize % 4, 100 + seed);
                let want = model.predict(&bag, &ctx);
                let mut got = vec![0.0f32; 4];
                qm.predict_quant_into(&bag, &types, &mut scratch, &mut got, None);
                // Attention scores take the diagonal of per-relation
                // softmaxes, so only the full-softmax outputs (mean agg, or
                // any combiner variant) form a distribution — as in f32.
                if spec.agg == AggKind::Mean || spec.use_mr || spec.use_type {
                    let sum: f32 = got.iter().sum();
                    assert!(
                        (sum - 1.0).abs() < 1e-4,
                        "{}: not a distribution",
                        spec.name()
                    );
                }
                for r in 0..4 {
                    assert!(
                        (want[r] - got[r]).abs() < 0.06,
                        "{} bag {seed} rel {r}: f32 {} vs int8 {}",
                        spec.name(),
                        want[r],
                        got[r]
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_single_and_exports_repr() {
        let model = build(ModelSpec::pcnn_att());
        let qm = QuantModel::from_model(&model, None).expect("quantizes");
        let types = toy_types();
        let bags: Vec<PreparedBag> = (0..5).map(|i| toy_bag(i % 4, 200 + i as u64)).collect();
        let refs: Vec<&PreparedBag> = bags.iter().collect();
        let mut scratch = QuantScratch::new();
        let wants = vec![true; bags.len()];
        let batch = qm.predict_batch_quant_with_repr(&refs, &types, &mut scratch, &wants);
        for (i, bag) in bags.iter().enumerate() {
            let mut one = vec![0.0f32; 4];
            let mut repr = vec![0.0f32; qm.sent_dim()];
            qm.predict_quant_into(bag, &types, &mut scratch, &mut one, Some(&mut repr));
            assert_eq!(batch[i].0, one, "bag {i} scores differ batch-vs-single");
            assert_eq!(batch[i].1.as_ref().unwrap(), &repr, "bag {i} repr differs");
        }
    }

    #[test]
    fn quantized_model_reports_smaller_footprint() {
        let model = build(ModelSpec::pa_tmr());
        let emb = toy_embedding(8);
        let qm = QuantModel::from_model(&model, Some(&emb)).expect("quantizes");
        let f32_bytes: usize = model
            .store
            .iter()
            .map(|(_, _, t)| t.len() * 4)
            .sum::<usize>()
            + emb.matrix().len() * 4;
        // Tiny test dims understate the win (the 9-byte/row parameter
        // overhead is large next to 3-wide embedding rows); the realistic
        // ≤30% ratio is gated in the `quant_serve` bench instead.
        assert!(
            qm.bytes() * 2 < f32_bytes,
            "quantized {} bytes vs f32 {f32_bytes}",
            qm.bytes()
        );
    }
}
