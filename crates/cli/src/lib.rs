//! Implementation of the `imre` command-line interface.
//!
//! Kept as a library so the argument parser and each subcommand are unit
//! testable; `main.rs` is a thin shim.

use imre_core::{HyperParams, ModelSpec};
use imre_corpus::stats::{fig1_bands, pair_frequency_histogram, summarize};
use imre_corpus::DatasetConfig;
use imre_eval::Pipeline;
use imre_graph::nearest;
use std::collections::HashMap;
use std::path::PathBuf;

/// CLI usage text.
pub const USAGE: &str = "\
imre — Implicit Mutual Relations for Neural Relation Extraction (ICDE 2020 reproduction)

USAGE:
  imre stats      --dataset <nyt|gds|smoke> [--seed N]
  imre train      --dataset <nyt|gds|smoke> [--model SPEC] [--epochs N] [--seed N] --out FILE
                  [--bundle FILE]   also write a self-contained .imrb serving bundle
                  [--knn-index <0|1>]   include a kNN index over training-bag
                  representations in the bundle (default 1; enables the
                  serve-time knn=K lambda=L interpolation path)
                  [--data-parallel R]   train on R model replicas (deterministic:
                  a fixed (seed, R) is byte-identical across runs and --threads)
                  [--checkpoint FILE] [--checkpoint-every N]   write an atomic
                  IMRC checkpoint every N epochs (default 1)
                  [--resume FILE]   continue from an IMRC checkpoint
                  (bit-identical to the uninterrupted run)
  imre eval       --dataset <nyt|gds|smoke> --model-file FILE [--seed N]
                  [--knn <0|1>]   additionally report held-out metrics with
                  kNN label interpolation, per co-occurrence bucket
                  [--knn-k N] [--knn-lambda L] [--knn-buckets N]
                  interpolation parameters (default k=8, λ=0.3, 5 buckets)
  imre compare    --dataset <nyt|gds|smoke> [--seeds N] [--epochs N]
                  [--parallel-seeds N]   train at most N seeds concurrently
                  (0 = all at once, the default)
  imre case-study --dataset <nyt|gds|smoke> [--entity NAME] [--k N]
  imre quantize   --bundle FILE --out FILE   re-export a bundle with a
                  per-row int8 copy of the model (.imrb version 3; loads
                  zero-copy from a memory mapping, ~1/4 the weight bytes)
                  [--check <nyt|gds|smoke>] [--seed N]   score the int8
                  model against f32 on the dataset's held-out split and
                  report max score drift + AUC / P@100/200/300 deltas
                  [--max-drift D] [--max-pn-delta P]   fail (exit nonzero)
                  when the --check drift exceeds D or any P@N delta
                  exceeds P percentage points — the CI gate
  imre serve      --bundle FILE [--name NAME] [--addr HOST:PORT] [--workers N]
                  [--stream FILE]   consume a delta stream (file or fifo; one
                  `ts<TAB>entity[:types]<TAB>entity...` sentence per line,
                  blank line = batch boundary) on a background updater that
                  folds counts into the proximity graph, refreshes the LINE
                  embedding, and hot-swaps the refreshed bundle into the
                  registry while serving — watch the `stats` stream: line
                  [--publish-every N]   publish after every N delta batches
                  (default 1; 0 = only at end of stream)
                  [--stream-refresh <canonical|refine>]   embedding refresh
                  contract (default canonical: full retrain on the merged
                  graph, batching-invariant; refine: warm-start refinement
                  over delta-touched edges, cheaper, replay-reproducible)
                  [--stream-threshold N]   co-occurrence admission threshold
                  (default 2, the offline builder's)
                  [--stream-publish-out FILE]   also persist each published
                  bundle (atomic tmp + rename)
                  [--batch N] [--deadline-ms N] [--queue N]
                  [--request-deadline-ms N]   default per-request time budget:
                  requests still queued after N ms are shed with
                  deadline-exceeded instead of running (0 = never, default)
                  [--knn-k N]   default neighbors for kNN label interpolation
                  on requests that do not set knn= (0 = off, the default)
                  [--knn-lambda L]   default interpolation weight λ ∈ [0,1]
                  for requests that do not set lambda= (default 0.3)
                  [--max-connections N]   global connection cap; arrivals
                  beyond it get err server-busy and close (default 1024)
                  [--max-inflight-per-conn N]   pipelined requests one
                  connection may have in the engine at once (default 32)
                  [--frontend <auto|epoll|threads>]   accept/connection
                  implementation (default auto: epoll on linux; the env var
                  IMRE_SERVE_FRONTEND overrides auto)
                  [--precision <f32|int8>]   forward-pass precision
                  (default f32; int8 needs a bundle re-exported by
                  `imre quantize`)
  imre stream-replay --bundle FILE --deltas FILE --out FILE
                  re-derive offline the bundle a live `serve --stream` run
                  publishes: same base bundle + same deltas give
                  byte-identical output; under the default canonical refresh
                  the bytes are also invariant to batch boundaries and to
                  --threads
                  [--stream-refresh <canonical|refine>] [--stream-threshold N]
                  same meaning as under `serve`

GLOBAL FLAGS (any subcommand):
  --threads N     size of the compute thread pool (default: IMRE_THREADS env
                  var, else all available cores; results are bit-identical
                  at any thread count)

MODEL SPECS: pcnn, pcnn-att, cnn-att, gru-att, bgwa, pa-t, pa-mr, pa-tmr";

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; message explains what.
    Usage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Serving-engine failure (bad bundle, engine error).
    Serve(imre_serve::ServeError),
    /// Streaming-update failure (bad delta source, publish failure).
    Stream(imre_stream::StreamUpdateError),
}

impl From<imre_serve::ServeError> for CliError {
    fn from(e: imre_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<imre_stream::StreamUpdateError> for CliError {
    fn from(e: imre_stream::StreamUpdateError) -> Self {
        CliError::Stream(e)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parsed `--key value` flags after the subcommand.
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs; rejects dangling keys.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| usage(format!("expected --flag, got {key:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| usage(format!("--{key} needs a value")))?;
            map.insert(key.to_string(), value.clone());
        }
        Ok(Flags { map })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.map
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| usage(format!("missing --{key}")))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// An optional parsed number flag.
    pub fn number<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| usage(format!("--{key} {v:?} is not a valid number"))),
        }
    }
}

/// Resolves a dataset name to its generator config.
pub fn dataset_config(name: &str, seed: u64) -> Result<DatasetConfig, CliError> {
    match name {
        "nyt" => Ok(imre_corpus::nyt_sim(seed)),
        "gds" => Ok(imre_corpus::gds_sim(seed)),
        "smoke" => Ok(imre_eval::smoke_config(seed)),
        other => Err(usage(format!(
            "unknown dataset {other:?} (nyt, gds, smoke)"
        ))),
    }
}

/// Resolves a model-spec name (Table IV row) to a [`ModelSpec`].
pub fn model_spec(name: &str) -> Result<ModelSpec, CliError> {
    match name {
        "pcnn" => Ok(ModelSpec::pcnn()),
        "pcnn-att" => Ok(ModelSpec::pcnn_att()),
        "cnn-att" => Ok(ModelSpec::cnn_att()),
        "gru-att" => Ok(ModelSpec::gru_att()),
        "bgwa" => Ok(ModelSpec::bgwa()),
        "pa-t" => Ok(ModelSpec::pa_t()),
        "pa-mr" => Ok(ModelSpec::pa_mr()),
        "pa-tmr" => Ok(ModelSpec::pa_tmr()),
        other => Err(usage(format!("unknown model {other:?}"))),
    }
}

fn hp_with_epochs(epochs: usize) -> HyperParams {
    let mut hp = HyperParams::scaled();
    if epochs > 0 {
        hp.epochs = epochs;
    }
    hp
}

/// Applies the global `--threads` flag: pins the compute pool size before
/// any kernel runs. The pool is process-global and built once, so a second
/// conflicting request (only possible when `run` is called repeatedly
/// in-process, as tests do) warns instead of failing the command.
fn apply_threads_flag(flags: &Flags) -> Result<(), CliError> {
    let Some(requested) = flags.optional("threads") else {
        return Ok(());
    };
    let threads: usize = requested
        .parse()
        .map_err(|_| usage(format!("--threads {requested:?} is not a valid number")))?;
    let threads = threads.max(1);
    if let Err(existing) = imre_tensor::pool::init_global(threads) {
        if existing != threads {
            eprintln!(
                "warning: compute pool already initialised with {existing} threads; \
                 --threads {threads} ignored"
            );
        }
    }
    Ok(())
}

/// Entry point used by `main` and the tests.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage("no subcommand"));
    };
    let flags = Flags::parse(rest)?;
    apply_threads_flag(&flags)?;
    match cmd.as_str() {
        "stats" => cmd_stats(&flags),
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        "compare" => cmd_compare(&flags),
        "case-study" => cmd_case_study(&flags),
        "quantize" => cmd_quantize(&flags),
        "serve" => cmd_serve(&flags),
        "stream-replay" => cmd_stream_replay(&flags),
        other => Err(usage(format!("unknown subcommand {other:?}"))),
    }
}

fn cmd_stats(flags: &Flags) -> Result<(), CliError> {
    let seed = flags.number("seed", 1u64)?;
    let config = dataset_config(flags.required("dataset")?, seed)?;
    let ds = imre_corpus::Dataset::generate(&config);
    let s = summarize(&ds);
    println!("dataset: {}", s.name);
    println!("relations (incl. NA): {}", s.num_relations);
    println!(
        "train: {} sentences, {} pairs",
        s.train_sentences, s.train_pairs
    );
    println!(
        "test:  {} sentences, {} pairs",
        s.test_sentences, s.test_pairs
    );
    println!("\npairs per sentence-count band (Figure 1):");
    for (label, count) in pair_frequency_histogram(&ds.train, &fig1_bands()) {
        println!("  {label:<8} {count}");
    }
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), CliError> {
    let seed = flags.number("seed", 1u64)?;
    let epochs = flags.number("epochs", 0usize)?;
    let config = dataset_config(flags.required("dataset")?, seed)?;
    let spec = model_spec(flags.optional("model").unwrap_or("pa-tmr"))?;
    let out = PathBuf::from(flags.required("out")?);
    let data_parallel = flags.number("data-parallel", 0usize)?;
    let resume = flags.optional("resume").map(PathBuf::from);
    let checkpoint = flags.optional("checkpoint").map(PathBuf::from);
    let checkpoint_every = flags.number("checkpoint-every", 1usize)?;

    println!("building pipeline for {} …", config.name);
    let pipeline = Pipeline::build(&config, hp_with_epochs(epochs));
    println!("training {} …", spec.name());
    // Any data-parallel / checkpoint / resume flag routes through the
    // deterministic imre-dist engine; otherwise the original serial loop
    // runs (byte-stable with earlier releases).
    let use_dist = data_parallel > 0 || resume.is_some() || checkpoint.is_some();
    let model = if use_dist {
        let replicas = data_parallel.max(1);
        let ckpt_cfg = checkpoint.map(|path| imre_dist::CheckpointCfg {
            every: checkpoint_every.max(1),
            path,
        });
        let (model, stats) =
            pipeline.train_system_dp(spec, seed, replicas, resume.as_deref(), ckpt_cfg.as_ref());
        println!(
            "data-parallel: {replicas} replica(s), {:.1} bags/s, reduce share {:.1}%, \
             arena hits {} misses {}",
            stats.bags_per_sec,
            stats.reduce_share() * 100.0,
            stats.pool.hits,
            stats.pool.misses
        );
        for (i, ((loss, wall), reduce)) in stats
            .epoch_losses
            .iter()
            .zip(&stats.epoch_wall_ns)
            .zip(&stats.epoch_reduce_ns)
            .enumerate()
        {
            println!(
                "  epoch {i}: loss {loss:.4}, {:.2}s wall, {:.0}ms reduce",
                *wall as f64 / 1e9,
                *reduce as f64 / 1e6
            );
        }
        model
    } else {
        pipeline.train_system(spec, seed)
    };
    let ev = pipeline.evaluate_model(&model);
    println!(
        "held-out: AUC {:.4}, F1 {:.4}, P@100 {:.2}",
        ev.auc, ev.f1, ev.p_at_100
    );
    imre_core::save_model(&model, &out)?;
    println!("model written to {}", out.display());
    if let Some(bundle_out) = flags.optional("bundle") {
        let bundle_out = PathBuf::from(bundle_out);
        let knn_index = flags.number("knn-index", 1usize)? != 0;
        // Build the serving kNN index before the model moves into the
        // bundle; seeded with the training seed so rebuilt bundles are
        // byte-identical.
        let ann = knn_index.then(|| imre_eval::build_index(&pipeline, &model, seed));
        let embedding =
            imre_graph::EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let mut bundle = imre_serve::Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        );
        if let Some(ann) = ann {
            println!(
                "kNN index: {} bags, {} bytes",
                ann.len(),
                ann.serialized_len()
            );
            bundle = bundle.with_ann(ann);
        }
        imre_serve::save_bundle(&bundle, &bundle_out)?;
        println!("serving bundle written to {}", bundle_out.display());
    }
    Ok(())
}

/// `imre quantize`: load a bundle, attach a per-row int8 copy of its model,
/// and write it back as an `.imrb` version-3 artifact. With `--check`, the
/// int8 model is scored against f32 on a dataset's held-out split first;
/// `--max-drift` / `--max-pn-delta` turn the report into a hard gate (CI
/// runs it that way).
fn cmd_quantize(flags: &Flags) -> Result<(), CliError> {
    let in_path = PathBuf::from(flags.required("bundle")?);
    let out_path = PathBuf::from(flags.required("out")?);
    let bundle = imre_serve::load_bundle(&in_path)?;
    let quant = imre_core::QuantModel::from_model(&bundle.model, bundle.embedding.as_ref())
        .map_err(|e| usage(format!("cannot quantize {}: {e}", in_path.display())))?;
    let f32_bytes = bundle.model.store.num_scalars() * 4;
    let q_bytes = quant.bytes();
    println!(
        "weights: f32 {f32_bytes} bytes → int8 {q_bytes} bytes ({:.1}% of f32)",
        q_bytes as f64 / f32_bytes as f64 * 100.0
    );

    if let Some(dataset) = flags.optional("check") {
        let seed = flags.number("seed", 1u64)?;
        let max_drift = flags.number("max-drift", f32::INFINITY)?;
        let max_pn_delta = flags.number("max-pn-delta", f32::INFINITY)?;
        let config = dataset_config(dataset, seed)?;
        let pipeline = Pipeline::build(&config, bundle.model.hp.clone());
        let types = imre_core::entity_type_table(&pipeline.dataset.world);
        let ctx = imre_core::BagContext {
            entity_embedding: bundle.embedding.as_ref(),
            entity_types: &types,
        };
        let nr = bundle.relations.len();
        let mut scratch = imre_core::QuantScratch::new();
        // One pass per precision over the held-out bags; the score pairs
        // feed both the drift check and the metric deltas.
        let mut drift = 0.0f32;
        let mut q_scores: Vec<Vec<f32>> = Vec::with_capacity(pipeline.test_bags.len());
        for bag in &pipeline.test_bags {
            let f = bundle.model.predict(bag, &ctx);
            let mut q = vec![0.0f32; nr];
            quant.predict_quant_into(bag, &types, &mut scratch, &mut q, None);
            for (a, b) in f.iter().zip(&q) {
                drift = drift.max((a - b).abs());
            }
            q_scores.push(q);
        }
        let f32_ev = imre_eval::evaluate_system(&pipeline.test_bags, nr, |bag| {
            bundle.model.predict(bag, &ctx)
        });
        let mut it = q_scores.into_iter();
        let q_ev = imre_eval::evaluate_system(&pipeline.test_bags, nr, |_| {
            it.next().expect("one score vector per bag")
        });
        println!(
            "check {}: bags={} max_score_drift={drift:.6}",
            config.name,
            pipeline.test_bags.len()
        );
        println!(
            "  AUC   f32 {:.4}  int8 {:.4}  delta {:+.4}",
            f32_ev.auc,
            q_ev.auc,
            q_ev.auc - f32_ev.auc
        );
        let pn = [
            ("P@100", f32_ev.p_at_100, q_ev.p_at_100),
            ("P@200", f32_ev.p_at_200, q_ev.p_at_200),
            ("P@300", f32_ev.p_at_300, q_ev.p_at_300),
        ];
        let mut worst_pn_delta = 0.0f32;
        for (label, f, q) in pn {
            println!("  {label} f32 {f:.4}  int8 {q:.4}  delta {:+.4}", q - f);
            worst_pn_delta = worst_pn_delta.max((q - f).abs());
        }
        if drift > max_drift {
            return Err(usage(format!(
                "max score drift {drift:.6} exceeds --max-drift {max_drift}"
            )));
        }
        if worst_pn_delta * 100.0 > max_pn_delta {
            return Err(usage(format!(
                "P@N delta {:.2}pt exceeds --max-pn-delta {max_pn_delta}pt",
                worst_pn_delta * 100.0
            )));
        }
    }

    let bundle = bundle.with_quant(quant);
    imre_serve::save_bundle(&bundle, &out_path)?;
    println!(
        "quantized bundle (.imrb v3) written to {}",
        out_path.display()
    );
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), CliError> {
    let bundle_path = PathBuf::from(flags.required("bundle")?);
    let name = flags.optional("name").unwrap_or("default");
    let addr = flags.optional("addr").unwrap_or("127.0.0.1:7878");
    let request_deadline_ms = flags.number("request-deadline-ms", 0u64)?;
    let knn_lambda = flags.number("knn-lambda", 0.3f32)?;
    if !(0.0..=1.0).contains(&knn_lambda) {
        return Err(usage(format!(
            "--knn-lambda must be in [0, 1], got {knn_lambda}"
        )));
    }
    let precision: imre_serve::Precision = flags
        .optional("precision")
        .unwrap_or("f32")
        .parse()
        .map_err(|e: String| usage(format!("--precision: {e}")))?;
    let config = imre_serve::EngineConfig {
        workers: flags.number("workers", 2usize)?.max(1),
        batch_max: flags.number("batch", 8usize)?.max(1),
        batch_deadline: std::time::Duration::from_millis(flags.number("deadline-ms", 2u64)?),
        queue_capacity: flags.number("queue", 256usize)?.max(1),
        default_deadline_ms: (request_deadline_ms > 0).then_some(request_deadline_ms),
        knn_k: flags.number("knn-k", 0usize)?,
        knn_lambda,
        precision,
    };

    let frontend = match flags.optional("frontend").unwrap_or("auto") {
        "auto" => imre_serve::FrontendKind::Auto,
        "epoll" => imre_serve::FrontendKind::EventLoop,
        "threads" => imre_serve::FrontendKind::Threads,
        other => {
            return Err(usage(format!(
                "--frontend must be auto, epoll, or threads, got {other:?}"
            )))
        }
    };
    let frontend_config = imre_serve::FrontendConfig {
        frontend,
        max_connections: flags.number("max-connections", 1024usize)?.max(1),
        max_inflight_per_conn: flags.number("max-inflight-per-conn", 32usize)?.max(1),
        ..imre_serve::FrontendConfig::default()
    };

    let registry = std::sync::Arc::new(imre_serve::Registry::new());
    registry.load_file(name, &bundle_path)?;
    let model = registry.get(name).expect("model registered above");
    if flags.optional("stream").is_some() && model.bundle().embedding.is_none() {
        // Fail fast: streaming refresh rewrites the LINE embedding; a bundle
        // without one has nothing to refresh.
        return Err(imre_stream::StreamUpdateError::NoEmbedding.into());
    }
    // Fail fast at startup instead of answering every request with the
    // typed error: --precision int8 needs the bundle's quantized section.
    if precision == imre_serve::Precision::Int8 && model.quant().is_none() {
        return Err(imre_serve::ServeError::NoQuantModel.into());
    }
    println!(
        "serving {} as {name:?} ({} relations, {} entities, vocab {}, precision {precision})",
        model.bundle().model.spec.name(),
        model.num_relations(),
        model.bundle().entities.len(),
        model.bundle().vocab.len(),
    );
    let handle = imre_serve::ServeHandle::start(std::sync::Arc::clone(&registry), config);
    let server = imre_serve::TcpServer::spawn_with(handle.clone(), addr, frontend_config)?;
    let bound = server.local_addr();
    println!(
        "listening on {bound} — try: echo ping | nc {} {}",
        bound.ip(),
        bound.port()
    );
    println!(
        "workers={} batch_max={} deadline={:?} queue={} request_deadline_ms={} knn_k={} knn_lambda={}",
        config.workers,
        config.batch_max,
        config.batch_deadline,
        config.queue_capacity,
        match config.default_deadline_ms {
            Some(ms) => ms.to_string(),
            None => "none".to_string(),
        },
        config.knn_k,
        config.knn_lambda,
    );
    println!(
        "frontend={:?} max_connections={} max_inflight_per_conn={}",
        frontend_config.frontend,
        frontend_config.max_connections,
        frontend_config.max_inflight_per_conn,
    );
    // Optional live ingest: a background updater folds delta batches into
    // the proximity graph and hot-swaps refreshed bundles into the registry
    // the front end serves from. Keep the handle alive for the server's
    // lifetime; the thread ends on its own at end of stream.
    let _stream_updater = match flags.optional("stream") {
        Some(path) => {
            let build = stream_build_config(flags)?;
            let publish_every = flags.number("publish-every", 1usize)?;
            let out_path = flags.optional("stream-publish-out").map(PathBuf::from);
            let source = imre_corpus::LineDeltaSource::open(std::path::Path::new(path))?;
            let updater = imre_stream::StreamUpdater::spawn(
                source,
                bundle_path.clone(),
                registry,
                handle.metrics_arc(),
                imre_stream::StreamUpdaterConfig {
                    model_name: name.to_string(),
                    publish_every,
                    build,
                    out_path,
                },
            )?;
            println!(
                "streaming deltas from {path} (publish-every={publish_every}, refresh={})",
                flags.optional("stream-refresh").unwrap_or("canonical"),
            );
            Some(updater)
        }
        None => None,
    };
    // Serve until killed; the listener thread owns the accept loop.
    loop {
        std::thread::park();
    }
}

/// Parses the shared streaming flags (`--stream-threshold`,
/// `--stream-refresh`) used by `serve --stream` and `stream-replay`. The
/// LINE dimension is overridden to the base bundle's embedding width when
/// the stream starts, so it is not a flag.
fn stream_build_config(flags: &Flags) -> Result<imre_stream::StreamBuildConfig, CliError> {
    let threshold = flags.number("stream-threshold", 2u32)?;
    let line = imre_graph::LineConfig::default();
    let threads = match flags.optional("threads") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| usage(format!("--threads {v:?} is not a valid number")))?
            .max(1),
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    };
    let refresh = match flags.optional("stream-refresh").unwrap_or("canonical") {
        "canonical" => imre_stream::RefreshMode::Canonical,
        "refine" => imre_stream::RefreshMode::Refine(imre_graph::RefineConfig::from_line(&line)),
        other => {
            return Err(usage(format!(
                "--stream-refresh must be canonical or refine, got {other:?}"
            )))
        }
    };
    Ok(imre_stream::StreamBuildConfig {
        threshold,
        line,
        threads,
        refresh,
    })
}

fn cmd_stream_replay(flags: &Flags) -> Result<(), CliError> {
    let bundle_path = PathBuf::from(flags.required("bundle")?);
    let delta_path = PathBuf::from(flags.required("deltas")?);
    let out = PathBuf::from(flags.required("out")?);
    let config = stream_build_config(flags)?;
    let report = imre_stream::replay(&bundle_path, &delta_path, config)?;
    std::fs::write(&out, &report.bundle)?;
    println!(
        "replayed {} batches: {} duplicates dropped, {} malformed skipped",
        report.batches, report.duplicates, report.malformed,
    );
    println!(
        "admitted {} entities; proximity graph has {} edges",
        report.entities_admitted, report.n_edges,
    );
    println!("wrote {} bytes to {}", report.bundle.len(), out.display());
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<(), CliError> {
    let seed = flags.number("seed", 1u64)?;
    let config = dataset_config(flags.required("dataset")?, seed)?;
    let path = PathBuf::from(flags.required("model-file")?);
    let model = imre_core::load_model(&path)?;
    println!(
        "loaded {} ({} parameters)",
        model.spec.name(),
        model.store.num_scalars()
    );
    let pipeline = Pipeline::build(&config, model.hp.clone());
    if flags.number("knn", 0usize)? != 0 {
        let k = flags.number("knn-k", 8usize)?;
        let lambda = flags.number("knn-lambda", 0.3f32)?;
        if !(0.0..=1.0).contains(&lambda) {
            return Err(usage(format!(
                "--knn-lambda must be in [0, 1], got {lambda}"
            )));
        }
        let n_buckets = flags.number("knn-buckets", 5usize)?.max(1);
        let report = imre_eval::evaluate_model_knn(&pipeline, &model, k, lambda, seed, n_buckets);
        println!(
            "kNN index: {} bags, {} bytes, built in {:.0}ms",
            report.index_len, report.index_bytes, report.build_ms
        );
        println!(
            "pure   (λ=0):        AUC {:.4}, P {:.4}, R {:.4}, F1 {:.4}, hard-F1 {:.4}",
            report.base.auc,
            report.base.precision,
            report.base.recall,
            report.base.f1,
            report.base_hard_f1
        );
        println!(
            "kNN (k={}, λ={}): AUC {:.4}, P {:.4}, R {:.4}, F1 {:.4}, hard-F1 {:.4}",
            report.k,
            report.lambda,
            report.blended.auc,
            report.blended.precision,
            report.blended.recall,
            report.blended.f1,
            report.blended_hard_f1
        );
        println!("\nF1 by co-occurrence quantile (low → high):");
        println!("{:<8} {:>8} {:>8} {:>8}", "bucket", "pure", "knn", "delta");
        for b in &report.buckets {
            println!(
                "{:<8} {:>8.4} {:>8.4} {:>+8.4}",
                b.label,
                b.base_f1,
                b.knn_f1,
                b.knn_f1 - b.base_f1
            );
        }
        return Ok(());
    }
    let ev = pipeline.evaluate_model(&model);
    println!(
        "held-out: AUC {:.4}, P {:.4}, R {:.4}, F1 {:.4}, P@100 {:.2}, P@200 {:.2}, P@300 {:.2}",
        ev.auc, ev.precision, ev.recall, ev.f1, ev.p_at_100, ev.p_at_200, ev.p_at_300
    );
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), CliError> {
    let seed = flags.number("seed", 1u64)?;
    let n_seeds: u64 = flags.number("seeds", 1u64)?;
    let epochs = flags.number("epochs", 0usize)?;
    let parallel_seeds = flags.number("parallel-seeds", 0usize)?;
    let config = dataset_config(flags.required("dataset")?, seed)?;
    let pipeline = Pipeline::build(&config, hp_with_epochs(epochs));
    let seeds: Vec<u64> = (0..n_seeds.max(1)).map(|i| 100 + 37 * i).collect();
    println!("{:<10} {:>8} {:>8} {:>8}", "model", "AUC", "F1", "P@100");
    for spec in [
        ModelSpec::pcnn(),
        ModelSpec::pcnn_att(),
        ModelSpec::pa_t(),
        ModelSpec::pa_mr(),
        ModelSpec::pa_tmr(),
    ] {
        let m = imre_eval::mean_evaluation(&pipeline.run_system_seeds_bounded(
            spec,
            &seeds,
            parallel_seeds,
        ));
        println!(
            "{:<10} {:>8.4} {:>8.4} {:>8.2}",
            spec.name(),
            m.auc,
            m.f1,
            m.p_at_100
        );
    }
    Ok(())
}

fn cmd_case_study(flags: &Flags) -> Result<(), CliError> {
    let seed = flags.number("seed", 1u64)?;
    let k = flags.number("k", 10usize)?;
    let config = dataset_config(flags.required("dataset")?, seed)?;
    let entity = flags.optional("entity").unwrap_or("Seattle");
    let pipeline = Pipeline::build(&config, HyperParams::scaled());
    let world = &pipeline.dataset.world;
    let Some(id) = world.entity_by_name(entity) else {
        return Err(usage(format!(
            "entity {entity:?} not in this world (try --dataset nyt)"
        )));
    };
    println!("top {k} nearest entities of {entity}:");
    for (rank, (v, cos)) in nearest(&pipeline.embedding, id.0, k)
        .into_iter()
        .enumerate()
    {
        println!(
            "{:>3}. {:<40} cos {:+.3}",
            rank + 1,
            world.entities[v].name,
            cos
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let f = Flags::parse(&s(&["--dataset", "nyt", "--seed", "7"])).unwrap();
        assert_eq!(f.required("dataset").unwrap(), "nyt");
        assert_eq!(f.number("seed", 0u64).unwrap(), 7);
        assert_eq!(f.number("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn flags_reject_dangling_value() {
        assert!(Flags::parse(&s(&["--dataset"])).is_err());
        assert!(Flags::parse(&s(&["dataset", "nyt"])).is_err());
        // A dangling key at the end of an otherwise valid list is still an error.
        assert!(Flags::parse(&s(&["--dataset", "nyt", "--out"])).is_err());
    }

    #[test]
    fn flags_repeated_key_last_wins() {
        let f = Flags::parse(&s(&["--seed", "1", "--seed", "9"])).unwrap();
        assert_eq!(f.number("seed", 0u64).unwrap(), 9);
    }

    #[test]
    fn flags_serve_flag_set_parses() {
        let f = Flags::parse(&s(&[
            "--bundle",
            "m.imrb",
            "--name",
            "prod",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--batch",
            "16",
            "--deadline-ms",
            "5",
            "--queue",
            "512",
            "--request-deadline-ms",
            "250",
            "--max-connections",
            "2048",
            "--max-inflight-per-conn",
            "8",
            "--frontend",
            "epoll",
        ]))
        .unwrap();
        assert_eq!(f.required("bundle").unwrap(), "m.imrb");
        assert_eq!(f.optional("name"), Some("prod"));
        assert_eq!(f.optional("addr"), Some("127.0.0.1:0"));
        assert_eq!(f.number("workers", 2usize).unwrap(), 4);
        assert_eq!(f.number("batch", 8usize).unwrap(), 16);
        assert_eq!(f.number("deadline-ms", 2u64).unwrap(), 5);
        assert_eq!(f.number("queue", 256usize).unwrap(), 512);
        assert_eq!(f.number("request-deadline-ms", 0u64).unwrap(), 250);
        assert_eq!(f.number("max-connections", 1024usize).unwrap(), 2048);
        assert_eq!(f.number("max-inflight-per-conn", 32usize).unwrap(), 8);
        assert_eq!(f.optional("frontend"), Some("epoll"));
    }

    #[test]
    fn serve_rejects_unknown_frontend() {
        match run(&s(&["serve", "--bundle", "m.imrb", "--frontend", "uring"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("frontend"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn flags_non_numeric_value_is_usage_error() {
        let f = Flags::parse(&s(&["--workers", "many"])).unwrap();
        match f.number("workers", 2usize) {
            Err(CliError::Usage(_)) => {}
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn serve_requires_bundle_flag() {
        match run(&s(&["serve", "--name", "default"])) {
            Err(CliError::Usage(_)) => {}
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn stream_replay_requires_its_flags() {
        match run(&s(&["stream-replay", "--bundle", "m.imrb"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("deltas"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn stream_refresh_rejects_unknown_mode() {
        match run(&s(&[
            "stream-replay",
            "--bundle",
            "m.imrb",
            "--deltas",
            "d.tsv",
            "--out",
            "o.imrb",
            "--stream-refresh",
            "turbo",
        ])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("stream-refresh"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn stream_build_config_parses_modes() {
        let f = Flags::parse(&s(&["--stream-threshold", "3", "--threads", "2"])).unwrap();
        let c = stream_build_config(&f).unwrap();
        assert_eq!(c.threshold, 3);
        assert_eq!(c.threads, 2);
        assert!(matches!(c.refresh, imre_stream::RefreshMode::Canonical));
        let f = Flags::parse(&s(&["--stream-refresh", "refine"])).unwrap();
        let c = stream_build_config(&f).unwrap();
        assert!(matches!(c.refresh, imre_stream::RefreshMode::Refine(_)));
    }

    #[test]
    fn model_spec_names_resolve() {
        assert_eq!(model_spec("pa-tmr").unwrap(), ModelSpec::pa_tmr());
        assert_eq!(model_spec("bgwa").unwrap(), ModelSpec::bgwa());
        assert!(model_spec("nope").is_err());
    }

    #[test]
    fn dataset_names_resolve() {
        assert_eq!(dataset_config("nyt", 1).unwrap().name, "NYT-sim");
        assert_eq!(dataset_config("gds", 1).unwrap().name, "GDS-sim");
        assert!(dataset_config("imagenet", 1).is_err());
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        match run(&s(&["frobnicate"])) {
            Err(CliError::Usage(_)) => {}
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn stats_runs_on_smoke() {
        run(&s(&["stats", "--dataset", "smoke", "--seed", "3"])).unwrap();
    }

    #[test]
    fn threads_flag_rejects_garbage() {
        match run(&s(&["stats", "--dataset", "smoke", "--threads", "lots"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("--threads")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn threads_flag_accepted_on_any_subcommand() {
        // The pool may already be pinned by a concurrent test; the flag must
        // still be accepted (it warns on conflict rather than failing).
        run(&s(&["stats", "--dataset", "smoke", "--threads", "2"])).unwrap();
    }

    #[test]
    fn flags_dist_flag_set_parses() {
        let f = Flags::parse(&s(&[
            "--data-parallel",
            "4",
            "--resume",
            "ck.imrc",
            "--checkpoint",
            "ck.imrc",
            "--checkpoint-every",
            "2",
            "--parallel-seeds",
            "3",
        ]))
        .unwrap();
        assert_eq!(f.number("data-parallel", 0usize).unwrap(), 4);
        assert_eq!(f.optional("resume"), Some("ck.imrc"));
        assert_eq!(f.optional("checkpoint"), Some("ck.imrc"));
        assert_eq!(f.number("checkpoint-every", 1usize).unwrap(), 2);
        assert_eq!(f.number("parallel-seeds", 0usize).unwrap(), 3);
    }

    #[test]
    fn dp_train_checkpoint_resume_roundtrip_on_smoke() {
        let dir = std::env::temp_dir().join("imre_cli_dp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("dp.imrm");
        let ckpt_path = dir.join("dp.imrc");
        let (mp, cp) = (model_path.to_str().unwrap(), ckpt_path.to_str().unwrap());
        // Data-parallel train with per-epoch checkpoints …
        run(&s(&[
            "train",
            "--dataset",
            "smoke",
            "--model",
            "pcnn",
            "--epochs",
            "2",
            "--data-parallel",
            "2",
            "--checkpoint",
            cp,
            "--out",
            mp,
        ]))
        .unwrap();
        assert!(ckpt_path.exists(), "checkpoint must be written");
        // … then resume from the final checkpoint (a no-op epoch range is
        // fine: it must load, skip training, and still write the model).
        run(&s(&[
            "train",
            "--dataset",
            "smoke",
            "--model",
            "pcnn",
            "--epochs",
            "2",
            "--data-parallel",
            "2",
            "--resume",
            cp,
            "--out",
            mp,
        ]))
        .unwrap();
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&ckpt_path).ok();
    }

    #[test]
    fn flags_knn_flag_set_parses() {
        let f = Flags::parse(&s(&[
            "--knn",
            "1",
            "--knn-k",
            "16",
            "--knn-lambda",
            "0.4",
            "--knn-buckets",
            "5",
            "--knn-index",
            "0",
        ]))
        .unwrap();
        assert_eq!(f.number("knn", 0usize).unwrap(), 1);
        assert_eq!(f.number("knn-k", 8usize).unwrap(), 16);
        assert_eq!(f.number("knn-lambda", 0.3f32).unwrap(), 0.4);
        assert_eq!(f.number("knn-buckets", 5usize).unwrap(), 5);
        assert_eq!(f.number("knn-index", 1usize).unwrap(), 0);
    }

    #[test]
    fn eval_rejects_out_of_range_lambda() {
        let dir = std::env::temp_dir().join("imre_cli_knn_lambda_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.imrm");
        let mp = model_path.to_str().unwrap();
        run(&s(&[
            "train",
            "--dataset",
            "smoke",
            "--model",
            "pcnn",
            "--epochs",
            "1",
            "--out",
            mp,
        ]))
        .unwrap();
        match run(&s(&[
            "eval",
            "--dataset",
            "smoke",
            "--model-file",
            mp,
            "--knn",
            "1",
            "--knn-lambda",
            "1.5",
        ])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("knn-lambda")),
            other => panic!("expected usage error, got {other:?}"),
        }
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn train_bundle_knn_eval_roundtrip_on_smoke() {
        let dir = std::env::temp_dir().join("imre_cli_knn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.imrm");
        let bundle_path = dir.join("m.imrb");
        let (mp, bp) = (model_path.to_str().unwrap(), bundle_path.to_str().unwrap());
        // Train with a bundle: the kNN index is built and embedded by
        // default, so the bundle loads as a v2 artifact with an index.
        run(&s(&[
            "train",
            "--dataset",
            "smoke",
            "--model",
            "pcnn",
            "--epochs",
            "2",
            "--out",
            mp,
            "--bundle",
            bp,
        ]))
        .unwrap();
        let bundle = imre_serve::load_bundle(&bundle_path).unwrap();
        let ann = bundle.ann.as_ref().expect("bundle carries a kNN index");
        assert!(!ann.is_empty());
        // The interpolated eval path runs end to end on the same model.
        run(&s(&[
            "eval",
            "--dataset",
            "smoke",
            "--model-file",
            mp,
            "--knn",
            "1",
            "--knn-k",
            "4",
            "--knn-buckets",
            "3",
        ]))
        .unwrap();
        // --knn-index 0 opts out: the bundle is a v1 artifact again.
        run(&s(&[
            "train",
            "--dataset",
            "smoke",
            "--model",
            "pcnn",
            "--epochs",
            "2",
            "--out",
            mp,
            "--bundle",
            bp,
            "--knn-index",
            "0",
        ]))
        .unwrap();
        let bundle = imre_serve::load_bundle(&bundle_path).unwrap();
        assert!(bundle.ann.is_none(), "--knn-index 0 must skip the index");
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&bundle_path).ok();
    }

    #[test]
    fn serve_rejects_unknown_precision() {
        match run(&s(&["serve", "--bundle", "m.imrb", "--precision", "fp8"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("precision"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn quantize_requires_bundle_and_out() {
        match run(&s(&["quantize", "--bundle", "m.imrb"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("out"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn quantize_check_roundtrip_on_smoke() {
        let dir = std::env::temp_dir().join("imre_cli_quant_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.imrm");
        let bundle_path = dir.join("m.imrb");
        let quant_path = dir.join("m.q.imrb");
        let (mp, bp, qp) = (
            model_path.to_str().unwrap(),
            bundle_path.to_str().unwrap(),
            quant_path.to_str().unwrap(),
        );
        run(&s(&[
            "train",
            "--dataset",
            "smoke",
            "--model",
            "pa-tmr",
            "--epochs",
            "2",
            "--out",
            mp,
            "--bundle",
            bp,
        ]))
        .unwrap();
        // Quantize with the CI-style gates on the same dataset.
        run(&s(&[
            "quantize",
            "--bundle",
            bp,
            "--out",
            qp,
            "--check",
            "smoke",
            "--max-drift",
            "0.01",
            "--max-pn-delta",
            "0.5",
        ]))
        .unwrap();
        let quantized = imre_serve::load_bundle(&quant_path).unwrap();
        assert!(
            quantized.quant.is_some(),
            "quantize must attach the int8 model"
        );
        // Impossible gate: must fail with a usage error naming the limit.
        match run(&s(&[
            "quantize",
            "--bundle",
            bp,
            "--out",
            qp,
            "--check",
            "smoke",
            "--max-drift",
            "0",
        ])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("max-drift"), "{msg}"),
            other => panic!("expected gate failure, got {other:?}"),
        }
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&bundle_path).ok();
        std::fs::remove_file(&quant_path).ok();
    }

    #[test]
    fn train_eval_roundtrip_on_smoke() {
        let dir = std::env::temp_dir().join("imre_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.imrm");
        let mp = model_path.to_str().unwrap();
        run(&s(&[
            "train",
            "--dataset",
            "smoke",
            "--model",
            "pcnn",
            "--epochs",
            "2",
            "--out",
            mp,
        ]))
        .unwrap();
        run(&s(&["eval", "--dataset", "smoke", "--model-file", mp])).unwrap();
        std::fs::remove_file(&model_path).ok();
    }
}
