//! `imre` — command-line interface to the relation-extraction system.
//!
//! ```text
//! imre stats   --dataset nyt                      # Table II / Figure 1 statistics
//! imre train   --dataset nyt --model pa-tmr --epochs 8 --out model.imrm
//! imre eval    --dataset nyt --model-file model.imrm
//! imre case-study --dataset nyt --entity Seattle  # Table V nearest neighbours
//! imre compare --dataset gds --seeds 3            # Table IV mini-run
//! ```
//!
//! Datasets are generated deterministically from their seed, so `train` and
//! `eval` reconstruct identical corpora without shipping data files.

use imre_cli::{run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", imre_cli::USAGE);
            std::process::exit(2);
        }
        Err(CliError::Io(e)) => {
            eprintln!("io error: {e}");
            std::process::exit(1);
        }
        Err(CliError::Serve(e)) => {
            eprintln!("serve error: {e}");
            std::process::exit(1);
        }
        Err(CliError::Stream(e)) => {
            eprintln!("stream error: {e}");
            std::process::exit(1);
        }
    }
}
