//! Typed serving errors, including the backpressure rejection.

use std::fmt;

/// Everything that can go wrong between accepting a request and answering it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is at capacity; the caller should back off
    /// and retry. This is the engine's backpressure signal — requests are
    /// rejected at submission time, never silently dropped mid-flight.
    QueueFull {
        /// Configured queue capacity that was hit.
        capacity: usize,
    },
    /// The engine is shutting down and no longer accepts new requests
    /// (already-queued requests are still drained and answered).
    ShuttingDown,
    /// The request's time budget ran out while it sat in the queue; the
    /// engine sheds it at dequeue without featurizing or running a forward
    /// pass, so an overloaded server spends no compute on answers nobody is
    /// waiting for anymore.
    DeadlineExceeded {
        /// The budget the request was submitted with, in milliseconds.
        budget_ms: u64,
    },
    /// No model with this name is registered.
    UnknownModel(String),
    /// The request names an entity the model's entity table does not know,
    /// and the model needs entity side information (types / mutual
    /// relations) to score the pair.
    UnknownEntity(String),
    /// The named entity does not occur as a token of the request text, so
    /// no mention position can be assigned.
    MentionNotFound(String),
    /// The request text contains no tokens.
    EmptyText,
    /// The request line/fields could not be parsed.
    BadRequest(String),
    /// A model artifact is internally inconsistent (e.g. a bundle whose
    /// embedding width does not match the model's MR component).
    BadArtifact(String),
    /// The request asked for kNN label interpolation (`knn=K lambda=L`, or
    /// the engine runs with a kNN default) but the model's bundle shipped
    /// no index section — rebuild the bundle with one (`imre train` builds
    /// it by default).
    NoKnnIndex,
    /// The engine runs with `--precision int8` but the model's bundle
    /// shipped no quantized section — re-export the bundle with
    /// `imre quantize` (which writes `.imrb` version 3).
    NoQuantModel,
    /// The front end refused the work because a connection-level limit was
    /// hit: the global connection cap, the per-connection in-flight cap, or
    /// an accept-path resource failure (e.g. thread spawn / fd exhaustion).
    /// The caller should back off and retry — nothing was enqueued.
    ServerBusy {
        /// Which limit was hit (`"connections"` or `"in-flight"`).
        what: &'static str,
        /// The configured limit that was reached.
        limit: usize,
    },
}

impl ServeError {
    /// Stable machine-readable code, used by the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServeError::UnknownModel(_) => "unknown-model",
            ServeError::UnknownEntity(_) => "unknown-entity",
            ServeError::MentionNotFound(_) => "mention-not-found",
            ServeError::EmptyText => "empty-text",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::BadArtifact(_) => "bad-artifact",
            ServeError::NoKnnIndex => "no-knn-index",
            ServeError::NoQuantModel => "no-quant-model",
            ServeError::ServerBusy { .. } => "server-busy",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline of {budget_ms}ms exceeded while queued")
            }
            ServeError::UnknownModel(name) => write!(f, "no model named {name:?} is registered"),
            ServeError::UnknownEntity(name) => {
                write!(f, "entity {name:?} not in the model's entity table")
            }
            ServeError::MentionNotFound(name) => {
                write!(f, "entity {name:?} does not occur in the request text")
            }
            ServeError::EmptyText => write!(f, "request text is empty"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::BadArtifact(msg) => write!(f, "bad model artifact: {msg}"),
            ServeError::NoKnnIndex => write!(
                f,
                "model has no kNN index section; rebuild the bundle with one"
            ),
            ServeError::NoQuantModel => write!(
                f,
                "model has no int8 section; re-export the bundle with `imre quantize`"
            ),
            ServeError::ServerBusy { what, limit } => {
                write!(f, "server busy: {what} limit ({limit}) reached")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            ServeError::QueueFull { capacity: 4 },
            ServeError::ShuttingDown,
            ServeError::DeadlineExceeded { budget_ms: 5 },
            ServeError::UnknownModel("m".into()),
            ServeError::UnknownEntity("e".into()),
            ServeError::MentionNotFound("e".into()),
            ServeError::EmptyText,
            ServeError::BadRequest("x".into()),
            ServeError::BadArtifact("x".into()),
            ServeError::NoKnnIndex,
            ServeError::NoQuantModel,
            ServeError::ServerBusy {
                what: "connections",
                limit: 1,
            },
        ];
        let codes: std::collections::HashSet<_> = all.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), all.len());
        assert_eq!(ServeError::QueueFull { capacity: 4 }.code(), "queue-full");
        assert_eq!(
            ServeError::ServerBusy {
                what: "in-flight",
                limit: 32,
            }
            .code(),
            "server-busy"
        );
    }
}
