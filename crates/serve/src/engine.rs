//! Micro-batching inference engine: bounded queue + worker pool.
//!
//! Requests enter through [`ServeHandle::submit`] into a bounded queue
//! ([`crate::queue::BoundedQueue`]); worker threads coalesce up to
//! `batch_max` requests arriving within `batch_deadline` into one batch,
//! group them by model, and run each group as a single batched forward pass
//! on a reused inference tape. Batching trades a bounded amount of latency
//! (the deadline) for amortized per-request overhead — one dequeue wakeup,
//! one registry resolution and one tape allocation per batch instead of per
//! request.
//!
//! The batched forward pass itself is data-parallel: `imre-core` runs the
//! bags of a batch concurrently on the `imre_tensor::pool` compute pool
//! (sized by `IMRE_THREADS` / the CLI `--threads` flag). The pool's
//! determinism contract guarantees batched scores stay bit-identical to
//! unbatched ones at any thread count, so the engine's batching is purely a
//! throughput decision.
//!
//! Requests may carry a time budget ([`InferRequest::deadline_ms`], or the
//! engine-wide `default_deadline_ms`): a job whose budget ran out while it
//! sat in the queue is *shed* at dequeue — answered
//! [`ServeError::DeadlineExceeded`] without featurizing or running a
//! forward pass — so an overloaded engine stops spending compute on answers
//! nobody is waiting for anymore.
//!
//! Shutdown is graceful and total: [`ServeHandle::shutdown`] closes the
//! queue (new submissions get [`ServeError::ShuttingDown`]), joins the
//! workers — which drain and answer every request they can — and then
//! fail-fasts anything *still* queued (no workers configured, or a worker
//! died) with [`ServeError::ShuttingDown`], so every [`Pending`] ever
//! handed out is answered and no caller blocks forever.

use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::pipeline::{InferRequest, InferResponse};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::Registry;
use imre_ann::{blend_scores, SearchScratch};
use imre_core::{PreparedBag, QuantScratch};
use imre_tensor::BufferPool;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Numeric precision of the serving forward pass (`--precision` on the
/// CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision forward pass on the bundle's f32 model (the default).
    #[default]
    F32,
    /// Integer forward pass on the bundle's int8 section (`.imrb` v3,
    /// written by `imre quantize`). Roughly a quarter of the weight bytes;
    /// scores drift from f32 by at most the CI-gated tolerance. Requests
    /// against a bundle without the section are answered
    /// [`ServeError::NoQuantModel`].
    Int8,
}

impl Precision {
    /// The CLI spelling (`f32` / `int8`).
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!(
                "unknown precision {other:?} (expected f32 or int8)"
            )),
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads running forward passes. `0` is allowed (useful in
    /// tests: requests queue up but nothing drains them).
    pub workers: usize,
    /// Maximum requests coalesced into one micro-batch.
    pub batch_max: usize,
    /// How long a worker waits for the batch to fill after the first
    /// request arrives.
    pub batch_deadline: Duration,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Time budget applied to requests that do not set their own
    /// [`InferRequest::deadline_ms`]; `None` means such requests never
    /// expire.
    pub default_deadline_ms: Option<u64>,
    /// Neighbors retrieved for kNN label interpolation when a request does
    /// not set its own `knn=` (`--knn-k` on the CLI). `0` — the default —
    /// disables interpolation engine-wide: the serve path is then
    /// bit-identical to a pre-kNN engine (representations are never
    /// computed, the index is never queried).
    pub knn_k: usize,
    /// Interpolation weight applied when a request does not set its own
    /// `lambda=` (`--knn-lambda` on the CLI). Only consulted when the
    /// effective k is nonzero.
    pub knn_lambda: f32,
    /// Forward-pass precision (`--precision` on the CLI). [`Precision::Int8`]
    /// serves every request from the bundle's quantized section.
    pub precision: Precision,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            batch_max: 8,
            batch_deadline: Duration::from_millis(2),
            queue_capacity: 256,
            default_deadline_ms: None,
            knn_k: 0,
            knn_lambda: 0.3,
            precision: Precision::F32,
        }
    }
}

/// Completion callback attached to every queued job: invoked exactly once
/// with the request's answer, on whatever thread resolves it (a worker, or
/// the shutdown fail-fast path). [`ServeHandle::submit`] wraps an mpsc
/// sender in one; the event-loop front end passes a closure that routes the
/// answer back into its wakeup pipe without parking a thread per request.
type ReplyFn = Box<dyn FnOnce(Result<InferResponse, ServeError>) + Send>;

struct Job {
    request: InferRequest,
    enqueued: Instant,
    /// Absolute expiry instant plus the original budget (for the error
    /// message); `None` for requests without a time budget.
    deadline: Option<(Instant, u64)>,
    reply: ReplyFn,
}

struct Shared {
    registry: Arc<Registry>,
    queue: BoundedQueue<Job>,
    metrics: Arc<Metrics>,
    config: EngineConfig,
}

/// A pending response; resolve it with [`Pending::wait`].
pub struct Pending {
    rx: mpsc::Receiver<Result<InferResponse, ServeError>>,
}

impl Pending {
    /// Blocks until the engine answers.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn poll(&self) -> Option<Result<InferResponse, ServeError>> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the answer; `None` if the request is
    /// still in flight when the timeout elapses (it stays submitted and can
    /// be awaited again — giving up on the client side does not cancel the
    /// queued job).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<InferResponse, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Cloneable handle to a running engine — the in-process serving API.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServeHandle {
    /// Starts the worker pool and returns the handle.
    pub fn start(registry: Arc<Registry>, config: EngineConfig) -> ServeHandle {
        let shared = Arc::new(Shared {
            registry,
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            metrics: Arc::new(Metrics::default()),
            config,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("imre-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ServeHandle {
            shared,
            workers: Arc::new(Mutex::new(workers)),
        }
    }

    /// The registry this engine serves from (register/swap models here at
    /// any time).
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Engine metrics (live; also rendered by [`ServeHandle::stats_text`]).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// A shared handle to the same metrics — for sidecars (e.g. the stream
    /// updater) that report through this engine's `stats` output.
    pub fn metrics_arc(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The text `stats` dump.
    pub fn stats_text(&self) -> String {
        self.shared.metrics.render()
    }

    /// Enqueues a request. The request's time budget (its own
    /// `deadline_ms`, else the engine's `default_deadline_ms`) starts
    /// counting from this call.
    ///
    /// # Errors
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity and
    /// [`ServeError::ShuttingDown`] after [`ServeHandle::shutdown`].
    pub fn submit(&self, request: InferRequest) -> Result<Pending, ServeError> {
        let (tx, rx) = mpsc::channel();
        // A vanished receiver just means the client gave up waiting.
        self.submit_with(request, move |reply| {
            let _ = tx.send(reply);
        })?;
        Ok(Pending { rx })
    }

    /// Enqueues a request with a completion callback instead of a
    /// [`Pending`] channel: `reply` is invoked exactly once with the answer,
    /// on whatever thread resolves the job. This is the non-blocking intake
    /// used by the event-loop front end — thousands of in-flight requests
    /// cost one queued closure each, not one parked thread.
    ///
    /// # Errors
    /// Same as [`ServeHandle::submit`]. On a rejection the callback is
    /// *not* invoked — nothing was enqueued, and the caller already holds
    /// the error.
    pub fn submit_with<F>(&self, request: InferRequest, reply: F) -> Result<(), ServeError>
    where
        F: FnOnce(Result<InferResponse, ServeError>) + Send + 'static,
    {
        let enqueued = Instant::now();
        let deadline = request
            .deadline_ms
            .or(self.shared.config.default_deadline_ms)
            .map(|ms| (enqueued + Duration::from_millis(ms), ms));
        let job = Job {
            request,
            enqueued,
            deadline,
            reply: Box::new(reply),
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                Metrics::inc(&self.shared.metrics.submitted);
                Ok(())
            }
            Err(PushError::Full(_)) => {
                Metrics::inc(&self.shared.metrics.rejected_full);
                Err(ServeError::QueueFull {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submits and blocks for the answer.
    pub fn infer(&self, request: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Stops accepting new requests, drains and answers everything already
    /// queued, and joins the workers. Idempotent; any clone of the handle
    /// may call it.
    ///
    /// Every [`Pending`] handed out before this call is guaranteed an
    /// answer: workers drain what they can, and whatever is *still* queued
    /// after they exit — because `workers: 0` was configured or a worker
    /// died — is failed fast here with [`ServeError::ShuttingDown`] (never
    /// left for a `Pending::wait` to block on forever).
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        drop(workers);
        for job in self.shared.queue.drain_remaining() {
            Metrics::inc(&self.shared.metrics.shed);
            Metrics::inc(&self.shared.metrics.errors);
            (job.reply)(Err(ServeError::ShuttingDown));
        }
    }
}

/// Per-worker kNN scratch, alive across batches like the buffer arena:
/// the search beam/visited-set and the vote accumulator retain their
/// capacity, so steady-state interpolated requests allocate nothing.
#[derive(Default)]
struct KnnState {
    scratch: SearchScratch,
    votes: Vec<f32>,
}

/// Per-worker forward-pass scratch, alive across batches. The f32 path
/// recycles tensor buffers through the arena; the int8 path recycles its
/// integer/activation workspaces through [`QuantScratch`]. Either way a
/// warm worker's steady-state forward pass allocates nothing.
struct WorkerState {
    arena: BufferPool,
    quant: QuantScratch,
    knn: KnnState,
}

fn worker_loop(shared: &Shared) {
    let cfg = &shared.config;
    // One buffer arena per worker, alive across batches: the first batches
    // warm it up, after which forward passes recycle instead of allocating
    // (the `alloc:` line of the stats dump tracks hits vs. misses).
    let mut state = WorkerState {
        arena: BufferPool::new(),
        quant: QuantScratch::new(),
        knn: KnnState::default(),
    };
    while let Some(batch) = shared.queue.pop_batch(cfg.batch_max, cfg.batch_deadline) {
        if batch.is_empty() {
            continue;
        }
        let dequeued = Instant::now();
        Metrics::inc(&shared.metrics.batches);
        shared
            .metrics
            .batched_jobs
            .fetch_add(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
        // Shed jobs whose time budget ran out while they were queued:
        // answer them now, before featurize/forward spends anything on them.
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            let wait = dequeued.saturating_duration_since(job.enqueued);
            shared.metrics.queue_wait.record(wait.as_micros() as u64);
            match job.deadline {
                Some((expires, budget_ms)) if dequeued >= expires => {
                    Metrics::inc(&shared.metrics.deadline_expired);
                    Metrics::inc(&shared.metrics.shed);
                    Metrics::inc(&shared.metrics.errors);
                    (job.reply)(Err(ServeError::DeadlineExceeded { budget_ms }));
                }
                _ => live.push(job),
            }
        }
        let batch = live;
        if batch.is_empty() {
            continue;
        }
        // Group by model so each group runs as one batched forward pass.
        // Sorted map, not a hash map: per-model execution order (and with
        // it metric interleaving) must be deterministic run to run.
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, job) in batch.iter().enumerate() {
            groups
                .entry(job.request.model.as_str())
                .or_default()
                .push(i);
        }
        let mut replies: Vec<Option<Result<InferResponse, ServeError>>> =
            (0..batch.len()).map(|_| None).collect();
        for (model_name, indices) in groups {
            run_group(
                shared,
                &batch,
                dequeued,
                model_name,
                &indices,
                &mut replies,
                &mut state,
            );
        }
        for (job, reply) in batch.into_iter().zip(replies) {
            let reply = reply.unwrap_or(Err(ServeError::ShuttingDown));
            match &reply {
                Ok(_) => Metrics::inc(&shared.metrics.completed),
                Err(_) => Metrics::inc(&shared.metrics.errors),
            }
            (job.reply)(reply);
        }
    }
}

/// Splits `elapsed_us` evenly over `n` requests: returns the base share and
/// how many of the first requests carry one extra µs, so that
/// `n * share + remainder == elapsed_us` — the recorded shares always sum
/// exactly to the measured batch time.
fn split_shares(elapsed_us: u64, n: usize) -> (u64, usize) {
    let n = n as u64;
    (elapsed_us / n, (elapsed_us % n) as usize)
}

#[allow(clippy::too_many_arguments)]
fn run_group(
    shared: &Shared,
    batch: &[Job],
    dequeued: Instant,
    model_name: &str,
    indices: &[usize],
    replies: &mut [Option<Result<InferResponse, ServeError>>],
    state: &mut WorkerState,
) {
    let cfg = &shared.config;
    let model = match shared.registry.get(model_name) {
        Some(m) => m,
        None => {
            for &i in indices {
                replies[i] = Some(Err(ServeError::UnknownModel(model_name.to_string())));
            }
            return;
        }
    };
    // Featurize each request and resolve its effective kNN parameters,
    // timing the stage per request. Requests whose kNN parameters are
    // invalid (λ out of range, or interpolation against an index-less
    // bundle) are answered here, before the forward pass spends anything.
    type PreparedJob = (usize, PreparedBag, u64, Option<(usize, f32)>);
    let mut prepared: Vec<PreparedJob> = Vec::with_capacity(indices.len());
    for &i in indices {
        let start = Instant::now();
        let outcome = model.featurize_request(&batch[i].request).and_then(|bag| {
            let params = model.knn_params(&batch[i].request, cfg.knn_k, cfg.knn_lambda)?;
            Ok((bag, params))
        });
        match outcome {
            Ok((bag, params)) => {
                let us = start.elapsed().as_micros() as u64;
                shared.metrics.featurize.record(us);
                prepared.push((i, bag, us, params));
            }
            Err(e) => replies[i] = Some(Err(e)),
        }
    }
    if prepared.is_empty() {
        return;
    }
    // One batched forward pass over every featurizable request; the cost is
    // attributed evenly across the requests it served, with the integer
    // remainder spread one extra µs at a time over the first requests so
    // the shares sum exactly to the elapsed time (a plain division would
    // truncate to 0 µs for fast large batches and under-report the total).
    // Requests on the interpolation path additionally export their pooled
    // representation from the same pass (no second encoder run).
    let bags: Vec<&PreparedBag> = prepared.iter().map(|(_, bag, _, _)| bag).collect();
    let wants_repr: Vec<bool> = prepared
        .iter()
        .map(|(_, _, _, params)| params.is_some())
        .collect();
    let start = Instant::now();
    let outputs = match cfg.precision {
        Precision::F32 => {
            let pool_before = state.arena.stats();
            let outputs =
                model.predict_prepared_batch_pooled_with_repr(&bags, &mut state.arena, &wants_repr);
            let pool_delta = state.arena.stats().since(&pool_before);
            shared
                .metrics
                .pool_hits
                .fetch_add(pool_delta.hits, std::sync::atomic::Ordering::Relaxed);
            shared
                .metrics
                .pool_misses
                .fetch_add(pool_delta.misses, std::sync::atomic::Ordering::Relaxed);
            shared.metrics.pool_bytes_recycled.fetch_add(
                pool_delta.bytes_recycled,
                std::sync::atomic::Ordering::Relaxed,
            );
            outputs
        }
        // Integer forward pass on the worker's recycled QuantScratch (its
        // zero-alloc counterpart of the arena). A bundle without an int8
        // section fails the whole group with the typed error — precision is
        // an engine-wide deployment decision, not a per-request fallback.
        Precision::Int8 => {
            match model.predict_prepared_batch_quant_with_repr(&bags, &mut state.quant, &wants_repr)
            {
                Ok(outputs) => outputs,
                Err(e) => {
                    for (i, _, _, _) in prepared {
                        replies[i] = Some(Err(e.clone()));
                    }
                    return;
                }
            }
        }
    };
    let elapsed_us = start.elapsed().as_micros() as u64;
    let (share, remainder) = split_shares(elapsed_us, prepared.len());
    for (j, ((i, _, featurize_us, params), (mut scores, repr))) in
        prepared.iter().zip(outputs).enumerate()
    {
        let job = &batch[*i];
        if let Some((k, lambda)) = params {
            // `knn_params` returned Some, so the index exists; the repr was
            // requested for exactly these jobs.
            let ann = model.ann().expect("knn_params verified the index");
            let repr = repr.expect("repr requested for interpolated job");
            let knn_start = Instant::now();
            let neighbors = ann.search(&repr, (*k).min(ann.len()), &mut state.knn.scratch);
            state.knn.votes.resize(scores.len(), 0.0);
            ann.label_votes_into(neighbors, &mut state.knn.votes);
            blend_scores(&mut scores, &state.knn.votes, *lambda);
            Metrics::inc(&shared.metrics.knn_queries);
            shared.metrics.knn_query_ns.fetch_add(
                knn_start.elapsed().as_nanos() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
        let forward_us = share + u64::from(j < remainder);
        shared.metrics.forward.record(forward_us);
        replies[*i] = Some(Ok(InferResponse {
            model: model_name.to_string(),
            ranked: model.rank(&scores, job.request.top_k),
            queue_us: dequeued.saturating_duration_since(job.enqueued).as_micros() as u64,
            featurize_us: *featurize_us,
            forward_us,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::split_shares;

    #[test]
    fn shares_sum_exactly_to_elapsed() {
        for &(elapsed, n) in &[(0u64, 1usize), (1, 8), (7, 8), (8, 8), (1000, 3), (999, 16)] {
            let (share, remainder) = split_shares(elapsed, n);
            let total: u64 = (0..n).map(|j| share + u64::from(j < remainder)).sum();
            assert_eq!(total, elapsed, "elapsed={elapsed} n={n}");
            assert!(remainder < n.max(1), "remainder bounded by batch size");
        }
    }
}
