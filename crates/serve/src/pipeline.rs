//! Request pipeline: raw text + entity names → featurized bag → scores.
//!
//! A [`ServingModel`] wraps a [`Bundle`] with the lookup structures needed
//! at request time and exposes the full path the engine runs per request:
//! whitespace tokenization, mention location, relative-position
//! featurization ([`imre_core::featurize`]), bag construction, and the
//! (optionally batched) forward pass.

use crate::bundle::Bundle;
use crate::error::ServeError;
use imre_ann::{blend_scores, AnnIndex, SearchScratch};
use imre_core::{featurize, BagContext, PreparedBag, QuantModel, QuantScratch};
use imre_corpus::EncodedSentence;
use std::collections::HashMap;

/// One inference request, as submitted by a client.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InferRequest {
    /// Registered model to run.
    pub model: String,
    /// Head entity surface name (must occur as a token of `text`).
    pub head: String,
    /// Tail entity surface name (must occur as a token of `text`).
    pub tail: String,
    /// Whitespace-tokenized sentence text; `|` separates the sentences of a
    /// multi-sentence bag.
    pub text: String,
    /// How many top relations to return (0 = all).
    pub top_k: usize,
    /// Optional time budget in milliseconds, measured from submission. A
    /// request still queued when the budget runs out is shed with
    /// [`crate::error::ServeError::DeadlineExceeded`] instead of paying for
    /// featurize/forward. `None` falls back to the engine's
    /// `default_deadline_ms` (and to no deadline if that is unset too).
    pub deadline_ms: Option<u64>,
    /// Neighbors to retrieve for kNN label interpolation (`knn=` on the
    /// wire). `None` falls back to the engine's `knn_k` default; `0`
    /// forces the pure model path regardless of defaults, which is
    /// bit-identical to a pre-kNN engine (the index is never queried).
    pub knn_k: Option<usize>,
    /// Interpolation weight λ ∈ [0, 1] (`lambda=` on the wire): scores
    /// become `(1−λ)·model + λ·neighbor-label-distribution`. `None` falls
    /// back to the engine's `knn_lambda` default; `0` disables blending.
    pub knn_lambda: Option<f32>,
}

/// One scored relation in a response.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedRelation {
    /// Relation name from the bundle's relation table.
    pub relation: String,
    /// Model probability for the relation.
    pub score: f32,
}

/// A completed inference with its per-stage timings.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Model that served the request.
    pub model: String,
    /// Relations sorted by descending score, truncated to `top_k`.
    pub ranked: Vec<RankedRelation>,
    /// Time spent queued before a worker picked the request up.
    pub queue_us: u64,
    /// Tokenization + featurization time.
    pub featurize_us: u64,
    /// Forward-pass time (this request's share of its micro-batch).
    pub forward_us: u64,
}

/// One bag's scores plus its optional pooled representation (flagged via
/// `wants_repr` in the batch-with-repr paths).
pub type ScoredBag = (Vec<f32>, Option<Vec<f32>>);

/// A bundle prepared for serving: adds the entity-name index and exposes
/// the request pipeline.
pub struct ServingModel {
    bundle: Bundle,
    entity_index: HashMap<String, usize>,
    entity_types: Vec<Vec<usize>>,
}

impl ServingModel {
    /// Wraps a validated bundle.
    ///
    /// # Errors
    /// [`ServeError::BadArtifact`] when the bundle's tables are inconsistent
    /// with the model architecture.
    pub fn new(bundle: Bundle) -> Result<Self, ServeError> {
        bundle
            .validate()
            .map_err(|e| ServeError::BadArtifact(e.to_string()))?;
        let entity_index = bundle
            .entities
            .iter()
            .enumerate()
            .map(|(id, (name, _))| (name.clone(), id))
            .collect();
        let entity_types = bundle
            .entities
            .iter()
            .map(|(_, types)| types.clone())
            .collect();
        Ok(ServingModel {
            bundle,
            entity_index,
            entity_types,
        })
    }

    /// The wrapped bundle.
    pub fn bundle(&self) -> &Bundle {
        &self.bundle
    }

    /// Number of relations this model scores.
    pub fn num_relations(&self) -> usize {
        self.bundle.relations.len()
    }

    /// The bundled kNN index over training-bag representations, if the
    /// artifact shipped one (`.imrb` version 2).
    pub fn ann(&self) -> Option<&AnnIndex> {
        self.bundle.ann.as_ref()
    }

    /// The bundled int8 model, if the artifact shipped one (`.imrb`
    /// version 3, written by `imre quantize`).
    pub fn quant(&self) -> Option<&QuantModel> {
        self.bundle.quant.as_ref()
    }

    /// The forward-time side context (entity types, LINE embeddings).
    pub fn ctx(&self) -> BagContext<'_> {
        BagContext {
            entity_embedding: self.bundle.embedding.as_ref(),
            entity_types: &self.entity_types,
        }
    }

    /// Resolves an entity name to its id, or errors if the model needs
    /// entity side information it cannot look up for an unknown entity.
    fn entity_id(&self, name: &str) -> Result<usize, ServeError> {
        match self.entity_index.get(name) {
            Some(&id) => Ok(id),
            // Plain text models treat an unknown entity like any
            // out-of-vocabulary token; only the side components need ids.
            None if !self.bundle.model.spec.use_mr && !self.bundle.model.spec.use_type => Ok(0),
            None => Err(ServeError::UnknownEntity(name.to_string())),
        }
    }

    /// Tokenizes and featurizes a request into a [`PreparedBag`].
    ///
    /// # Errors
    /// When the text is empty, a mention cannot be located, or an entity is
    /// unknown to a model that needs entity side information.
    pub fn featurize_request(&self, req: &InferRequest) -> Result<PreparedBag, ServeError> {
        let head_id = self.entity_id(&req.head)?;
        let tail_id = self.entity_id(&req.tail)?;
        let hp = &self.bundle.model.hp;
        let mut sentences = Vec::new();
        for raw in req.text.split('|') {
            let words: Vec<&str> = raw.split_whitespace().collect();
            if words.is_empty() {
                continue;
            }
            let head_pos = words
                .iter()
                .position(|&w| w == req.head)
                .ok_or_else(|| ServeError::MentionNotFound(req.head.clone()))?;
            // When head and tail share a surface form, prefer a second
            // occurrence for the tail mention.
            let tail_pos = words
                .iter()
                .enumerate()
                .position(|(i, &w)| w == req.tail && (req.head != req.tail || i != head_pos))
                .or_else(|| (req.head == req.tail).then_some(head_pos))
                .ok_or_else(|| ServeError::MentionNotFound(req.tail.clone()))?;
            let tokens = words
                .iter()
                .map(|w| self.bundle.vocab.get_or_unk(w))
                .collect();
            let encoded = EncodedSentence {
                tokens,
                head_pos,
                tail_pos,
                expresses_relation: false,
            };
            sentences.push(featurize(&encoded, hp.max_len, hp.pos_clip));
        }
        if sentences.is_empty() {
            return Err(ServeError::EmptyText);
        }
        Ok(PreparedBag {
            head: head_id,
            tail: tail_id,
            label: 0,
            sentences,
        })
    }

    /// Scores a featurized bag (single forward pass, unbatched).
    pub fn predict_prepared(&self, bag: &PreparedBag) -> Vec<f32> {
        self.bundle.model.predict(bag, &self.ctx())
    }

    /// Scores a slice of featurized bags; with a multi-thread compute pool
    /// the bags run in parallel (one inference tape each), otherwise on one
    /// reused tape. Either way the scores are bit-identical to per-bag
    /// [`ServingModel::predict_prepared`] — see `imre_tensor::pool` for the
    /// determinism contract.
    pub fn predict_prepared_batch(&self, bags: &[&PreparedBag]) -> Vec<Vec<f32>> {
        self.bundle.model.predict_batch(bags, &self.ctx())
    }

    /// [`ServingModel::predict_prepared_batch`] served from a caller-owned
    /// buffer arena. The engine passes each worker's arena here so that
    /// after warm-up a batch's forward pass performs zero tensor
    /// allocations; `pool.stats().misses` is the engine's
    /// `allocs_per_request` numerator.
    pub fn predict_prepared_batch_pooled(
        &self,
        bags: &[&PreparedBag],
        pool: &mut imre_tensor::BufferPool,
    ) -> Vec<Vec<f32>> {
        self.bundle
            .model
            .predict_batch_pooled(bags, &self.ctx(), pool)
    }

    /// [`ServingModel::predict_prepared_batch_pooled`] where bags flagged in
    /// `wants_repr` additionally export their pooled representation (the
    /// ANN query vector) from the same encoder pass. Bags not flagged run
    /// the exact code of the plain batch path — their scores stay
    /// bit-identical whether or not batch neighbors export representations.
    pub fn predict_prepared_batch_pooled_with_repr(
        &self,
        bags: &[&PreparedBag],
        pool: &mut imre_tensor::BufferPool,
        wants_repr: &[bool],
    ) -> Vec<ScoredBag> {
        self.bundle
            .model
            .predict_batch_pooled_with_repr(bags, &self.ctx(), pool, wants_repr)
    }

    /// The int8 counterpart of
    /// [`ServingModel::predict_prepared_batch_pooled_with_repr`]: one
    /// integer forward pass per bag on the caller's recycled
    /// [`QuantScratch`] (the engine passes each worker's, so warm batches
    /// allocate nothing). Exported representations come from the quantized
    /// encoder, so kNN interpolation keeps working against the bundled f32
    /// index.
    ///
    /// # Errors
    /// [`ServeError::NoQuantModel`] when the bundle has no int8 section.
    pub fn predict_prepared_batch_quant_with_repr(
        &self,
        bags: &[&PreparedBag],
        scratch: &mut QuantScratch,
        wants_repr: &[bool],
    ) -> Result<Vec<ScoredBag>, ServeError> {
        let qm = self.quant().ok_or(ServeError::NoQuantModel)?;
        Ok(qm.predict_batch_quant_with_repr(bags, &self.entity_types, scratch, wants_repr))
    }

    /// Resolves a request's effective kNN parameters against engine-level
    /// defaults: `Some((k, λ))` when interpolation should run.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] when λ is outside `[0, 1]` and
    /// [`ServeError::NoKnnIndex`] when interpolation is requested but the
    /// bundle shipped no index.
    pub fn knn_params(
        &self,
        req: &InferRequest,
        default_k: usize,
        default_lambda: f32,
    ) -> Result<Option<(usize, f32)>, ServeError> {
        let k = req.knn_k.unwrap_or(default_k);
        let lambda = req.knn_lambda.unwrap_or(default_lambda);
        if !(0.0..=1.0).contains(&lambda) {
            return Err(ServeError::BadRequest(format!(
                "lambda must be in [0, 1], got {lambda}"
            )));
        }
        if k == 0 || lambda == 0.0 {
            return Ok(None);
        }
        if self.ann().is_none() {
            return Err(ServeError::NoKnnIndex);
        }
        Ok(Some((k, lambda)))
    }

    /// Turns a score vector into named relations ranked by descending score
    /// (ties by relation id), truncated to `top_k` (0 = all).
    pub fn rank(&self, scores: &[f32], top_k: usize) -> Vec<RankedRelation> {
        let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let k = if top_k == 0 {
            ranked.len()
        } else {
            top_k.min(ranked.len())
        };
        ranked
            .into_iter()
            .take(k)
            .map(|(r, score)| RankedRelation {
                relation: self.bundle.relations[r].clone(),
                score,
            })
            .collect()
    }

    /// The whole pipeline in one call (featurize → forward → rank), used by
    /// single-shot callers and tests; the engine runs the stages separately
    /// so it can batch the forward pass and reuse per-worker scratch. A
    /// request carrying `knn_k`/`knn_lambda` runs the interpolation path
    /// (with throwaway scratch — the engine's is recycled).
    pub fn infer(&self, req: &InferRequest) -> Result<Vec<RankedRelation>, ServeError> {
        let bag = self.featurize_request(req)?;
        let params = self.knn_params(req, 0, req.knn_k.map(|_| 0.3).unwrap_or(0.0))?;
        let (k, lambda) = match params {
            // The λ=0 / k=0 path never computes a representation or touches
            // the index: bit-identical to a model without one.
            None => {
                let scores = self.predict_prepared(&bag);
                return Ok(self.rank(&scores, req.top_k));
            }
            Some(p) => p,
        };
        let ann = self.ann().expect("knn_params verified the index");
        let mut pool = imre_tensor::BufferPool::new();
        let mut out = self.bundle.model.predict_batch_pooled_with_repr(
            &[&bag],
            &self.ctx(),
            &mut pool,
            &[true],
        );
        let (mut scores, repr) = out.remove(0);
        let repr = repr.expect("repr requested");
        let mut scratch = SearchScratch::new();
        let neighbors = ann.search(&repr, k.min(ann.len()), &mut scratch);
        let mut votes = vec![0.0f32; scores.len()];
        ann.label_votes_into(neighbors, &mut votes);
        blend_scores(&mut scores, &votes, lambda);
        Ok(self.rank(&scores, req.top_k))
    }
}
