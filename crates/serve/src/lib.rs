//! imre-serve: batched multi-threaded inference serving for IMRE models.
//!
//! The crate turns a trained relation-extraction model into a serving unit:
//!
//! - [`bundle`] — the `.imrb` artifact freezing model + vocabulary + entity
//!   table + relation names + LINE embeddings into one loadable file;
//! - [`registry`] — named models behind an `RwLock`, hot-swappable while
//!   requests are in flight;
//! - [`pipeline`] — raw text + entity names → tokens → relative-position
//!   features → bag → ranked relation scores;
//! - [`queue`] / [`engine`] — a bounded request queue with typed
//!   backpressure feeding a worker pool that coalesces requests into
//!   micro-batches (up to `batch_max` requests or `batch_deadline`, one
//!   batched forward pass on a reused inference tape);
//! - [`metrics`] — per-stage latency histograms and throughput counters;
//! - [`server`] / [`protocol`] — a line-delimited TCP front-end that plain
//!   `nc` can talk to, plus the in-process [`ServeHandle`] API. On Linux
//!   the default front end is a single-threaded epoll readiness loop
//!   multiplexing thousands of pipelined connections; a
//!   thread-per-connection fallback remains selectable via
//!   [`FrontendConfig`] or `IMRE_SERVE_FRONTEND=threads`.
//!
//! ```no_run
//! use imre_serve::{EngineConfig, Registry, ServeHandle, InferRequest};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! registry.load_file("default", std::path::Path::new("model.imrb")).unwrap();
//! let handle = ServeHandle::start(registry, EngineConfig::default());
//! let resp = handle.infer(InferRequest {
//!     model: "default".into(),
//!     head: "Seattle".into(),
//!     tail: "Washington".into(),
//!     text: "Seattle is a city in Washington".into(),
//!     top_k: 3,
//!     deadline_ms: Some(250),
//!     ..InferRequest::default()
//! }).unwrap();
//! println!("{}: {:.3}", resp.ranked[0].relation, resp.ranked[0].score);
//! handle.shutdown();
//! ```

#![deny(missing_docs)]

pub mod bundle;
pub mod engine;
pub mod error;
#[cfg(target_os = "linux")]
pub(crate) mod eventloop;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod mmap;
pub mod pipeline;
pub mod protocol;
pub mod quantio;
pub mod queue;
pub mod registry;
pub mod server;

pub use bundle::{
    load_bundle, read_bundle, save_bundle, write_bundle, Bundle, VERSION_V1, VERSION_V2, VERSION_V3,
};
pub use engine::{EngineConfig, Pending, Precision, ServeHandle};
pub use error::ServeError;
pub use metrics::{Histogram, HistogramSnapshot, Metrics, BUCKET_BOUNDS_US};
pub use pipeline::{InferRequest, InferResponse, RankedRelation, ServingModel};
pub use queue::{BoundedQueue, PushError};
pub use registry::Registry;
pub use server::{FrontendConfig, FrontendKind, TcpServer};

#[cfg(target_os = "linux")]
pub use eventloop::raise_nofile_limit;
#[cfg(target_os = "linux")]
pub use mmap::live_mappings;
