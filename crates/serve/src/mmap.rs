//! Read-only file memory mappings for zero-copy v3 bundle loading.
//!
//! The workspace is std-only (no libc crate), so `mmap`/`munmap` are
//! declared here directly, in the style of `eventloop::sys`. A [`Mapping`]
//! is an immutable byte view of a whole file; v3 bundle sections hand
//! `Arc<Mapping>` clones to every zero-copy borrower (`QuantTensor` tables,
//! the ANN vector matrix), so the registry's hot-swap is a pointer swap and
//! the pages are unmapped only when the **last** borrower — including any
//! in-flight batch still holding the previous model — drops its `Arc`.
//!
//! The mapping is `MAP_PRIVATE` + `PROT_READ`: serving never writes through
//! it, and mutations of the underlying file by other processes are not part
//! of the bundle lifecycle (bundles are written atomically via
//! rename-into-place, so a path reload sees a different inode, not a
//! mutated mapping).

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

/// Number of [`Mapping`]s currently alive in the process — the deferred-unmap
/// observability hook: a hot-swap that replaces a v3 bundle leaves the old
/// mapping alive until the last in-flight borrower drops its `Arc`, at which
/// point this gauge ticks back down. Tests (and the hot-swap fault-injection
/// suite) assert on it instead of poking `/proc/self/maps`.
static LIVE_MAPPINGS: AtomicUsize = AtomicUsize::new(0);

/// The number of live [`Mapping`]s process-wide.
pub fn live_mappings() -> usize {
    LIVE_MAPPINGS.load(Ordering::SeqCst)
}

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
}

/// A read-only memory mapping of an entire file.
///
/// Pages are mapped on creation and unmapped on drop; `Arc<Mapping>` is the
/// keepalive handed to zero-copy borrowers.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mapping({} bytes)", self.len)
    }
}

// SAFETY: the mapping is read-only for its whole lifetime; concurrent reads
// from multiple threads are fine, and the raw pointer is never handed out
// mutably.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `file` read-only in full. Fails (like the syscall) on an empty
    /// file — a zero-length bundle is malformed anyway.
    pub fn of_file(file: &File) -> io::Result<Mapping> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cannot map an empty file",
            ));
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file larger than the address space",
            ));
        }
        let len = len as usize;
        // SAFETY: plain syscall with a valid fd; the kernel picks the
        // address. On success the returned range is ours until munmap.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        LIVE_MAPPINGS.fetch_add(1, Ordering::SeqCst);
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Opens and maps the file at `path`.
    pub fn of_path(path: &Path) -> io::Result<Mapping> {
        Mapping::of_file(&File::open(path)?)
    }

    /// The mapped bytes. The returned slice borrows `self`; zero-copy
    /// consumers that outlive this call must hold an `Arc<Mapping>` instead.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr..ptr+len` is a live PROT_READ mapping until drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true — creation rejects it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: exactly the range returned by mmap; errors on unmap are
        // unreportable from drop and the range is ours, so ignore the code.
        unsafe {
            munmap(self.ptr as *mut c_void, self.len);
        }
        LIVE_MAPPINGS.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Arc;

    fn tmp_file(name: &str, content: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("imre_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        path
    }

    #[test]
    fn maps_whole_file_and_reads_back() {
        let content: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = tmp_file("whole.bin", &content);
        let map = Mapping::of_path(&path).unwrap();
        assert_eq!(map.len(), content.len());
        assert_eq!(map.as_slice(), &content[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_rejected() {
        let path = tmp_file("empty.bin", b"");
        let err = Mapping::of_path(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_base_is_page_aligned() {
        let path = tmp_file("aligned.bin", &[7u8; 130]);
        let map = Mapping::of_path(&path).unwrap();
        // 64-aligned file offsets are only 64-aligned in memory because the
        // kernel maps at (at least) page granularity; pin that assumption.
        assert_eq!(map.as_slice().as_ptr() as usize % 4096, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arc_clones_keep_pages_alive_after_original_drop() {
        let path = tmp_file("keep.bin", b"staying alive");
        let map = Arc::new(Mapping::of_path(&path).unwrap());
        let clone = Arc::clone(&map);
        drop(map);
        assert_eq!(clone.as_slice(), b"staying alive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn live_gauge_tracks_mapping_lifetime() {
        // Other tests in this process create mappings too, so assert on
        // deltas rather than absolute values.
        let path = tmp_file("gauge.bin", b"gauge payload");
        let before = live_mappings();
        let map = Arc::new(Mapping::of_path(&path).unwrap());
        assert_eq!(live_mappings(), before + 1);
        let clone = Arc::clone(&map);
        drop(map);
        assert_eq!(live_mappings(), before + 1, "clone must keep pages mapped");
        drop(clone);
        assert_eq!(live_mappings(), before);
        std::fs::remove_file(&path).ok();
    }
}
