//! Line-delimited text protocol for the TCP front-end.
//!
//! One request per line; every response is one or more lines terminated by
//! an empty line, so plain `nc` works as a client:
//!
//! ```text
//! infer model=default k=3 head=Seattle tail=Washington text=Seattle is in Washington
//! ok located_in:0.91 NA:0.05 founded_by:0.02
//!
//! stats
//! requests: submitted=1 completed=1 errors=0 rejected_queue_full=0
//! ...
//!
//! models     → ok default
//! ping       → ok pong
//! quit       → closes the connection
//! ```
//!
//! Errors come back as `err <code> <message>` with the stable codes from
//! [`ServeError::code`].

use crate::engine::ServeHandle;
use crate::error::ServeError;
use crate::pipeline::{InferRequest, InferResponse};

/// What the connection loop should do after answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Send these lines (an empty terminator line is appended on the wire).
    Lines(Vec<String>),
    /// Close the connection.
    Quit,
}

/// A classified request line: either something the front end can answer
/// without touching the engine queue, or an `infer` to submit. Splitting
/// classification from resolution lets the event-loop front end submit
/// asynchronously ([`crate::engine::ServeHandle::submit_with`]) while the
/// thread-per-connection path keeps blocking in [`handle_line`].
#[derive(Debug, Clone, PartialEq)]
pub enum LineAction {
    /// Answer immediately (possibly [`Reply::Quit`]).
    Respond(Reply),
    /// Submit this request to the engine; its answer becomes the response
    /// line ([`format_response`] / [`format_error`]).
    Submit(InferRequest),
}

/// Parses an `infer` command's `key=value` arguments.
///
/// `text=` must come last: it consumes the rest of the line verbatim.
/// `deadline=` (milliseconds) optionally bounds how long the request may
/// wait in the engine queue before being shed with `deadline-exceeded`.
/// `knn=` and `lambda=` override the engine's kNN interpolation defaults
/// per request: `knn=K` retrieves K training-bag neighbors and `lambda=L`
/// (L ∈ [0, 1]) blends their label distribution into the scores; `knn=0`
/// or `lambda=0` forces the pure model path.
pub fn parse_infer(args: &str) -> Result<InferRequest, ServeError> {
    let mut req = InferRequest::default();
    let mut rest = args.trim_start();
    while !rest.is_empty() {
        if let Some(text) = rest.strip_prefix("text=") {
            req.text = text.to_string();
            break;
        }
        let token = rest
            .split_whitespace()
            .next()
            .expect("non-empty rest has a token");
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| ServeError::BadRequest(format!("expected key=value, got {token:?}")))?;
        match key {
            "model" => req.model = value.to_string(),
            "head" => req.head = value.to_string(),
            "tail" => req.tail = value.to_string(),
            "k" => {
                req.top_k = value.parse().map_err(|_| {
                    ServeError::BadRequest(format!("k must be a number, got {value:?}"))
                })?;
            }
            "deadline" => {
                req.deadline_ms = Some(value.parse().map_err(|_| {
                    ServeError::BadRequest(format!(
                        "deadline must be a number of milliseconds, got {value:?}"
                    ))
                })?);
            }
            "knn" => {
                req.knn_k = Some(value.parse().map_err(|_| {
                    ServeError::BadRequest(format!("knn must be a neighbor count, got {value:?}"))
                })?);
            }
            "lambda" => {
                let lambda: f32 = value.parse().map_err(|_| {
                    ServeError::BadRequest(format!("lambda must be a number, got {value:?}"))
                })?;
                if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
                    return Err(ServeError::BadRequest(format!(
                        "lambda must be in [0, 1], got {value:?}"
                    )));
                }
                req.knn_lambda = Some(lambda);
            }
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown infer argument {other:?}"
                )))
            }
        }
        rest = rest[token.len()..].trim_start();
    }
    for (field, name) in [
        (&req.model, "model"),
        (&req.head, "head"),
        (&req.tail, "tail"),
        (&req.text, "text"),
    ] {
        if field.is_empty() {
            return Err(ServeError::BadRequest(format!(
                "missing required argument {name}="
            )));
        }
    }
    Ok(req)
}

/// Formats a successful inference as a single `ok` line.
pub fn format_response(resp: &InferResponse) -> String {
    let mut line = String::from("ok");
    for r in &resp.ranked {
        line.push_str(&format!(" {}:{:.6}", r.relation, r.score));
    }
    line
}

/// Formats an error as an `err` line.
pub fn format_error(err: &ServeError) -> String {
    format!("err {} {err}", err.code())
}

/// Encodes reply lines to wire bytes: each line followed by `\n`, then the
/// empty terminator line every response ends with.
pub fn encode_lines(lines: &[String]) -> Vec<u8> {
    let mut out = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum::<usize>() + 1);
    for line in lines {
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out.push(b'\n');
    out
}

/// Classifies one request line: commands the front end answers on the spot
/// (`ping`, `stats`, `models`, parse errors, `quit`) versus an `infer` that
/// must go through the engine.
pub fn classify_line(handle: &ServeHandle, line: &str) -> LineAction {
    let line = line.trim();
    let (command, args) = match line.split_once(char::is_whitespace) {
        Some((c, a)) => (c, a),
        None => (line, ""),
    };
    match command {
        "" => LineAction::Respond(Reply::Lines(vec![])),
        "quit" => LineAction::Respond(Reply::Quit),
        "ping" => LineAction::Respond(Reply::Lines(vec!["ok pong".to_string()])),
        "models" => {
            let mut line = String::from("ok");
            for name in handle.registry().names() {
                line.push(' ');
                line.push_str(&name);
            }
            LineAction::Respond(Reply::Lines(vec![line]))
        }
        "stats" => LineAction::Respond(Reply::Lines(
            handle.stats_text().lines().map(str::to_string).collect(),
        )),
        "infer" => match parse_infer(args) {
            Ok(req) => LineAction::Submit(req),
            Err(e) => LineAction::Respond(Reply::Lines(vec![format_error(&e)])),
        },
        other => LineAction::Respond(Reply::Lines(vec![format_error(&ServeError::BadRequest(
            format!("unknown command {other:?}"),
        ))])),
    }
}

/// Dispatches one request line against the engine, blocking for `infer`
/// answers (the thread-per-connection path).
pub fn handle_line(handle: &ServeHandle, line: &str) -> Reply {
    match classify_line(handle, line) {
        LineAction::Respond(reply) => reply,
        LineAction::Submit(req) => match handle.infer(req) {
            Ok(resp) => Reply::Lines(vec![format_response(&resp)]),
            Err(e) => Reply::Lines(vec![format_error(&e)]),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_infer_full_line() {
        let req =
            parse_infer("model=m k=3 head=Seattle tail=Washington text=Seattle is in Washington")
                .unwrap();
        assert_eq!(req.model, "m");
        assert_eq!(req.top_k, 3);
        assert_eq!(req.head, "Seattle");
        assert_eq!(req.tail, "Washington");
        assert_eq!(req.text, "Seattle is in Washington");
    }

    #[test]
    fn parse_infer_text_keeps_equals_signs() {
        let req = parse_infer("model=m head=a tail=b text=a = b | a b").unwrap();
        assert_eq!(req.text, "a = b | a b");
    }

    #[test]
    fn parse_infer_deadline_is_optional() {
        let req = parse_infer("model=m head=a tail=b text=a b").unwrap();
        assert_eq!(req.deadline_ms, None);
        let req = parse_infer("model=m deadline=250 head=a tail=b text=a b").unwrap();
        assert_eq!(req.deadline_ms, Some(250));
    }

    #[test]
    fn parse_infer_bad_deadline_rejected() {
        assert_eq!(
            parse_infer("model=m deadline=soon head=a tail=b text=a b")
                .unwrap_err()
                .code(),
            "bad-request"
        );
    }

    #[test]
    fn parse_infer_missing_field_rejected() {
        let err = parse_infer("model=m head=a text=a b").unwrap_err();
        assert_eq!(err.code(), "bad-request");
        assert!(err.to_string().contains("tail"));
    }

    #[test]
    fn parse_infer_bad_k_rejected() {
        assert_eq!(
            parse_infer("model=m k=lots head=a tail=b text=a b")
                .unwrap_err()
                .code(),
            "bad-request"
        );
    }

    #[test]
    fn parse_infer_knn_and_lambda() {
        let req = parse_infer("model=m head=a tail=b text=a b").unwrap();
        assert_eq!(req.knn_k, None);
        assert_eq!(req.knn_lambda, None);
        let req = parse_infer("model=m knn=4 lambda=0.3 head=a tail=b text=a b").unwrap();
        assert_eq!(req.knn_k, Some(4));
        assert_eq!(req.knn_lambda, Some(0.3));
        let req = parse_infer("model=m knn=0 head=a tail=b text=a b").unwrap();
        assert_eq!(req.knn_k, Some(0));
    }

    #[test]
    fn parse_infer_bad_knn_rejected() {
        for args in [
            "model=m knn=many head=a tail=b text=a b",
            "model=m lambda=1.5 head=a tail=b text=a b",
            "model=m lambda=-0.1 head=a tail=b text=a b",
            "model=m lambda=NaN head=a tail=b text=a b",
        ] {
            assert_eq!(
                parse_infer(args).unwrap_err().code(),
                "bad-request",
                "{args}"
            );
        }
    }

    #[test]
    fn parse_infer_unknown_key_rejected() {
        assert_eq!(
            parse_infer("model=m beam=7 head=a tail=b text=a b")
                .unwrap_err()
                .code(),
            "bad-request"
        );
    }

    #[test]
    fn format_error_carries_code() {
        let line = format_error(&ServeError::QueueFull { capacity: 8 });
        assert!(line.starts_with("err queue-full "));
    }
}
