//! Lock-free serving metrics: per-stage latency histograms and counters.
//!
//! Histograms use fixed log-spaced microsecond buckets so recording is one
//! atomic increment — no allocation, no locking, safe to share across all
//! workers and connection threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive, in µs) of the histogram buckets; one final
/// overflow bucket catches everything slower.
pub const BUCKET_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 250_000, 1_000_000,
];

const NUM_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket latency histogram in microseconds.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

/// Plain-data copy of a histogram for inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (last bucket is overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values in µs.
    pub sum_us: u64,
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies out the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }

    fn render(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        let snap = self.snapshot();
        let mean = if snap.count == 0 {
            0.0
        } else {
            snap.sum_us as f64 / snap.count as f64
        };
        let _ = writeln!(out, "{name}: count={} mean_us={mean:.1}", snap.count);
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            match BUCKET_BOUNDS_US.get(i) {
                Some(&bound) => {
                    let _ = writeln!(out, "  le_{bound}us {n}");
                }
                None => {
                    let _ = writeln!(out, "  overflow {n}");
                }
            }
        }
    }
}

/// All engine metrics in one shareable struct.
#[derive(Default)]
pub struct Metrics {
    /// Time a request sat in the queue before a worker dequeued it.
    pub queue_wait: Histogram,
    /// Tokenization + featurization time, per request.
    pub featurize: Histogram,
    /// Forward-pass time, per request (a batched pass is attributed evenly
    /// across the requests it served).
    pub forward: Histogram,
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests rejected at submission because the queue was full.
    pub rejected_full: AtomicU64,
    /// Requests answered with a serving error.
    pub errors: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Total requests over all micro-batches (`/ batches` = mean batch size).
    pub batched_jobs: AtomicU64,
    /// Requests whose deadline expired while queued (answered
    /// `DeadlineExceeded` without featurize/forward).
    pub deadline_expired: AtomicU64,
    /// Requests answered without running the pipeline at all: deadline
    /// expiry at dequeue plus jobs failed fast during shutdown drain.
    pub shed: AtomicU64,
    /// Currently open TCP connections (gauge, not a counter).
    pub active_connections: AtomicU64,
    /// Connections admitted by the front end over its lifetime.
    pub conns_opened: AtomicU64,
    /// Connections refused at accept time because the global connection cap
    /// was hit, or because the front end could not allocate resources for
    /// the connection (e.g. thread spawn failure). Each one got a
    /// best-effort `server-busy` reply before the socket was closed.
    pub rejected_conn_cap: AtomicU64,
    /// Requests refused with `server-busy` because the connection already
    /// had the maximum number of pipelined requests in flight.
    pub rejected_inflight: AtomicU64,
    /// `accept(2)` failures other than "no connection waiting" (e.g. EMFILE
    /// fd exhaustion). The accept path backs off exponentially on these
    /// instead of spinning.
    pub accept_errors: AtomicU64,
    /// Forward-pass tensor requests served from a worker's recycled buffer
    /// arena (no heap allocation).
    pub pool_hits: AtomicU64,
    /// Forward-pass tensor requests that allocated a fresh buffer. After
    /// warm-up this should stop growing — `pool_misses / completed` is the
    /// `allocs_per_request` stat, and the CI alloc-gate pins its
    /// steady-state value to zero.
    pub pool_misses: AtomicU64,
    /// Total bytes of buffer capacity returned to worker arenas for reuse.
    pub pool_bytes_recycled: AtomicU64,
    /// kNN index queries executed (requests served on the interpolation
    /// path; pure requests never touch the index).
    pub knn_queries: AtomicU64,
    /// Total nanoseconds spent in kNN search + vote + blend
    /// (`/ knn_queries` = mean per-query cost).
    pub knn_query_ns: AtomicU64,
    /// Streaming ingestion: delta batches folded into the incremental graph.
    pub stream_deltas_applied: AtomicU64,
    /// Streaming ingestion: sentence events dropped as re-deliveries by the
    /// batching-stable dedup.
    pub stream_duplicates_dropped: AtomicU64,
    /// Streaming ingestion: entities newly admitted to the serving entity
    /// table (cold-start entities absent from training).
    pub stream_entities_admitted: AtomicU64,
    /// Streaming ingestion: bundles published through the hot-swap registry.
    pub stream_publishes: AtomicU64,
    /// Streaming ingestion: wall-clock milliseconds (unix epoch) of the last
    /// publish; 0 until the first publish (`stats` renders `age=never`).
    pub stream_last_publish_unix_ms: AtomicU64,
    /// Streaming ingestion: total nanoseconds spent refreshing embeddings
    /// (`/ stream_publishes` = mean refresh cost).
    pub stream_refine_ns: AtomicU64,
    /// Streaming ingestion: malformed delta lines rejected with a typed
    /// error.
    pub stream_malformed: AtomicU64,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (saturating at zero, so a stray double
    /// decrement cannot wrap the dump to u64::MAX).
    pub fn dec(gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Renders the `stats` text dump served over the wire protocol.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let batches = self.batches.load(Ordering::Relaxed);
        let jobs = self.batched_jobs.load(Ordering::Relaxed);
        let mean_batch = if batches == 0 {
            0.0
        } else {
            jobs as f64 / batches as f64
        };
        let _ = writeln!(
            out,
            "requests: submitted={} completed={} errors={} rejected_queue_full={}",
            self.submitted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.rejected_full.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "lifecycle: deadline_expired={} shed={} active_connections={}",
            self.deadline_expired.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.active_connections.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "conns: active={} opened={} rejected_conn_cap={} rejected_inflight={} accept_errors={}",
            self.active_connections.load(Ordering::Relaxed),
            self.conns_opened.load(Ordering::Relaxed),
            self.rejected_conn_cap.load(Ordering::Relaxed),
            self.rejected_inflight.load(Ordering::Relaxed),
            self.accept_errors.load(Ordering::Relaxed),
        );
        let _ = writeln!(out, "batches: count={batches} mean_size={mean_batch:.2}");
        let completed = self.completed.load(Ordering::Relaxed);
        let misses = self.pool_misses.load(Ordering::Relaxed);
        let allocs_per_request = if completed == 0 {
            0.0
        } else {
            misses as f64 / completed as f64
        };
        let _ = writeln!(
            out,
            "alloc: pool_hits={} pool_misses={misses} bytes_recycled={} allocs_per_request={allocs_per_request:.3}",
            self.pool_hits.load(Ordering::Relaxed),
            self.pool_bytes_recycled.load(Ordering::Relaxed),
        );
        let knn_queries = self.knn_queries.load(Ordering::Relaxed);
        let knn_ns = self.knn_query_ns.load(Ordering::Relaxed);
        let mean_query_ns = if knn_queries == 0 {
            0.0
        } else {
            knn_ns as f64 / knn_queries as f64
        };
        let _ = writeln!(
            out,
            "knn: queries={knn_queries} mean_query_ns={mean_query_ns:.0}"
        );
        let publishes = self.stream_publishes.load(Ordering::Relaxed);
        let refine_ns = self.stream_refine_ns.load(Ordering::Relaxed);
        let mean_refine_ns = if publishes == 0 {
            0.0
        } else {
            refine_ns as f64 / publishes as f64
        };
        let last_ms = self.stream_last_publish_unix_ms.load(Ordering::Relaxed);
        let age = if last_ms == 0 {
            "never".to_string()
        } else {
            let now_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            format!("{}ms", now_ms.saturating_sub(last_ms))
        };
        let _ = writeln!(
            out,
            "stream: deltas_applied={} duplicates_dropped={} entities_admitted={} publishes={publishes} last_publish_age={age} mean_refine_ns={mean_refine_ns:.0} malformed={}",
            self.stream_deltas_applied.load(Ordering::Relaxed),
            self.stream_duplicates_dropped.load(Ordering::Relaxed),
            self.stream_entities_admitted.load(Ordering::Relaxed),
            self.stream_malformed.load(Ordering::Relaxed),
        );
        self.queue_wait.render("queue_wait_us", &mut out);
        self.featurize.render("featurize_us", &mut out);
        self.forward.render("forward_us", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lands_in_correct_bucket() {
        let h = Histogram::default();
        h.record(40); // ≤ 50
        h.record(50); // ≤ 50 (inclusive)
        h.record(51); // ≤ 100
        h.record(2_000_000); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(*snap.buckets.last().unwrap(), 1);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_us, 40 + 50 + 51 + 2_000_000);
    }

    #[test]
    fn render_contains_counters_and_nonzero_buckets() {
        let m = Metrics::default();
        m.queue_wait.record(120);
        m.featurize.record(80);
        m.forward.record(900);
        Metrics::inc(&m.submitted);
        Metrics::inc(&m.completed);
        let text = m.render();
        assert!(text.contains("submitted=1"));
        assert!(text.contains("queue_wait_us: count=1"));
        assert!(
            text.contains("le_250us 1"),
            "120µs lands in le_250 bucket:\n{text}"
        );
        assert!(text.contains("forward_us: count=1"));
    }

    #[test]
    fn render_contains_lifecycle_counters() {
        let m = Metrics::default();
        Metrics::inc(&m.deadline_expired);
        Metrics::inc(&m.shed);
        Metrics::inc(&m.shed);
        Metrics::inc(&m.active_connections);
        let text = m.render();
        assert!(
            text.contains("lifecycle: deadline_expired=1 shed=2 active_connections=1"),
            "lifecycle line missing or wrong:\n{text}"
        );
    }

    #[test]
    fn render_contains_conns_line() {
        let m = Metrics::default();
        Metrics::inc(&m.active_connections);
        Metrics::inc(&m.conns_opened);
        Metrics::inc(&m.conns_opened);
        Metrics::inc(&m.rejected_conn_cap);
        Metrics::inc(&m.rejected_inflight);
        Metrics::inc(&m.rejected_inflight);
        Metrics::inc(&m.rejected_inflight);
        let text = m.render();
        assert!(
            text.contains(
                "conns: active=1 opened=2 rejected_conn_cap=1 rejected_inflight=3 accept_errors=0"
            ),
            "conns line missing or wrong:\n{text}"
        );
    }

    #[test]
    fn render_contains_knn_line() {
        let m = Metrics::default();
        assert!(m.render().contains("knn: queries=0 mean_query_ns=0"));
        Metrics::inc(&m.knn_queries);
        Metrics::inc(&m.knn_queries);
        m.knn_query_ns.fetch_add(3000, Ordering::Relaxed);
        assert!(
            m.render().contains("knn: queries=2 mean_query_ns=1500"),
            "knn line missing or wrong:\n{}",
            m.render()
        );
    }

    #[test]
    fn render_contains_stream_line() {
        let m = Metrics::default();
        assert!(
            m.render().contains(
                "stream: deltas_applied=0 duplicates_dropped=0 entities_admitted=0 publishes=0 last_publish_age=never mean_refine_ns=0 malformed=0"
            ),
            "stream line missing or wrong:\n{}",
            m.render()
        );
        m.stream_deltas_applied.fetch_add(3, Ordering::Relaxed);
        Metrics::inc(&m.stream_entities_admitted);
        Metrics::inc(&m.stream_publishes);
        m.stream_refine_ns.fetch_add(5000, Ordering::Relaxed);
        m.stream_last_publish_unix_ms.store(1, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("deltas_applied=3"), "{text}");
        assert!(text.contains("entities_admitted=1"), "{text}");
        assert!(text.contains("publishes=1"), "{text}");
        assert!(text.contains("mean_refine_ns=5000"), "{text}");
        assert!(!text.contains("last_publish_age=never"), "{text}");
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let m = Metrics::default();
        Metrics::dec(&m.active_connections);
        assert_eq!(m.active_connections.load(Ordering::Relaxed), 0);
        Metrics::inc(&m.active_connections);
        Metrics::dec(&m.active_connections);
        assert_eq!(m.active_connections.load(Ordering::Relaxed), 0);
    }
}
