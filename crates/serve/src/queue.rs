//! Bounded multi-producer/multi-consumer queue with batched dequeue.
//!
//! Built on `Mutex<VecDeque> + Condvar` so the whole engine stays std-only.
//! Producers never block: [`BoundedQueue::try_push`] fails fast when the
//! queue is at capacity (the engine's backpressure signal). Consumers call
//! [`BoundedQueue::pop_batch`], which blocks for the first item and then
//! coalesces up to `max` items arriving within a deadline — the micro-batch
//! window.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused; the rejected value is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue holds `capacity` items already.
    Full(T),
    /// [`BoundedQueue::close`] was called; no new work is accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. See the module docs for the contract.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BoundedQueue: capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue length (racy; for stats only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues a micro-batch.
    ///
    /// Blocks until at least one item is available, then keeps collecting
    /// until `max` items are held or `deadline` has elapsed since the first
    /// item was taken. Returns `None` only when the queue is closed *and*
    /// fully drained — so a consumer loop drains every queued item before
    /// exiting, which is what makes shutdown graceful.
    pub fn pop_batch(&self, max: usize, deadline: Duration) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.items.is_empty() {
                break;
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
        let mut out = Vec::with_capacity(max.min(inner.items.len()));
        let window_ends = Instant::now() + deadline;
        loop {
            while out.len() < max {
                match inner.items.pop_front() {
                    Some(item) => out.push(item),
                    None => break,
                }
            }
            if out.len() >= max || inner.closed {
                break;
            }
            let now = Instant::now();
            if now >= window_ends {
                break;
            }
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(inner, window_ends - now)
                .expect("queue poisoned");
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                break;
            }
        }
        Some(out)
    }

    /// Stops accepting new items and wakes all consumers. Already-queued
    /// items remain poppable until drained.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Removes and returns every still-queued item in FIFO order.
    ///
    /// This is the shutdown fail-fast path: after [`BoundedQueue::close`]
    /// and joining the consumers, anything a consumer never dequeued (no
    /// consumers configured, or a consumer died) is handed back so the
    /// caller can answer each item instead of leaving its producer blocked
    /// forever. Safe to call on an open queue too — it simply empties it.
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn full_queue_rejects_with_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn closed_queue_rejects_push_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop_batch(4, Duration::ZERO), Some(vec![1]));
        assert_eq!(q.pop_batch(4, Duration::ZERO), None);
    }

    #[test]
    fn batch_respects_max() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap().len(), 4);
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap().len(), 4);
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap().len(), 2);
    }

    #[test]
    fn pop_batch_coalesces_across_threads() {
        let q = Arc::new(BoundedQueue::new(64));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..8 {
                    q.try_push(i).unwrap();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 8 {
            got.extend(q.pop_batch(8, Duration::from_millis(50)).unwrap());
        }
        producer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn drain_remaining_empties_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.drain_remaining(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.drain_remaining(), Vec::<i32>::new());
        // Draining does not close: the queue keeps accepting work.
        q.try_push(9).unwrap();
        assert_eq!(q.drain_remaining(), vec![9]);
    }

    #[test]
    fn drain_remaining_after_close_returns_leftovers() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.drain_remaining(), vec![1, 2]);
        // A consumer arriving after the drain sees closed-and-empty.
        assert_eq!(q.pop_batch(4, Duration::ZERO), None);
    }

    #[test]
    fn close_releases_consumer_holding_partial_batch() {
        // A consumer holding a partial batch inside a long coalescing
        // window must return that partial batch promptly when the queue
        // closes, not sleep out the rest of the window.
        let q = Arc::new(BoundedQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(8, Duration::from_secs(30)))
        };
        q.try_push(7).unwrap();
        // Give the consumer time to take the item and enter the window.
        std::thread::sleep(Duration::from_millis(20));
        let closed_at = Instant::now();
        q.close();
        let batch = consumer.join().unwrap();
        assert_eq!(batch, Some(vec![7]));
        assert!(
            closed_at.elapsed() < Duration::from_secs(5),
            "close() must cut the coalescing window short"
        );
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_millis(1)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
