//! Self-contained serving artifacts (`.imrb` bundles).
//!
//! A trained [`ReModel`] alone cannot serve raw text: it speaks token ids
//! and entity ids. A [`Bundle`] freezes everything the request pipeline
//! needs next to the model — the vocabulary, the entity table (names +
//! coarse types), the relation names, and (for `*-MR` models) the LINE
//! entity embeddings — so one file is a complete, loadable serving unit.
//!
//! Layout (little-endian): magic, version, vocabulary words, entity table,
//! relation names, optional embedding matrix, then the model in the
//! existing `IMRM` format. Version 1 ends there; version 2 appends the
//! serving-time kNN index as a self-delimiting `IMRA` section
//! (`imre-ann`'s format, DESIGN.md §4g). A bundle without an index is
//! always written as version 1, so pre-kNN readers keep loading it —
//! version 2 is only emitted when there is genuinely new content an old
//! reader could not serve correctly by skipping.

use imre_ann::AnnIndex;
use imre_core::{read_model, write_model, ReModel};
use imre_corpus::{Vocab, World};
use imre_graph::EntityEmbedding;
use imre_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"IMRB";
/// Bundle without an ANN section (the only version pre-kNN readers accept).
pub const VERSION_V1: u32 = 1;
/// Bundle with a trailing ANN index section.
pub const VERSION_V2: u32 = 2;

/// A frozen serving artifact: model plus the lookup tables that turn raw
/// text and entity names into model inputs.
pub struct Bundle {
    /// Token vocabulary the model was trained with.
    pub vocab: Vocab,
    /// Entity table: `(surface name, coarse type ids)` indexed by entity id.
    pub entities: Vec<(String, Vec<usize>)>,
    /// Relation names indexed by relation id (index 0 is NA).
    pub relations: Vec<String>,
    /// LINE entity embeddings; required when the model uses the implicit
    /// mutual-relation component.
    pub embedding: Option<EntityEmbedding>,
    /// The trained model.
    pub model: ReModel,
    /// Optional kNN index over training-bag representations, enabling the
    /// serve-time label interpolation path (`knn=K lambda=L`).
    pub ann: Option<AnnIndex>,
}

impl Bundle {
    /// Assembles a bundle from a trained model and the world it was trained
    /// on. `embedding` must be given for `*-MR` models.
    pub fn new(
        model: ReModel,
        vocab: Vocab,
        world: &World,
        embedding: Option<EntityEmbedding>,
    ) -> Self {
        let entities = world
            .entities
            .iter()
            .map(|e| (e.name.clone(), e.types.iter().map(|t| t.0).collect()))
            .collect();
        let relations = world.relations.iter().map(|r| r.name.clone()).collect();
        Bundle {
            vocab,
            entities,
            relations,
            embedding,
            model,
            ann: None,
        }
    }

    /// Attaches a kNN index (built over the training bags' pooled
    /// representations via `ReModel::predict_repr_batch`). The bundle is
    /// then written as version 2.
    pub fn with_ann(mut self, ann: AnnIndex) -> Self {
        self.ann = Some(ann);
        self
    }

    /// Checks the cross-references between the tables and the model.
    ///
    /// # Errors
    /// With a description of the first inconsistency found.
    pub fn validate(&self) -> io::Result<()> {
        let fail = |msg: String| Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        if self.model.vocab_size() != self.vocab.len() {
            return fail(format!(
                "vocab size mismatch: model expects {}, bundle has {}",
                self.model.vocab_size(),
                self.vocab.len()
            ));
        }
        if self.model.num_relations() != self.relations.len() {
            return fail(format!(
                "relation count mismatch: model expects {}, bundle has {}",
                self.model.num_relations(),
                self.relations.len()
            ));
        }
        if self.model.spec.use_mr {
            match &self.embedding {
                None => {
                    return fail(
                        "model uses mutual relations but bundle has no entity embedding".into(),
                    )
                }
                Some(emb) => {
                    if emb.len() != self.entities.len() {
                        return fail(format!(
                            "embedding rows ({}) != entity count ({})",
                            emb.len(),
                            self.entities.len()
                        ));
                    }
                    if emb.dim() != self.model.entity_dim() {
                        return fail(format!(
                            "embedding dim ({}) != model entity dim ({})",
                            emb.dim(),
                            self.model.entity_dim()
                        ));
                    }
                }
            }
        }
        if self.model.spec.use_type {
            if let Some((name, tys)) = self
                .entities
                .iter()
                .find(|(_, tys)| tys.iter().any(|&t| t >= self.model.num_types()))
            {
                return fail(format!("entity {name:?} has type id {tys:?} out of range"));
            }
        }
        if let Some(ann) = &self.ann {
            if ann.dim() != self.model.sent_dim() {
                return fail(format!(
                    "ANN index dim ({}) != model sentence dim ({})",
                    ann.dim(),
                    self.model.sent_dim()
                ));
            }
            if let Some(&bad) = ann
                .labels()
                .iter()
                .find(|&&l| l as usize >= self.relations.len())
            {
                return fail(format!(
                    "ANN index labels a bag with relation {bad}, but the bundle has {} relations",
                    self.relations.len()
                ));
            }
        }
        Ok(())
    }
}

/// Writes a bundle to a writer.
pub fn write_bundle<W: Write>(bundle: &Bundle, w: &mut W) -> io::Result<()> {
    let version = if bundle.ann.is_some() {
        VERSION_V2
    } else {
        VERSION_V1
    };
    w.write_all(MAGIC)?;
    w.write_all(&version.to_le_bytes())?;
    // vocabulary (all words in id order, specials included)
    write_u64(w, bundle.vocab.len() as u64)?;
    for id in 0..bundle.vocab.len() {
        write_str(w, bundle.vocab.word(id))?;
    }
    // entity table
    write_u64(w, bundle.entities.len() as u64)?;
    for (name, types) in &bundle.entities {
        write_str(w, name)?;
        write_u64(w, types.len() as u64)?;
        for &t in types {
            write_u64(w, t as u64)?;
        }
    }
    // relation names
    write_u64(w, bundle.relations.len() as u64)?;
    for name in &bundle.relations {
        write_str(w, name)?;
    }
    // optional entity embedding
    match &bundle.embedding {
        None => w.write_all(&[0u8])?,
        Some(emb) => {
            w.write_all(&[1u8])?;
            let m = emb.matrix();
            write_u64(w, m.rows() as u64)?;
            write_u64(w, m.cols() as u64)?;
            for &x in m.data() {
                w.write_all(&x.to_le_bytes())?;
            }
        }
    }
    write_model(&bundle.model, w)?;
    if let Some(ann) = &bundle.ann {
        ann.write_to(w)?;
    }
    Ok(())
}

/// Reads a bundle written by [`write_bundle`] and validates it.
///
/// # Errors
/// On malformed input or inconsistent tables.
pub fn read_bundle<R: Read>(r: &mut R) -> io::Result<Bundle> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an IMRB bundle file",
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported IMRB version {version} (this reader supports 1-2)"),
        ));
    }
    let vocab_len = read_u64(r)? as usize;
    if vocab_len < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "vocabulary misses the special tokens",
        ));
    }
    let mut vocab = Vocab::new();
    for id in 0..vocab_len {
        let word = read_str(r)?;
        if id < 2 {
            // `Vocab::new` pre-interns <pad>/<unk>; just check they match.
            if vocab.word(id) != word {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "special token {id} is {word:?}, expected {:?}",
                        vocab.word(id)
                    ),
                ));
            }
        } else if vocab.intern(&word) != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("duplicate vocabulary word {word:?}"),
            ));
        }
    }
    let num_entities = read_u64(r)? as usize;
    let mut entities = Vec::with_capacity(num_entities);
    for _ in 0..num_entities {
        let name = read_str(r)?;
        let n_types = read_u64(r)? as usize;
        let mut types = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            types.push(read_u64(r)? as usize);
        }
        entities.push((name, types));
    }
    let num_relations = read_u64(r)? as usize;
    let mut relations = Vec::with_capacity(num_relations);
    for _ in 0..num_relations {
        relations.push(read_str(r)?);
    }
    let mut has_embedding = [0u8];
    r.read_exact(&mut has_embedding)?;
    let embedding = match has_embedding[0] {
        0 => None,
        1 => {
            let rows = read_u64(r)? as usize;
            let cols = read_u64(r)? as usize;
            let mut data = vec![0.0f32; rows * cols];
            for x in &mut data {
                let mut buf = [0u8; 4];
                r.read_exact(&mut buf)?;
                *x = f32::from_le_bytes(buf);
            }
            Some(EntityEmbedding::from_matrix(Tensor::from_vec(
                data,
                &[rows, cols],
            )))
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad embedding flag {other}"),
            ));
        }
    };
    let model = read_model(r)?;
    let ann = if version >= VERSION_V2 {
        Some(AnnIndex::read_from(r)?)
    } else {
        None
    };
    let bundle = Bundle {
        vocab,
        entities,
        relations,
        embedding,
        model,
        ann,
    };
    bundle.validate()?;
    Ok(bundle)
}

/// Saves a bundle to a file.
pub fn save_bundle(bundle: &Bundle, path: &Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_bundle(bundle, &mut file)
}

/// Loads a bundle from a file.
pub fn load_bundle(path: &Path) -> io::Result<Bundle> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    read_bundle(&mut file)
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible string length {len}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}
