//! Self-contained serving artifacts (`.imrb` bundles).
//!
//! A trained [`ReModel`] alone cannot serve raw text: it speaks token ids
//! and entity ids. A [`Bundle`] freezes everything the request pipeline
//! needs next to the model — the vocabulary, the entity table (names +
//! coarse types), the relation names, and (for `*-MR` models) the LINE
//! entity embeddings — so one file is a complete, loadable serving unit.
//!
//! Layout (little-endian): magic, version, vocabulary words, entity table,
//! relation names, optional embedding matrix, then the model in the
//! existing `IMRM` format. Version 1 ends there; version 2 appends the
//! serving-time kNN index as a self-delimiting `IMRA` section
//! (`imre-ann`'s format, DESIGN.md §4g). A bundle without an index is
//! always written as version 1, so pre-kNN readers keep loading it —
//! version 2 is only emitted when there is genuinely new content an old
//! reader could not serve correctly by skipping.
//!
//! **Version 3** (emitted only when a quantized model is attached) swaps
//! the stream layout for a *section table*: after the magic/version, a
//! directory of `{tag, offset, length, FNV-1a checksum}` entries points at
//! 64-byte-aligned sections — `META` (the v1 table stream), `MODL` (IMRM),
//! `QNT8` (int8 tables, [`crate::quantio`]), and optionally `IMRA` (the
//! aligned ANN layout). Aligned sections let [`load_bundle`] memory-map the
//! file and hand the int8 tables and ANN vectors to the model **zero-copy**
//! (`crate::mmap`), with the mapping's `Arc` dropped — and the pages
//! unmapped — only when the last borrower goes away. Reading a v3 bundle
//! from a generic stream still works; it simply owns all buffers. v1/v2
//! writing and loading are byte-for-byte unchanged.

use imre_ann::AnnIndex;
use imre_core::{read_model, write_model, QuantModel, ReModel};
use imre_corpus::{Vocab, World};
use imre_graph::EntityEmbedding;
use imre_tensor::Tensor;
use std::any::Any;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"IMRB";
/// Bundle without an ANN section (the only version pre-kNN readers accept).
pub const VERSION_V1: u32 = 1;
/// Bundle with a trailing ANN index section.
pub const VERSION_V2: u32 = 2;
/// Section-table bundle carrying a quantized model (and mmap-able payloads).
pub const VERSION_V3: u32 = 3;

/// File-offset alignment of every v3 section.
pub const SECTION_ALIGN: usize = 64;

const TAG_META: &[u8; 4] = b"META";
const TAG_MODL: &[u8; 4] = b"MODL";
const TAG_QNT8: &[u8; 4] = b"QNT8";
const TAG_IMRA: &[u8; 4] = b"IMRA";

/// Size of one v3 section-table entry: tag + offset + length + checksum.
const ENTRY_LEN: usize = 4 + 8 + 8 + 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A frozen serving artifact: model plus the lookup tables that turn raw
/// text and entity names into model inputs.
pub struct Bundle {
    /// Token vocabulary the model was trained with.
    pub vocab: Vocab,
    /// Entity table: `(surface name, coarse type ids)` indexed by entity id.
    pub entities: Vec<(String, Vec<usize>)>,
    /// Relation names indexed by relation id (index 0 is NA).
    pub relations: Vec<String>,
    /// LINE entity embeddings; required when the model uses the implicit
    /// mutual-relation component.
    pub embedding: Option<EntityEmbedding>,
    /// The trained model.
    pub model: ReModel,
    /// Optional kNN index over training-bag representations, enabling the
    /// serve-time label interpolation path (`knn=K lambda=L`).
    pub ann: Option<AnnIndex>,
    /// Optional int8 quantized snapshot of `model`; its presence switches
    /// the on-disk layout to version 3 and enables `--precision int8`.
    pub quant: Option<QuantModel>,
}

impl Bundle {
    /// Assembles a bundle from a trained model and the world it was trained
    /// on. `embedding` must be given for `*-MR` models.
    pub fn new(
        model: ReModel,
        vocab: Vocab,
        world: &World,
        embedding: Option<EntityEmbedding>,
    ) -> Self {
        let entities = world
            .entities
            .iter()
            .map(|e| (e.name.clone(), e.types.iter().map(|t| t.0).collect()))
            .collect();
        let relations = world.relations.iter().map(|r| r.name.clone()).collect();
        Bundle {
            vocab,
            entities,
            relations,
            embedding,
            model,
            ann: None,
            quant: None,
        }
    }

    /// Attaches a kNN index (built over the training bags' pooled
    /// representations via `ReModel::predict_repr_batch`). The bundle is
    /// then written as version 2 (or 3 if a quantized model is attached).
    pub fn with_ann(mut self, ann: AnnIndex) -> Self {
        self.ann = Some(ann);
        self
    }

    /// Attaches an int8 quantized snapshot of the model. The bundle is then
    /// written as version 3 (section table, mmap-able payloads).
    pub fn with_quant(mut self, quant: QuantModel) -> Self {
        self.quant = Some(quant);
        self
    }

    /// Checks the cross-references between the tables and the model.
    ///
    /// # Errors
    /// With a description of the first inconsistency found.
    pub fn validate(&self) -> io::Result<()> {
        let fail = |msg: String| Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        if self.model.vocab_size() != self.vocab.len() {
            return fail(format!(
                "vocab size mismatch: model expects {}, bundle has {}",
                self.model.vocab_size(),
                self.vocab.len()
            ));
        }
        if self.model.num_relations() != self.relations.len() {
            return fail(format!(
                "relation count mismatch: model expects {}, bundle has {}",
                self.model.num_relations(),
                self.relations.len()
            ));
        }
        if self.model.spec.use_mr {
            match &self.embedding {
                None => {
                    return fail(
                        "model uses mutual relations but bundle has no entity embedding".into(),
                    )
                }
                Some(emb) => {
                    if emb.len() != self.entities.len() {
                        return fail(format!(
                            "embedding rows ({}) != entity count ({})",
                            emb.len(),
                            self.entities.len()
                        ));
                    }
                    if emb.dim() != self.model.entity_dim() {
                        return fail(format!(
                            "embedding dim ({}) != model entity dim ({})",
                            emb.dim(),
                            self.model.entity_dim()
                        ));
                    }
                }
            }
        }
        if self.model.spec.use_type {
            if let Some((name, tys)) = self
                .entities
                .iter()
                .find(|(_, tys)| tys.iter().any(|&t| t >= self.model.num_types()))
            {
                return fail(format!("entity {name:?} has type id {tys:?} out of range"));
            }
        }
        if let Some(quant) = &self.quant {
            if quant.spec != self.model.spec {
                return fail("quantized model spec differs from the f32 model".into());
            }
            if quant.num_relations != self.model.num_relations() {
                return fail(format!(
                    "quantized model has {} relations, f32 model {}",
                    quant.num_relations,
                    self.model.num_relations()
                ));
            }
            quant.validate().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("quantized model: {e}"))
            })?;
        }
        if let Some(ann) = &self.ann {
            if ann.dim() != self.model.sent_dim() {
                return fail(format!(
                    "ANN index dim ({}) != model sentence dim ({})",
                    ann.dim(),
                    self.model.sent_dim()
                ));
            }
            if let Some(&bad) = ann
                .labels()
                .iter()
                .find(|&&l| l as usize >= self.relations.len())
            {
                return fail(format!(
                    "ANN index labels a bag with relation {bad}, but the bundle has {} relations",
                    self.relations.len()
                ));
            }
        }
        Ok(())
    }
}

/// Writes the vocabulary / entity / relation / embedding tables — the byte
/// stream shared by every bundle version (inline in v1/v2, the `META`
/// section in v3).
fn write_tables<W: Write>(bundle: &Bundle, w: &mut W) -> io::Result<()> {
    // vocabulary (all words in id order, specials included)
    write_u64(w, bundle.vocab.len() as u64)?;
    for id in 0..bundle.vocab.len() {
        write_str(w, bundle.vocab.word(id))?;
    }
    // entity table
    write_u64(w, bundle.entities.len() as u64)?;
    for (name, types) in &bundle.entities {
        write_str(w, name)?;
        write_u64(w, types.len() as u64)?;
        for &t in types {
            write_u64(w, t as u64)?;
        }
    }
    // relation names
    write_u64(w, bundle.relations.len() as u64)?;
    for name in &bundle.relations {
        write_str(w, name)?;
    }
    // optional entity embedding
    match &bundle.embedding {
        None => w.write_all(&[0u8])?,
        Some(emb) => {
            w.write_all(&[1u8])?;
            let m = emb.matrix();
            write_u64(w, m.rows() as u64)?;
            write_u64(w, m.cols() as u64)?;
            let mut bytes = Vec::with_capacity(4 * m.data().len());
            for &x in m.data() {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&bytes)?;
        }
    }
    Ok(())
}

/// Writes a bundle to a writer. Version is chosen by content: quantized
/// model → v3, ANN index only → v2, neither → v1 (v1/v2 bytes unchanged
/// from previous releases).
pub fn write_bundle<W: Write>(bundle: &Bundle, w: &mut W) -> io::Result<()> {
    if bundle.quant.is_some() {
        return write_bundle_v3(bundle, w);
    }
    let version = if bundle.ann.is_some() {
        VERSION_V2
    } else {
        VERSION_V1
    };
    w.write_all(MAGIC)?;
    w.write_all(&version.to_le_bytes())?;
    write_tables(bundle, w)?;
    write_model(&bundle.model, w)?;
    if let Some(ann) = &bundle.ann {
        ann.write_to(w)?;
    }
    Ok(())
}

/// v3: magic/version, section count, directory of
/// `{tag, offset u64, len u64, fnv1a u64}`, then the sections themselves at
/// 64-byte-aligned offsets with zero padding between.
fn write_bundle_v3<W: Write>(bundle: &Bundle, w: &mut W) -> io::Result<()> {
    let quant = bundle.quant.as_ref().expect("v3 writer needs quant");
    let mut sections: Vec<(&[u8; 4], Vec<u8>)> = Vec::new();
    let mut meta = Vec::new();
    write_tables(bundle, &mut meta)?;
    sections.push((TAG_META, meta));
    let mut modl = Vec::new();
    write_model(&bundle.model, &mut modl)?;
    sections.push((TAG_MODL, modl));
    sections.push((TAG_QNT8, crate::quantio::write_quant_section(quant)));
    if let Some(ann) = &bundle.ann {
        sections.push((TAG_IMRA, ann.write_aligned()));
    }

    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V3.to_le_bytes())?;
    w.write_all(&(sections.len() as u32).to_le_bytes())?;
    let header_len = 12 + ENTRY_LEN * sections.len();
    let mut offset = header_len.next_multiple_of(SECTION_ALIGN);
    for (tag, body) in &sections {
        w.write_all(*tag)?;
        write_u64(w, offset as u64)?;
        write_u64(w, body.len() as u64)?;
        write_u64(w, fnv1a(body))?;
        offset = (offset + body.len()).next_multiple_of(SECTION_ALIGN);
    }
    let mut pos = header_len;
    for (_, body) in &sections {
        let pad = pos.next_multiple_of(SECTION_ALIGN) - pos;
        w.write_all(&vec![0u8; pad])?;
        w.write_all(body)?;
        pos = pos + pad + body.len();
    }
    Ok(())
}

/// Reads the table stream written by [`write_tables`].
#[allow(clippy::type_complexity)]
fn read_tables<R: Read>(
    r: &mut R,
) -> io::Result<(
    Vocab,
    Vec<(String, Vec<usize>)>,
    Vec<String>,
    Option<EntityEmbedding>,
)> {
    let vocab_len = read_u64(r)? as usize;
    if vocab_len < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "vocabulary misses the special tokens",
        ));
    }
    let mut vocab = Vocab::new();
    for id in 0..vocab_len {
        let word = read_str(r)?;
        if id < 2 {
            // `Vocab::new` pre-interns <pad>/<unk>; just check they match.
            if vocab.word(id) != word {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "special token {id} is {word:?}, expected {:?}",
                        vocab.word(id)
                    ),
                ));
            }
        } else if vocab.intern(&word) != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("duplicate vocabulary word {word:?}"),
            ));
        }
    }
    let num_entities = read_u64(r)? as usize;
    let mut entities = Vec::with_capacity(num_entities);
    for _ in 0..num_entities {
        let name = read_str(r)?;
        let n_types = read_u64(r)? as usize;
        let mut types = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            types.push(read_u64(r)? as usize);
        }
        entities.push((name, types));
    }
    let num_relations = read_u64(r)? as usize;
    let mut relations = Vec::with_capacity(num_relations);
    for _ in 0..num_relations {
        relations.push(read_str(r)?);
    }
    let mut has_embedding = [0u8];
    r.read_exact(&mut has_embedding)?;
    let embedding = match has_embedding[0] {
        0 => None,
        1 => {
            let rows = read_u64(r)? as usize;
            let cols = read_u64(r)? as usize;
            let byte_len = rows
                .checked_mul(cols)
                .and_then(|n| n.checked_mul(4))
                .filter(|&n| n <= 1 << 32)
                .ok_or_else(|| bad("implausible embedding matrix size"))?;
            // One bulk read of the whole f32 payload — reading a float at a
            // time costs a `Read` dispatch per 4 bytes and dominated v1/v2
            // load time for real embedding tables.
            let mut bytes = vec![0u8; byte_len];
            r.read_exact(&mut bytes)?;
            let data: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|w| f32::from_le_bytes(w.try_into().unwrap()))
                .collect();
            Some(EntityEmbedding::from_matrix(Tensor::from_vec(
                data,
                &[rows, cols],
            )))
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad embedding flag {other}"),
            ));
        }
    };
    Ok((vocab, entities, relations, embedding))
}

/// Reads a bundle written by [`write_bundle`] and validates it.
///
/// Works for every version; a v3 stream is buffered in memory and parsed
/// through the owned path (use [`load_bundle`] for the zero-copy mmap
/// path).
///
/// # Errors
/// On malformed input or inconsistent tables.
pub fn read_bundle<R: Read>(r: &mut R) -> io::Result<Bundle> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an IMRB bundle file"));
    }
    let version = read_u32(r)?;
    match version {
        VERSION_V1 | VERSION_V2 => {
            let (vocab, entities, relations, embedding) = read_tables(r)?;
            let model = read_model(r)?;
            let ann = if version >= VERSION_V2 {
                Some(AnnIndex::read_from(r)?)
            } else {
                None
            };
            let bundle = Bundle {
                vocab,
                entities,
                relations,
                embedding,
                model,
                ann,
                quant: None,
            };
            bundle.validate()?;
            Ok(bundle)
        }
        VERSION_V3 => {
            // Rebuild the full file image so the directory's absolute
            // offsets stay meaningful, then parse owned.
            let mut full = Vec::new();
            full.extend_from_slice(MAGIC);
            full.extend_from_slice(&version.to_le_bytes());
            r.read_to_end(&mut full)?;
            parse_v3(&full, None)
        }
        other => Err(bad(format!(
            "unsupported IMRB version {other} (this reader supports 1-3)"
        ))),
    }
}

/// One parsed v3 directory entry.
struct Section {
    tag: [u8; 4],
    offset: usize,
    len: usize,
}

/// Parses a complete v3 file image. With `keep = Some(mapping)` the large
/// payloads (int8 tables, ANN vectors) borrow from `bytes` zero-copy and
/// hold the mapping alive; without, everything is copied into owned
/// buffers. Either way every section's FNV-1a checksum is verified first.
fn parse_v3(bytes: &[u8], keep: Option<Arc<dyn Any + Send + Sync>>) -> io::Result<Bundle> {
    if bytes.len() < 12 || &bytes[0..4] != MAGIC {
        return Err(bad("not an IMRB bundle file"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION_V3 {
        return Err(bad(format!("expected IMRB version 3, found {version}")));
    }
    let n = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    if !(3..=8).contains(&n) {
        return Err(bad(format!("implausible v3 section count {n}")));
    }
    let header_len = 12usize
        .checked_add(ENTRY_LEN.checked_mul(n).ok_or_else(|| bad("overflow"))?)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| bad("v3 section table truncated"))?;
    let mut sections = Vec::with_capacity(n);
    for i in 0..n {
        let e = &bytes[12 + i * ENTRY_LEN..12 + (i + 1) * ENTRY_LEN];
        let tag: [u8; 4] = e[0..4].try_into().unwrap();
        let offset = u64::from_le_bytes(e[4..12].try_into().unwrap());
        let len = u64::from_le_bytes(e[12..20].try_into().unwrap());
        let checksum = u64::from_le_bytes(e[20..28].try_into().unwrap());
        // All directory fields are untrusted: checked math end to end.
        let offset = usize::try_from(offset).map_err(|_| bad("section offset overflows"))?;
        let len = usize::try_from(len).map_err(|_| bad("section length overflows"))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| {
                bad(format!(
                    "section {} out of bounds",
                    String::from_utf8_lossy(&tag)
                ))
            })?;
        if offset < header_len || !offset.is_multiple_of(SECTION_ALIGN) {
            return Err(bad(format!(
                "section {} misaligned at offset {offset}",
                String::from_utf8_lossy(&tag)
            )));
        }
        if sections.iter().any(|s: &Section| s.tag == tag) {
            return Err(bad(format!(
                "duplicate section {}",
                String::from_utf8_lossy(&tag)
            )));
        }
        if fnv1a(&bytes[offset..end]) != checksum {
            return Err(bad(format!(
                "section {} checksum mismatch",
                String::from_utf8_lossy(&tag)
            )));
        }
        sections.push(Section { tag, offset, len });
    }
    let find = |tag: &[u8; 4]| -> Option<&[u8]> {
        sections
            .iter()
            .find(|s| &s.tag == tag)
            .map(|s| &bytes[s.offset..s.offset + s.len])
    };
    let meta = find(TAG_META).ok_or_else(|| bad("v3 bundle misses META section"))?;
    let modl = find(TAG_MODL).ok_or_else(|| bad("v3 bundle misses MODL section"))?;
    let qnt8 = find(TAG_QNT8).ok_or_else(|| bad("v3 bundle misses QNT8 section"))?;

    let mut meta_r = meta;
    let (vocab, entities, relations, embedding) = read_tables(&mut meta_r)?;
    if !meta_r.is_empty() {
        return Err(bad("META section has trailing bytes"));
    }
    let mut modl_r = modl;
    let model = read_model(&mut modl_r)?;
    if !modl_r.is_empty() {
        return Err(bad("MODL section has trailing bytes"));
    }
    let quant = crate::quantio::read_quant_section(qnt8, &model, keep.clone())?;
    let ann = match find(TAG_IMRA) {
        Some(sec) => Some(AnnIndex::read_aligned(sec, keep)?),
        None => None,
    };
    let bundle = Bundle {
        vocab,
        entities,
        relations,
        embedding,
        model,
        ann,
        quant: Some(quant),
    };
    bundle.validate()?;
    Ok(bundle)
}

/// Saves a bundle to a file.
pub fn save_bundle(bundle: &Bundle, path: &Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_bundle(bundle, &mut file)
}

/// Loads a bundle from a file.
///
/// v1/v2 files stream through the owned reader, byte-identically to
/// previous releases. A v3 file is **memory-mapped** (on Linux): the int8
/// tables and ANN vectors borrow the mapping zero-copy, and the pages stay
/// mapped until the last model/batch holding them drops — which is what
/// makes registry hot-swap a pointer swap.
pub fn load_bundle(path: &Path) -> io::Result<Bundle> {
    let file = std::fs::File::open(path)?;
    #[cfg(target_os = "linux")]
    {
        let mut head = [0u8; 8];
        use std::io::Read as _;
        (&file).read_exact(&mut head)?;
        if &head[0..4] == MAGIC && u32::from_le_bytes(head[4..8].try_into().unwrap()) == VERSION_V3
        {
            let map = Arc::new(crate::mmap::Mapping::of_file(&file)?);
            // SAFETY-free borrow: the slice lives as long as `map`, and
            // every borrower holds an `Arc<Mapping>` clone.
            let bytes: &[u8] = map.as_slice();
            // The borrow checker cannot see that `map` outlives the parse,
            // so extend the slice lifetime manually; the Arc keepalives
            // inside the parsed bundle uphold it.
            #[allow(unsafe_code)]
            let bytes: &'static [u8] =
                unsafe { std::slice::from_raw_parts(bytes.as_ptr(), bytes.len()) };
            return parse_v3(bytes, Some(map));
        }
        // Not v3: rewind by reopening through the buffered stream path.
    }
    drop(file);
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    read_bundle(&mut file)
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible string length {len}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}
