//! Single-threaded epoll readiness front end (Linux).
//!
//! One thread multiplexes every client connection: a nonblocking listener,
//! a wakeup pipe, and per-connection nonblocking sockets are registered on
//! one epoll instance (level-triggered). Request lines are framed
//! incrementally from a per-connection read buffer — a line split across
//! TCP segments, or a slow-loris client trickling bytes, parks state in
//! that buffer without holding a thread or stalling any other connection.
//!
//! Requests on one connection are pipelined: each parsed line gets a
//! sequence number and `infer` lines go to the engine through
//! [`ServeHandle::submit_with`] with a callback that pushes the answer onto
//! the shared completion queue and tickles the wakeup pipe. Micro-batches
//! complete out of order, so finished responses wait in a per-connection
//! reorder buffer until every earlier sequence number has flushed —
//! responses always leave in request order.
//!
//! Admission control happens in two places: at accept time (global
//! connection cap → `err server-busy`, socket closed) and at submit time
//! (per-connection in-flight cap → `err server-busy` for that request
//! only). Slow readers get backpressure instead of unbounded buffering:
//! once a connection's unflushed output exceeds a high-water mark, the loop
//! stops reading from it (drops `EPOLLIN` interest) until the backlog
//! drains.
//!
//! Stop semantics match the thread-per-connection front end:
//! [`crate::TcpServer::stop`] sets the flag and wakes the pipe; the loop
//! observes it within one wakeup (or one 50 ms safety tick), gives every
//! connection one greedy nonblocking flush, closes everything, and exits.
//! Completions that arrive for connections that no longer exist are
//! dropped — the engine's own shutdown drain still answers every queued
//! job, exactly as before.

use crate::engine::ServeHandle;
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::protocol::{
    classify_line, encode_lines, format_error, format_response, LineAction, Reply,
};
use crate::server::{reject_busy, FrontendConfig, ACCEPT_BACKOFF_MAX, ACCEPT_BACKOFF_MIN};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, OwnedFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Safety tick: the longest the loop sleeps in `epoll_wait` before
/// re-checking the stop flag, so `TcpServer::stop()` terminates within
/// roughly one tick even if the wakeup write itself were lost.
const TICK_MS: i32 = 50;

/// Events fetched per `epoll_wait`; level-triggered epoll re-reports
/// anything that did not fit on the next iteration.
const EVENTS_PER_WAIT: usize = 256;

/// Socket read chunk size (stack scratch, reused across connections).
const READ_CHUNK: usize = 16 * 1024;

/// Slow-reader backpressure: once a connection's unflushed output exceeds
/// this, the loop stops reading its requests until the backlog drains.
const OUT_HIGH_WATER: usize = 256 * 1024;

const DATA_LISTENER: u64 = 0;
const DATA_WAKER: u64 = 1;
const FIRST_CONN_ID: u64 = 2;

pub(crate) mod sys {
    //! Raw syscall bindings for epoll/pipe/rlimit — the workspace is
    //! std-only (no libc crate), so the handful of symbols the loop needs
    //! are declared here directly. The only arch-sensitive piece is
    //! `EpollEvent`'s layout, handled per-arch below.

    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};
    use std::os::raw::{c_int, c_void};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;
    const RLIMIT_NOFILE: c_int = 7;

    /// Mirrors the kernel's `struct epoll_event`, whose layout is
    /// arch-dependent: x86-64 packs it to 12 bytes (no padding between the
    /// 32-bit event mask and the 64-bit data word — a compatibility quirk
    /// inherited from the 32-bit ABI), while every other Linux arch uses
    /// the plain C layout of `{u32; u64}` (16 bytes on aarch64 and other
    /// 64-bit arches, which `repr(C)` reproduces exactly). Packing
    /// unconditionally would make `epoll_wait` on aarch64 write 16-byte
    /// entries into a 12-byte-stride buffer — out-of-bounds heap writes and
    /// events routed to the wrong connections — so the packing is gated on
    /// the target arch instead of assumed.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    // Layout guard for the one arch where we override the C ABI.
    #[cfg(target_arch = "x86_64")]
    const _: () = assert!(std::mem::size_of::<EpollEvent>() == 12);

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<OwnedFd> {
        // SAFETY: plain syscall; on success the returned fd is fresh and
        // exclusively ours to wrap.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    fn epoll_ctl_op(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        epoll_ctl_op(epfd, EPOLL_CTL_ADD, fd, events, data)
    }

    pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        epoll_ctl_op(epfd, EPOLL_CTL_MOD, fd, events, data)
    }

    pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL but must be non-null on
        // pre-2.6.9 kernels; pass a dummy.
        epoll_ctl_op(epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    pub fn epoll_wait_events(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        // SAFETY: `events` is a valid writable slice; the kernel fills at
        // most `events.len()` entries.
        let n = cvt(unsafe {
            epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
        })?;
        Ok(n as usize)
    }

    /// A nonblocking close-on-exec pipe; returns `(read_end, write_end)`.
    pub fn make_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid 2-element array for pipe2 to fill.
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        // SAFETY: on success both fds are fresh and exclusively ours.
        Ok(unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) })
    }

    pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: `buf` is a valid writable slice of the stated length.
        let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
        // SAFETY: `buf` is a valid readable slice of the stated length.
        let n = unsafe { write(fd, buf.as_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    /// Raises the process soft `RLIMIT_NOFILE` toward `want` file
    /// descriptors, lifting the hard limit too when the process may (e.g.
    /// root). Returns the soft limit actually in effect afterwards, which
    /// may be lower than `want` in unprivileged processes.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: `lim` is a valid RLimit for the kernel to fill.
        cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        let raised = RLimit {
            cur: want,
            max: lim.max.max(want),
        };
        // SAFETY: `raised` is a valid RLimit; the kernel copies it.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(raised.cur);
        }
        // Raising the hard limit needs privileges: settle for the hard cap.
        let capped = RLimit {
            cur: lim.max.min(want).max(lim.cur),
            max: lim.max,
        };
        // SAFETY: as above.
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &capped) })?;
        Ok(capped.cur)
    }
}

/// Raises the process soft fd limit toward `want` descriptors (hard limit
/// too when privileged); returns the soft limit in effect afterwards.
/// Exposed for connection-scale harnesses — a 10k-connection sweep needs
/// ~2×10k fds in one process (server + client side).
///
/// # Errors
/// When `getrlimit`/`setrlimit` fail outright.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    sys::raise_nofile_limit(want)
}

/// Wakes the event loop from any thread by writing one byte into its pipe.
pub(crate) struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Makes the loop's next `epoll_wait` return promptly. Best-effort by
    /// design: a full pipe already guarantees a pending wakeup, and `EPIPE`
    /// after the loop exited means nobody is left to wake.
    pub(crate) fn wake(&self) {
        let _ = sys::write_fd(self.fd.as_raw_fd(), &[1]);
    }
}

/// One finished engine request, routed back to `(connection, sequence)`.
struct Completion {
    conn: u64,
    seq: u64,
    result: Result<crate::pipeline::InferResponse, ServeError>,
}

/// Shared funnel from worker threads back into the loop: push the answer,
/// wake the pipe (only on the empty→non-empty transition — the loop drains
/// the whole queue per wakeup, so one byte covers any number of pushes).
struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

impl Completions {
    fn push(&self, c: Completion) {
        let was_empty = {
            let mut q = self.queue.lock().expect("completion queue poisoned");
            let was_empty = q.is_empty();
            q.push(c);
            was_empty
        };
        if was_empty {
            self.waker.wake();
        }
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// A finished response waiting for its turn in sequence order.
struct DoneReply {
    bytes: Vec<u8>,
    close_after: bool,
}

/// Per-connection state: framing buffer in, ordered responses out.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed into complete lines.
    rbuf: Vec<u8>,
    /// Where the newline scan resumes (everything before it was scanned),
    /// so a slowly-trickled long line costs O(bytes), not O(bytes²).
    scan_from: usize,
    /// Encoded responses not yet fully written to the socket…
    out: Vec<u8>,
    /// …and how much of the front of `out` already went out.
    out_pos: usize,
    /// Sequence number the next parsed request line will get.
    next_seq: u64,
    /// Next sequence number allowed to flush: pipelined responses leave in
    /// request order even though micro-batches complete out of order.
    flush_seq: u64,
    /// Out-of-order completions parked until `flush_seq` reaches them.
    done: BTreeMap<u64, DoneReply>,
    /// Requests currently submitted to the engine.
    inflight: usize,
    /// No more request intake (EOF, `quit`, oversized line); the
    /// connection closes once everything in flight has flushed.
    read_closed: bool,
    /// Close as soon as `out` drains (a `quit` or fatal protocol error
    /// reached the front of the response stream).
    close_after_flush: bool,
    /// Currently registered epoll interest, to skip redundant MODs.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, interest: u32) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            scan_from: 0,
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            flush_seq: 0,
            done: BTreeMap::new(),
            inflight: 0,
            read_closed: false,
            close_after_flush: false,
            interest,
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// What to do with a connection after an I/O pass.
#[derive(PartialEq)]
enum After {
    Keep,
    Close,
}

/// Running event-loop thread plus the handle used to wake it.
pub(crate) struct EventLoopHandles {
    pub(crate) waker: Arc<Waker>,
    pub(crate) thread: JoinHandle<()>,
}

/// Binds the loop's epoll instance and wakeup pipe and spawns its thread.
pub(crate) fn start(
    listener: TcpListener,
    handle: ServeHandle,
    cfg: FrontendConfig,
    stop: Arc<AtomicBool>,
) -> io::Result<EventLoopHandles> {
    let (wake_rx, wake_tx) = sys::make_pipe()?;
    let waker = Arc::new(Waker { fd: wake_tx });
    let epfd = sys::epoll_create()?;
    sys::epoll_add(
        epfd.as_raw_fd(),
        listener.as_raw_fd(),
        sys::EPOLLIN,
        DATA_LISTENER,
    )?;
    sys::epoll_add(
        epfd.as_raw_fd(),
        wake_rx.as_raw_fd(),
        sys::EPOLLIN,
        DATA_WAKER,
    )?;
    let completions = Arc::new(Completions {
        queue: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
    });
    let mut el = EventLoop {
        epfd,
        wake_rx,
        listener,
        handle,
        cfg,
        stop,
        completions,
        conns: BTreeMap::new(),
        next_id: FIRST_CONN_ID,
        accept_paused_until: None,
        accept_backoff: ACCEPT_BACKOFF_MIN,
    };
    let thread = std::thread::Builder::new()
        .name("imre-serve-epoll".to_string())
        .spawn(move || el.run())?;
    Ok(EventLoopHandles { waker, thread })
}

struct EventLoop {
    epfd: OwnedFd,
    wake_rx: OwnedFd,
    listener: TcpListener,
    handle: ServeHandle,
    cfg: FrontendConfig,
    stop: Arc<AtomicBool>,
    completions: Arc<Completions>,
    /// Sorted map, not a hash map: shutdown iteration (and with it the
    /// order of final flushes) stays deterministic run to run.
    conns: BTreeMap<u64, Conn>,
    next_id: u64,
    /// While `Some`, the listener is deregistered and accepting resumes at
    /// the stored instant (accept-error backoff without sleeping the loop).
    accept_paused_until: Option<Instant>,
    accept_backoff: Duration,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENTS_PER_WAIT];
        while !self.stop.load(Ordering::SeqCst) {
            let n = match sys::epoll_wait_events(
                self.epfd.as_raw_fd(),
                &mut events,
                self.wait_timeout_ms(),
            ) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                // The epoll fd itself failing is unrecoverable; fall
                // through to the shutdown drain.
                Err(_) => break,
            };
            let mut accept_ready = false;
            for ev in events.iter().take(n) {
                let (mask, data) = (ev.events, ev.data);
                match data {
                    DATA_LISTENER => accept_ready = true,
                    DATA_WAKER => self.drain_wake_pipe(),
                    id => self.on_conn_event(id, mask),
                }
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            self.deliver_completions();
            self.maybe_resume_accept();
            if accept_ready && self.accept_paused_until.is_none() {
                self.accept_burst();
            }
        }
        self.shutdown_conns();
    }

    fn wait_timeout_ms(&self) -> i32 {
        match self.accept_paused_until {
            Some(resume) => {
                let left = resume.saturating_duration_since(Instant::now());
                (left.as_millis() as i32 + 1).min(TICK_MS)
            }
            None => TICK_MS,
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match sys::read_fd(self.wake_rx.as_raw_fd(), &mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    let metrics = self.handle.metrics();
                    if self.conns.len() >= self.cfg.max_connections {
                        Metrics::inc(&metrics.rejected_conn_cap);
                        reject_busy(&stream, self.cfg.max_connections);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_id;
                    let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                    if sys::epoll_add(self.epfd.as_raw_fd(), stream.as_raw_fd(), interest, id)
                        .is_err()
                    {
                        // Registration failing is a resource problem, same
                        // as hitting the cap from the client's view.
                        Metrics::inc(&metrics.rejected_conn_cap);
                        reject_busy(&stream, self.cfg.max_connections);
                        continue;
                    }
                    self.next_id += 1;
                    Metrics::inc(&metrics.active_connections);
                    Metrics::inc(&metrics.conns_opened);
                    self.conns.insert(id, Conn::new(stream, interest));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE-style accept failure: deregister the listener
                    // and resume after an exponential backoff instead of
                    // spinning on a level-triggered error.
                    Metrics::inc(&self.handle.metrics().accept_errors);
                    let _ = sys::epoll_del(self.epfd.as_raw_fd(), self.listener.as_raw_fd());
                    self.accept_paused_until = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    break;
                }
            }
        }
    }

    fn maybe_resume_accept(&mut self) {
        if let Some(resume) = self.accept_paused_until {
            if Instant::now() >= resume {
                self.accept_paused_until = None;
                let _ = sys::epoll_add(
                    self.epfd.as_raw_fd(),
                    self.listener.as_raw_fd(),
                    sys::EPOLLIN,
                    DATA_LISTENER,
                );
            }
        }
    }

    fn on_conn_event(&mut self, id: u64, mask: u32) {
        // A connection closed earlier in this same event batch can leave a
        // stale event behind.
        if !self.conns.contains_key(&id) {
            return;
        }
        if mask & sys::EPOLLERR != 0 {
            self.close_conn(id);
            return;
        }
        if mask & sys::EPOLLOUT != 0 && !self.flush_conn(id) {
            return;
        }
        if mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
            self.read_conn(id);
        }
    }

    /// Reads everything currently available on `id`, framing and
    /// dispatching complete request lines as they appear.
    fn read_conn(&mut self, id: u64) {
        let EventLoop {
            conns,
            handle,
            cfg,
            completions,
            ..
        } = self;
        let Some(conn) = conns.get_mut(&id) else {
            return;
        };
        let mut scratch = [0u8; READ_CHUNK];
        let after = loop {
            if conn.read_closed || conn.backlog() >= OUT_HIGH_WATER {
                break After::Keep;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // Peer finished sending (EOF or half-close). Anything
                    // already submitted still gets answered and flushed.
                    conn.read_closed = true;
                    break After::Keep;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&scratch[..n]);
                    process_input(conn, id, handle, cfg, completions);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break After::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break After::Close,
            }
        };
        if after == After::Close {
            self.close_conn(id);
        } else {
            self.flush_conn(id);
        }
    }

    /// Writes as much buffered output as the socket takes. Returns `false`
    /// when the connection was closed (fatal write error, or an orderly
    /// close once everything owed was flushed).
    fn flush_conn(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return false;
        };
        match flush_into_socket(conn) {
            After::Close => {
                self.close_conn(id);
                false
            }
            After::Keep => {
                self.update_interest(id);
                true
            }
        }
    }

    /// Re-registers the connection's epoll interest from its state: read
    /// while intake is open and the backlog is under the high-water mark,
    /// write while output is pending.
    fn update_interest(&mut self, id: u64) {
        let epfd = self.epfd.as_raw_fd();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut want = sys::EPOLLRDHUP;
        if !conn.read_closed && conn.backlog() < OUT_HIGH_WATER {
            want |= sys::EPOLLIN;
        }
        if conn.backlog() > 0 {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest && sys::epoll_mod(epfd, conn.stream.as_raw_fd(), want, id).is_ok()
        {
            conn.interest = want;
        }
    }

    /// Routes finished engine requests back onto their connections and
    /// flushes each touched connection once.
    fn deliver_completions(&mut self) {
        let batch = self.completions.drain();
        if batch.is_empty() {
            return;
        }
        let mut touched: Vec<u64> = Vec::with_capacity(batch.len());
        for c in batch {
            // The client may have vanished mid-request; its answer has
            // nowhere to go, which is exactly the disconnect semantics the
            // threaded front end had (reply into a dropped channel).
            let Some(conn) = self.conns.get_mut(&c.conn) else {
                continue;
            };
            conn.inflight = conn.inflight.saturating_sub(1);
            let line = match &c.result {
                Ok(resp) => format_response(resp),
                Err(e) => format_error(e),
            };
            complete(conn, c.seq, encode_lines(&[line]), false);
            touched.push(c.conn);
        }
        touched.sort_unstable();
        touched.dedup();
        for id in touched {
            self.flush_conn(id);
        }
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = sys::epoll_del(self.epfd.as_raw_fd(), conn.stream.as_raw_fd());
            Metrics::dec(&self.handle.metrics().active_connections);
            // Dropping `conn.stream` closes the fd.
        }
    }

    /// Stop-path drain: one greedy nonblocking flush per connection, then
    /// close everything. In-flight answers that complete later find no
    /// connection and are dropped (fail-fast, same as PR 3's stop).
    fn shutdown_conns(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(conn) = self.conns.get_mut(&id) {
                let _ = flush_into_socket(conn);
            }
            self.close_conn(id);
        }
    }
}

fn flush_into_socket(conn: &mut Conn) -> After {
    loop {
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            break;
        }
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return After::Close,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return After::Close,
        }
    }
    let owes_nothing = conn.inflight == 0 && conn.done.is_empty();
    if conn.out.is_empty() && (conn.close_after_flush || (conn.read_closed && owes_nothing)) {
        After::Close
    } else {
        After::Keep
    }
}

/// Frames complete lines out of the connection's read buffer and
/// dispatches each one. Oversized lines — complete or still growing — get
/// a typed `bad-request` and close the connection after pending responses
/// flush, so a hostile client cannot grow the buffer without bound.
fn process_input(
    conn: &mut Conn,
    id: u64,
    handle: &ServeHandle,
    cfg: &FrontendConfig,
    completions: &Arc<Completions>,
) {
    let mut consumed = 0usize;
    while !conn.read_closed {
        let Some(rel) = conn.rbuf[conn.scan_from..].iter().position(|&b| b == b'\n') else {
            conn.scan_from = conn.rbuf.len();
            break;
        };
        let end = conn.scan_from + rel;
        if end - consumed > cfg.max_line_bytes {
            reject_oversized(conn, cfg);
            break;
        }
        let line = String::from_utf8_lossy(&conn.rbuf[consumed..end]).into_owned();
        consumed = end + 1;
        conn.scan_from = consumed;
        handle_request_line(conn, id, &line, handle, cfg, completions);
    }
    if conn.read_closed {
        conn.rbuf.clear();
        conn.scan_from = 0;
        return;
    }
    conn.rbuf.drain(..consumed);
    conn.scan_from -= consumed;
    if conn.rbuf.len() > cfg.max_line_bytes {
        reject_oversized(conn, cfg);
    }
}

fn reject_oversized(conn: &mut Conn, cfg: &FrontendConfig) {
    let err = ServeError::BadRequest(format!("request line exceeds {} bytes", cfg.max_line_bytes));
    let seq = conn.next_seq;
    conn.next_seq += 1;
    complete(conn, seq, encode_lines(&[format_error(&err)]), true);
    conn.read_closed = true;
}

/// Classifies and resolves one request line at sequence number `seq`:
/// immediate commands complete on the spot, `infer` goes to the engine
/// under the per-connection in-flight cap.
fn handle_request_line(
    conn: &mut Conn,
    id: u64,
    line: &str,
    handle: &ServeHandle,
    cfg: &FrontendConfig,
    completions: &Arc<Completions>,
) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    match classify_line(handle, line) {
        LineAction::Respond(Reply::Quit) => {
            // Stop intake now; earlier pipelined responses still flush,
            // then the connection closes (no reply for `quit` itself).
            conn.read_closed = true;
            complete(conn, seq, Vec::new(), true);
        }
        LineAction::Respond(Reply::Lines(lines)) => {
            complete(conn, seq, encode_lines(&lines), false);
        }
        LineAction::Submit(req) => {
            if conn.inflight >= cfg.max_inflight_per_conn {
                Metrics::inc(&handle.metrics().rejected_inflight);
                let e = ServeError::ServerBusy {
                    what: "in-flight",
                    limit: cfg.max_inflight_per_conn,
                };
                complete(conn, seq, encode_lines(&[format_error(&e)]), false);
                return;
            }
            let comp = Arc::clone(completions);
            let submitted = handle.submit_with(req, move |result| {
                comp.push(Completion {
                    conn: id,
                    seq,
                    result,
                });
            });
            match submitted {
                Ok(()) => conn.inflight += 1,
                // Rejected at the queue (full / shutting down): the
                // callback was not invoked, answer here.
                Err(e) => complete(conn, seq, encode_lines(&[format_error(&e)]), false),
            }
        }
    }
}

/// Lands the finished response for `seq`, then moves every consecutively
/// finished response (in `flush_seq` order) into the output buffer —
/// pipelined responses leave in request order no matter how the engine
/// reordered their completions.
fn complete(conn: &mut Conn, seq: u64, bytes: Vec<u8>, close_after: bool) {
    conn.done.insert(seq, DoneReply { bytes, close_after });
    while let Some(reply) = conn.done.remove(&conn.flush_seq) {
        conn.flush_seq += 1;
        conn.out.extend_from_slice(&reply.bytes);
        if reply.close_after {
            conn.close_after_flush = true;
            conn.read_closed = true;
            // Anything sequenced after a close point is moot.
            conn.done.clear();
            break;
        }
    }
}
