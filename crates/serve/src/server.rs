//! TCP front-end: line-delimited protocol over `std::net::TcpListener`.
//!
//! The accept loop runs on its own thread with a non-blocking listener
//! polled against a stop flag; each connection gets a thread running the
//! [`crate::protocol`] dispatch. Connections are stop-aware: every accepted
//! stream carries a read timeout, so a connection thread blocked waiting
//! for a request wakes at least every [`READ_POLL`] to check the shared
//! stop flag — an idle client can never pin a thread forever.
//! [`TcpServer::stop`] flips the flag, joins the accept loop (which in turn
//! joins every connection thread it spawned — a drain bounded by the read
//! timeout), and the engine's request intake is shut via the shared
//! [`ServeHandle`] semantics.
//!
//! The engine's [`crate::metrics::Metrics::active_connections`] gauge
//! tracks the number of currently open connections; it is incremented when
//! a connection thread starts and decremented when it exits (on any path,
//! including panics, via a drop guard).

use crate::engine::ServeHandle;
use crate::metrics::Metrics;
use crate::protocol::{handle_line, Reply};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Accept-error backoff bounds: the first EMFILE/ENFILE-style failure waits
/// `ACCEPT_BACKOFF_MIN`, doubling per consecutive failure up to the max, so
/// fd exhaustion never turns the accept loop into a hot error spin.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Reap finished connection handles whenever the live list reaches this
/// floor (and thereafter a doubling watermark), keeping the reap cost
/// amortized O(1) per accepted connection.
const REAP_WATERMARK_MIN: usize = 64;

/// How long a connection thread blocks in a read before re-checking the
/// stop flag. This bounds how stale a [`TcpServer::stop`] can find any
/// connection thread: every one notices the flag within one `READ_POLL`.
pub const READ_POLL: Duration = Duration::from_millis(50);

/// A running TCP front-end.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port) and
    /// starts serving the engine behind `handle`.
    ///
    /// # Errors
    /// When the address cannot be bound.
    pub fn spawn(handle: ServeHandle, addr: &str) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("imre-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &handle, &stop))
                .expect("spawn accept thread")
        };
        Ok(TcpServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections and joins the accept loop, which joins
    /// every connection thread before exiting. Connection threads poll the
    /// stop flag at least every [`READ_POLL`], so the whole drain is
    /// bounded by roughly one read-timeout tick even when clients are idle
    /// or mid-request. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Decrements the active-connection gauge when a connection thread exits,
/// on every path (clean close, I/O error, panic).
struct ConnectionGuard {
    handle: ServeHandle,
}

impl ConnectionGuard {
    fn new(handle: ServeHandle) -> ConnectionGuard {
        Metrics::inc(&handle.metrics().active_connections);
        Metrics::inc(&handle.metrics().conns_opened);
        ConnectionGuard { handle }
    }
}

/// Tells a connection the server cannot take it right now, then closes it.
/// Best-effort: the peer may already be gone, and we never block the accept
/// path on a slow receiver.
fn reject_busy(stream: &TcpStream, limit: usize) {
    let err = crate::error::ServeError::ServerBusy {
        what: "connections",
        limit,
    };
    let line = format!("{}\n\n", crate::protocol::format_error(&err));
    stream.set_nonblocking(true).ok();
    let _ = (&*stream).write_all(line.as_bytes());
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        Metrics::dec(&self.handle.metrics().active_connections);
    }
}

fn accept_loop(listener: &TcpListener, handle: &ServeHandle, stop: &Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    // Doubling watermark: reap whenever the handle list reaches it, then
    // reset it to twice the number of live handles. A server under sustained
    // accept traffic never hits the idle (WouldBlock) branch, so reaping
    // must not depend on it — without this, one handle leaks per connection
    // for the lifetime of the server.
    let mut reap_at = REAP_WATERMARK_MIN;
    let mut backoff = ACCEPT_BACKOFF_MIN;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                if connections.len() >= reap_at {
                    connections.retain(|h| !h.is_finished());
                    reap_at = (connections.len() * 2).max(REAP_WATERMARK_MIN);
                }
                // The stream is shared so that a failed spawn can still
                // answer the client instead of silently dropping the
                // accepted socket.
                let stream = Arc::new(stream);
                let conn_stream = Arc::clone(&stream);
                let conn_handle = handle.clone();
                let conn_stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("imre-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = ConnectionGuard::new(conn_handle.clone());
                        let _ = serve_connection(&conn_stream, &conn_handle, &conn_stop);
                    });
                match spawned {
                    Ok(h) => connections.push(h),
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion): tell
                        // the client we are overloaded, count it, and back
                        // off before accepting more.
                        Metrics::inc(&handle.metrics().rejected_conn_cap);
                        reject_busy(&stream, connections.len());
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Idle: reap finished connection threads and poll the stop
                // flag again.
                connections.retain(|h| !h.is_finished());
                reap_at = (connections.len() * 2).max(REAP_WATERMARK_MIN);
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Real accept failure (EMFILE/ENFILE under fd pressure):
                // count it and back off exponentially rather than spinning
                // on an error that will not clear instantly.
                Metrics::inc(&handle.metrics().accept_errors);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
    // Bounded drain: every connection thread sees the stop flag within one
    // READ_POLL tick and exits, so these joins complete promptly.
    for h in connections {
        let _ = h.join();
    }
}

fn serve_connection(stream: &TcpStream, handle: &ServeHandle, stop: &AtomicBool) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = stream;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // peer closed
            Ok(_) => {}
            // Read timeout (reported as WouldBlock or TimedOut depending on
            // platform): keep any partial line already buffered and poll
            // the stop flag again.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        match handle_line(handle, &line) {
            Reply::Quit => return Ok(()),
            Reply::Lines(lines) => {
                let mut out = String::new();
                for l in &lines {
                    out.push_str(l);
                    out.push('\n');
                }
                out.push('\n'); // empty terminator line
                writer.write_all(out.as_bytes())?;
                writer.flush()?;
            }
        }
        line.clear();
    }
}
