//! TCP front-end: line-delimited protocol over `std::net::TcpListener`.
//!
//! Two interchangeable front-end implementations sit behind [`TcpServer`]:
//!
//! - **Event loop** (default on Linux): a single thread multiplexes every
//!   connection over epoll — nonblocking sockets, incremental line
//!   framing, pipelined requests with ordered responses, and admission
//!   control. See [`crate::eventloop`]. This is the connection-scale path:
//!   10k idle clients cost 10k sockets, not 10k threads.
//! - **Thread-per-connection** (fallback and non-Linux path): the accept
//!   loop spawns one thread per client running the [`crate::protocol`]
//!   dispatch, with read timeouts bounding how stale a stop can find any
//!   connection thread.
//!
//! Both enforce [`FrontendConfig`]'s global connection cap (typed
//! `server-busy` reject at accept) and oversized-line bound (typed
//! `bad-request`), and both deliver the same stop semantics:
//! [`TcpServer::stop`] terminates within roughly one poll tick, flushing
//! or fail-fasting whatever was in flight.
//!
//! The engine's [`crate::metrics::Metrics::active_connections`] gauge
//! tracks currently open connections on either path; `conns_opened` and
//! the rejection counters feed the `conns:` stats line.

use crate::engine::ServeHandle;
use crate::metrics::Metrics;
use crate::protocol::{encode_lines, format_error, handle_line, Reply};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Accept-error backoff bounds: the first EMFILE/ENFILE-style failure waits
/// `ACCEPT_BACKOFF_MIN`, doubling per consecutive failure up to the max, so
/// fd exhaustion never turns the accept loop into a hot error spin.
pub(crate) const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
pub(crate) const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Reap finished connection handles whenever the live list reaches this
/// floor (and thereafter a doubling watermark), keeping the reap cost
/// amortized O(1) per accepted connection.
const REAP_WATERMARK_MIN: usize = 64;

/// How long a connection thread blocks in a read before re-checking the
/// stop flag. This bounds how stale a [`TcpServer::stop`] can find any
/// connection thread: every one notices the flag within one `READ_POLL`.
pub const READ_POLL: Duration = Duration::from_millis(50);

/// Which accept/connection implementation [`TcpServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendKind {
    /// The epoll event loop on Linux, thread-per-connection elsewhere.
    /// `IMRE_SERVE_FRONTEND=threads|epoll` overrides the choice (useful
    /// for A/B benchmarks and for exercising both paths in CI).
    Auto,
    /// The single-threaded epoll readiness loop (Linux only; spawning
    /// fails with [`io::ErrorKind::Unsupported`] elsewhere).
    EventLoop,
    /// The thread-per-connection loop.
    Threads,
}

impl FrontendKind {
    fn resolve(self) -> FrontendKind {
        match self {
            FrontendKind::Auto => match std::env::var("IMRE_SERVE_FRONTEND").as_deref() {
                Ok("threads") => FrontendKind::Threads,
                Ok("epoll") => FrontendKind::EventLoop,
                _ if cfg!(target_os = "linux") => FrontendKind::EventLoop,
                _ => FrontendKind::Threads,
            },
            other => other,
        }
    }
}

/// Front-end tuning knobs (the engine has its own
/// [`crate::engine::EngineConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Which front-end implementation to run.
    pub frontend: FrontendKind,
    /// Global cap on concurrently open connections; arrivals beyond it are
    /// answered `err server-busy` and closed at accept time.
    pub max_connections: usize,
    /// Maximum pipelined requests one connection may have in the engine at
    /// once (event loop only — the threaded path reads one request at a
    /// time, so it can never exceed 1). Further `infer` lines are answered
    /// `err server-busy` without touching the queue.
    pub max_inflight_per_conn: usize,
    /// Longest request line accepted before the connection is answered
    /// `err bad-request` and closed — bounds per-connection buffer growth
    /// against hostile or broken clients.
    pub max_line_bytes: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            frontend: FrontendKind::Auto,
            max_connections: 1024,
            max_inflight_per_conn: 32,
            max_line_bytes: 64 * 1024,
        }
    }
}

/// A running TCP front-end.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    #[cfg(target_os = "linux")]
    waker: Option<Arc<crate::eventloop::Waker>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port) and
    /// starts serving the engine behind `handle` with default front-end
    /// limits ([`FrontendConfig::default`]).
    ///
    /// # Errors
    /// When the address cannot be bound.
    pub fn spawn(handle: ServeHandle, addr: &str) -> io::Result<TcpServer> {
        TcpServer::spawn_with(handle, addr, FrontendConfig::default())
    }

    /// [`TcpServer::spawn`] with explicit front-end selection and limits.
    ///
    /// # Errors
    /// When the address cannot be bound, or [`FrontendKind::EventLoop`] is
    /// requested off Linux ([`io::ErrorKind::Unsupported`]).
    pub fn spawn_with(
        handle: ServeHandle,
        addr: &str,
        cfg: FrontendConfig,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        match cfg.frontend.resolve() {
            FrontendKind::EventLoop => {
                #[cfg(target_os = "linux")]
                {
                    let parts = crate::eventloop::start(listener, handle, cfg, Arc::clone(&stop))?;
                    Ok(TcpServer {
                        local_addr,
                        stop,
                        waker: Some(parts.waker),
                        accept_thread: Some(parts.thread),
                    })
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "the epoll front end requires linux; use FrontendKind::Threads",
                    ))
                }
            }
            _ => {
                let accept_thread = {
                    let stop = Arc::clone(&stop);
                    std::thread::Builder::new()
                        .name("imre-serve-accept".to_string())
                        .spawn(move || accept_loop(&listener, &handle, &stop, &cfg))
                        .expect("spawn accept thread")
                };
                Ok(TcpServer {
                    local_addr,
                    stop,
                    #[cfg(target_os = "linux")]
                    waker: None,
                    accept_thread: Some(accept_thread),
                })
            }
        }
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the front end and joins its thread(s). On the event loop this
    /// wakes the loop, which flushes what it can without blocking, closes
    /// every connection, and exits; on the threaded path the accept loop
    /// joins every connection thread (each notices the flag within one
    /// [`READ_POLL`]). Either way the drain is bounded by roughly one poll
    /// tick even with idle or mid-request clients. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Decrements the active-connection gauge when a connection thread exits,
/// on every path (clean close, I/O error, panic).
struct ConnectionGuard {
    handle: ServeHandle,
}

impl ConnectionGuard {
    fn new(handle: ServeHandle) -> ConnectionGuard {
        Metrics::inc(&handle.metrics().active_connections);
        Metrics::inc(&handle.metrics().conns_opened);
        ConnectionGuard { handle }
    }
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        Metrics::dec(&self.handle.metrics().active_connections);
    }
}

/// Tells a connection the server cannot take it right now, then closes it.
/// Best-effort: the peer may already be gone, and we never block the
/// accept path on a slow receiver.
pub(crate) fn reject_busy(stream: &TcpStream, limit: usize) {
    let err = crate::error::ServeError::ServerBusy {
        what: "connections",
        limit,
    };
    let line = format!("{}\n\n", format_error(&err));
    stream.set_nonblocking(true).ok();
    let _ = (&*stream).write_all(line.as_bytes());
}

fn accept_loop(
    listener: &TcpListener,
    handle: &ServeHandle,
    stop: &Arc<AtomicBool>,
    cfg: &FrontendConfig,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    // Doubling watermark: reap whenever the handle list reaches it, then
    // reset it to twice the number of live handles. A server under sustained
    // accept traffic never hits the idle (WouldBlock) branch, so reaping
    // must not depend on it — without this, one handle leaks per connection
    // for the lifetime of the server.
    let mut reap_at = REAP_WATERMARK_MIN;
    let mut backoff = ACCEPT_BACKOFF_MIN;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                if connections.len() >= reap_at || connections.len() >= cfg.max_connections {
                    connections.retain(|h| !h.is_finished());
                    reap_at = (connections.len() * 2).max(REAP_WATERMARK_MIN);
                }
                if connections.len() >= cfg.max_connections {
                    Metrics::inc(&handle.metrics().rejected_conn_cap);
                    reject_busy(&stream, cfg.max_connections);
                    continue;
                }
                // The stream is shared so that a failed spawn can still
                // answer the client instead of silently dropping the
                // accepted socket.
                let stream = Arc::new(stream);
                let conn_stream = Arc::clone(&stream);
                let conn_handle = handle.clone();
                let conn_stop = Arc::clone(stop);
                let max_line_bytes = cfg.max_line_bytes;
                let spawned = std::thread::Builder::new()
                    .name("imre-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = ConnectionGuard::new(conn_handle.clone());
                        let _ = serve_connection(
                            &conn_stream,
                            &conn_handle,
                            &conn_stop,
                            max_line_bytes,
                        );
                    });
                match spawned {
                    Ok(h) => connections.push(h),
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion): tell
                        // the client we are overloaded, count it, and back
                        // off before accepting more.
                        Metrics::inc(&handle.metrics().rejected_conn_cap);
                        reject_busy(&stream, connections.len());
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Idle: reap finished connection threads and poll the stop
                // flag again.
                connections.retain(|h| !h.is_finished());
                reap_at = (connections.len() * 2).max(REAP_WATERMARK_MIN);
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Real accept failure (EMFILE/ENFILE under fd pressure):
                // count it and back off exponentially rather than spinning
                // on an error that will not clear instantly.
                Metrics::inc(&handle.metrics().accept_errors);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
    // Bounded drain: every connection thread sees the stop flag within one
    // READ_POLL tick and exits, so these joins complete promptly.
    for h in connections {
        let _ = h.join();
    }
}

fn serve_connection(
    stream: &TcpStream,
    handle: &ServeHandle,
    stop: &AtomicBool,
    max_line_bytes: usize,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = stream;
    let mut reader = BufReader::new(stream);
    // Partial-line accumulator. Framing goes through bounded
    // `fill_buf`/`consume` chunks — never `read_line`, which appends until
    // it sees a newline no matter how long that takes — so the
    // `max_line_bytes` cap is enforced *mid-line*: a client streaming a
    // newline-free byte stream (fast enough to never hit the read timeout)
    // is rejected within one BufReader chunk of the cap instead of growing
    // the buffer without bound. Same typed reject as the event loop's
    // framer.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (consumed, complete) = {
            let chunk = match reader.fill_buf() {
                Ok([]) => return Ok(()), // peer closed
                Ok(chunk) => chunk,
                // Read timeout (reported as WouldBlock or TimedOut depending
                // on platform): keep any partial line already buffered and
                // poll the stop flag again.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            };
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&chunk[..=pos]);
                    (pos + 1, true)
                }
                None => {
                    buf.extend_from_slice(chunk);
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        // A complete line is judged on its content (terminator trimmed); a
        // partial line past the cap can never shrink, so it is rejected as
        // soon as the accumulator crosses the bound.
        let over_cap = if complete {
            trim_line(&buf).len() > max_line_bytes
        } else {
            buf.len() > max_line_bytes
        };
        if over_cap {
            let err = crate::error::ServeError::BadRequest(format!(
                "request line exceeds {max_line_bytes} bytes"
            ));
            let _ = writer.write_all(&encode_lines(&[format_error(&err)]));
            return Ok(());
        }
        if !complete {
            continue;
        }
        let line = std::str::from_utf8(&buf).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "request line is not valid UTF-8",
            )
        })?;
        match handle_line(handle, line) {
            Reply::Quit => return Ok(()),
            Reply::Lines(lines) => {
                writer.write_all(&encode_lines(&lines))?;
                writer.flush()?;
            }
        }
        buf.clear();
    }
}

/// Strips the trailing `\n` / `\r\n` from a framed line's bytes.
fn trim_line(line: &[u8]) -> &[u8] {
    let mut end = line.len();
    while end > 0 && (line[end - 1] == b'\n' || line[end - 1] == b'\r') {
        end -= 1;
    }
    &line[..end]
}
