//! TCP front-end: line-delimited protocol over `std::net::TcpListener`.
//!
//! The accept loop runs on its own thread with a non-blocking listener
//! polled against a stop flag; each connection gets a thread running the
//! [`crate::protocol`] dispatch. [`TcpServer::stop`] flips the flag, joins
//! the accept loop, and shuts the engine's request intake via the shared
//! [`ServeHandle`] semantics (connections see request errors, then close).

use crate::engine::ServeHandle;
use crate::protocol::{handle_line, Reply};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A running TCP front-end.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port) and
    /// starts serving the engine behind `handle`.
    ///
    /// # Errors
    /// When the address cannot be bound.
    pub fn spawn(handle: ServeHandle, addr: &str) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("imre-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &handle, &stop))
                .expect("spawn accept thread")
        };
        Ok(TcpServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections and joins the accept loop. Existing
    /// connection threads wind down on their next poll tick.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, handle: &ServeHandle, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let handle = handle.clone();
                let _ = std::thread::Builder::new()
                    .name("imre-serve-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, &handle);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(stream: TcpStream, handle: &ServeHandle) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // peer closed
        }
        match handle_line(handle, &line) {
            Reply::Quit => return Ok(()),
            Reply::Lines(lines) => {
                let mut out = String::new();
                for l in &lines {
                    out.push_str(l);
                    out.push('\n');
                }
                out.push('\n'); // empty terminator line
                writer.write_all(out.as_bytes())?;
                writer.flush()?;
            }
        }
    }
}
