//! Serialization of an int8 [`QuantModel`] as the `QNT8` section of a v3
//! `.imrb` bundle.
//!
//! The section is laid out so every large array starts at a multiple of 64
//! bytes **relative to the section start** (which the bundle places at a
//! 64-byte-aligned file offset, and mappings are page-aligned — so relative
//! alignment is absolute alignment both on disk and in memory):
//!
//! ```text
//! magic "QNT8" · version u32
//! alpha f32 · beta f32 · gamma f32      (combiner mix; zeros if absent)
//! n_tables u32 · n_biases u32
//! table directory: n × { tag u32, rows u64, cols u64 }
//! bias directory:  n × { tag u32, len u64 }
//! bias payloads (packed f32 — small, always copied on read)
//! per table, in directory order:
//!   pad to 64 · data i8[rows·cols]
//!   pad to 64 · scales f32[rows]
//!   pad to 64 · zeros i8[rows]
//!   pad to 64 · row_sums i32[rows]
//! ```
//!
//! The architecture (spec, hyperparameters, relation count) is *not*
//! duplicated here — the reader takes them from the bundle's f32 model and
//! cross-checks every shape via [`QuantModel::validate`], so the two
//! sections can never drift apart silently.
//!
//! With a keepalive `Arc` (the mmap path) and an aligned base address, all
//! table payloads are **borrowed zero-copy**; otherwise they are copied
//! into owned buffers. Both paths produce models with bit-identical
//! predictions — the bytes are the same either way.

use imre_core::quant::{QuantCombiner, QuantLinear, QuantType};
use imre_core::{QuantModel, ReModel};
use imre_tensor::QuantTensor;
use std::any::Any;
use std::io;
use std::sync::Arc;

/// Section magic, distinct from `IMRB`/`IMRM`/`IMRA`.
pub const QUANT_MAGIC: &[u8; 4] = b"QNT8";
/// Current `QNT8` layout version.
pub const QUANT_VERSION: u32 = 1;
/// Alignment of every array payload, relative to the section start.
pub const QUANT_ALIGN: usize = 64;

// Table tags, fixed for the format's lifetime.
const T_WORD_EMB: u32 = 0;
const T_HEAD_POS: u32 = 1;
const T_TAIL_POS: u32 = 2;
const T_CONV_W: u32 = 3;
const T_ATT_Q: u32 = 4;
const T_RE_HEAD_W: u32 = 5;
const T_MR_W: u32 = 6;
const T_ENTITY_EMB: u32 = 7;
const T_TY_EMB: u32 = 8;
const T_TY_FC_W: u32 = 9;
const T_COMB_OUT_W: u32 = 10;

// Bias tags.
const B_CONV: u32 = 0;
const B_RE_HEAD: u32 = 1;
const B_MR: u32 = 2;
const B_TY_FC: u32 = 3;
const B_COMB_OUT: u32 = 4;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `(tag, tensor)` pairs in canonical write order.
fn tables(qm: &QuantModel) -> Vec<(u32, &QuantTensor)> {
    let mut out = vec![
        (T_WORD_EMB, &qm.word_emb),
        (T_HEAD_POS, &qm.head_pos_emb),
        (T_TAIL_POS, &qm.tail_pos_emb),
        (T_CONV_W, &qm.conv.w),
        (T_RE_HEAD_W, &qm.re_head.w),
    ];
    if let Some(q) = &qm.att_queries {
        out.push((T_ATT_Q, q));
    }
    if let Some(mr) = &qm.mr {
        out.push((T_MR_W, &mr.w));
    }
    if let Some(e) = &qm.entity_emb {
        out.push((T_ENTITY_EMB, e));
    }
    if let Some(ty) = &qm.ty {
        out.push((T_TY_EMB, &ty.emb));
        out.push((T_TY_FC_W, &ty.fc.w));
    }
    if let Some(c) = &qm.comb {
        out.push((T_COMB_OUT_W, &c.out.w));
    }
    out
}

/// `(tag, bias)` pairs in canonical write order.
fn biases(qm: &QuantModel) -> Vec<(u32, &[f32])> {
    let mut out = vec![(B_CONV, &qm.conv.b[..]), (B_RE_HEAD, &qm.re_head.b[..])];
    if let Some(mr) = &qm.mr {
        out.push((B_MR, &mr.b[..]));
    }
    if let Some(ty) = &qm.ty {
        out.push((B_TY_FC, &ty.fc.b[..]));
    }
    if let Some(c) = &qm.comb {
        out.push((B_COMB_OUT, &c.out.b[..]));
    }
    out
}

fn pad_to(b: &mut Vec<u8>, align: usize) {
    b.resize(b.len().next_multiple_of(align), 0);
}

/// Serializes a quantized model as one `QNT8` section.
pub fn write_quant_section(qm: &QuantModel) -> Vec<u8> {
    let tabs = tables(qm);
    let bs = biases(qm);
    let mut b = Vec::with_capacity(qm.bytes() + 64 * (4 * tabs.len() + 2));
    b.extend_from_slice(QUANT_MAGIC);
    b.extend_from_slice(&QUANT_VERSION.to_le_bytes());
    let (alpha, beta, gamma) = qm
        .comb
        .as_ref()
        .map(|c| (c.alpha, c.beta, c.gamma))
        .unwrap_or((0.0, 0.0, 0.0));
    for v in [alpha, beta, gamma] {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b.extend_from_slice(&(tabs.len() as u32).to_le_bytes());
    b.extend_from_slice(&(bs.len() as u32).to_le_bytes());
    for (tag, t) in &tabs {
        b.extend_from_slice(&tag.to_le_bytes());
        b.extend_from_slice(&(t.rows() as u64).to_le_bytes());
        b.extend_from_slice(&(t.cols() as u64).to_le_bytes());
    }
    for (tag, bias) in &bs {
        b.extend_from_slice(&tag.to_le_bytes());
        b.extend_from_slice(&(bias.len() as u64).to_le_bytes());
    }
    for (_, bias) in &bs {
        for &x in *bias {
            b.extend_from_slice(&x.to_le_bytes());
        }
    }
    for (_, t) in &tabs {
        pad_to(&mut b, QUANT_ALIGN);
        // i8 slices reinterpret to u8 bytes one-to-one.
        b.extend(t.data().iter().map(|&v| v as u8));
        pad_to(&mut b, QUANT_ALIGN);
        for &s in t.scales() {
            b.extend_from_slice(&s.to_le_bytes());
        }
        pad_to(&mut b, QUANT_ALIGN);
        b.extend(t.zeros().iter().map(|&v| v as u8));
        pad_to(&mut b, QUANT_ALIGN);
        for &s in t.row_sums() {
            b.extend_from_slice(&s.to_le_bytes());
        }
    }
    b
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("QNT8 section truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn align(&mut self, align: usize) -> io::Result<()> {
        let pad = self.pos.next_multiple_of(align) - self.pos;
        if self.take(pad)?.iter().any(|&b| b != 0) {
            return Err(bad("QNT8 alignment padding not zeroed"));
        }
        Ok(())
    }
}

/// One parsed table payload, either borrowed or copied.
fn read_table(
    c: &mut Cursor<'_>,
    rows: usize,
    cols: usize,
    keep: &Option<Arc<dyn Any + Send + Sync>>,
) -> io::Result<QuantTensor> {
    let cells = rows
        .checked_mul(cols)
        .filter(|&n| n <= (1 << 31))
        .ok_or_else(|| bad("QNT8 table shape overflows"))?;
    c.align(QUANT_ALIGN)?;
    let data = c.take(cells)?;
    c.align(QUANT_ALIGN)?;
    let scales = c.take(4 * rows)?;
    c.align(QUANT_ALIGN)?;
    let zeros = c.take(rows)?;
    c.align(QUANT_ALIGN)?;
    let sums = c.take(4 * rows)?;
    let borrowable = cfg!(target_endian = "little")
        && (scales.as_ptr() as usize).is_multiple_of(4)
        && (sums.as_ptr() as usize).is_multiple_of(4);
    if let (Some(owner), true) = (keep, borrowable) {
        // SAFETY: alignment checked above (i8 needs none), lengths match
        // the directory entry, and `owner` keeps the mapping alive and
        // immutable for the tensor's lifetime.
        return Ok(unsafe {
            QuantTensor::from_borrowed_parts(
                rows,
                cols,
                data.as_ptr() as *const i8,
                scales.as_ptr() as *const f32,
                zeros.as_ptr() as *const i8,
                sums.as_ptr() as *const i32,
                Arc::clone(owner),
            )
        });
    }
    QuantTensor::from_owned_parts(
        rows,
        cols,
        data.iter().map(|&b| b as i8).collect(),
        scales
            .chunks_exact(4)
            .map(|w| f32::from_le_bytes(w.try_into().unwrap()))
            .collect(),
        zeros.iter().map(|&b| b as i8).collect(),
        sums.chunks_exact(4)
            .map(|w| i32::from_le_bytes(w.try_into().unwrap()))
            .collect(),
    )
    .map_err(bad)
}

/// Parses a `QNT8` section against the bundle's f32 `model` (which supplies
/// the architecture) and rebuilds the [`QuantModel`].
///
/// With `keep = Some(mapping)` the table payloads are borrowed zero-copy
/// from `bytes` (the caller guarantees `bytes` outlives `keep`); without,
/// everything is copied. All shapes are cross-checked against the model via
/// [`QuantModel::validate`] — mismatches are `InvalidData`.
pub fn read_quant_section(
    bytes: &[u8],
    model: &ReModel,
    keep: Option<Arc<dyn Any + Send + Sync>>,
) -> io::Result<QuantModel> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(4)? != QUANT_MAGIC {
        return Err(bad("bad QNT8 section magic"));
    }
    let version = c.u32()?;
    if version != QUANT_VERSION {
        return Err(bad(format!("unsupported QNT8 version {version}")));
    }
    let alpha = c.f32()?;
    let beta = c.f32()?;
    let gamma = c.f32()?;
    let n_tables = c.u32()? as usize;
    let n_biases = c.u32()? as usize;
    if n_tables > 16 || n_biases > 16 {
        return Err(bad("QNT8 directory implausibly large"));
    }
    let mut tab_dir = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let tag = c.u32()?;
        let rows = c.u64()? as usize;
        let cols = c.u64()? as usize;
        tab_dir.push((tag, rows, cols));
    }
    let mut bias_dir = Vec::with_capacity(n_biases);
    for _ in 0..n_biases {
        let tag = c.u32()?;
        let len = c.u64()? as usize;
        if len > 1 << 24 {
            return Err(bad("QNT8 bias implausibly large"));
        }
        bias_dir.push((tag, len));
    }
    let mut bias: [Option<Vec<f32>>; 5] = Default::default();
    for (tag, len) in bias_dir {
        let slot = bias
            .get_mut(tag as usize)
            .ok_or_else(|| bad(format!("unknown QNT8 bias tag {tag}")))?;
        if slot.is_some() {
            return Err(bad(format!("duplicate QNT8 bias tag {tag}")));
        }
        *slot = Some(
            c.take(4 * len)?
                .chunks_exact(4)
                .map(|w| f32::from_le_bytes(w.try_into().unwrap()))
                .collect(),
        );
    }
    let mut table: [Option<QuantTensor>; 11] = Default::default();
    for (tag, rows, cols) in tab_dir {
        let slot = (tag as usize) < table.len();
        if !slot {
            return Err(bad(format!("unknown QNT8 table tag {tag}")));
        }
        if table[tag as usize].is_some() {
            return Err(bad(format!("duplicate QNT8 table tag {tag}")));
        }
        table[tag as usize] = Some(read_table(&mut c, rows, cols, &keep)?);
    }
    if c.pos != bytes.len() {
        return Err(bad("QNT8 section has trailing bytes"));
    }

    let mut take_tab = |tag: u32| -> io::Result<QuantTensor> {
        table[tag as usize]
            .take()
            .ok_or_else(|| bad(format!("QNT8 section misses table {tag}")))
    };
    let mut take_bias = |tag: u32| -> io::Result<Vec<f32>> {
        bias[tag as usize]
            .take()
            .ok_or_else(|| bad(format!("QNT8 section misses bias {tag}")))
    };

    let spec = model.spec;
    let qm = QuantModel {
        spec,
        hp: model.hp.clone(),
        word_emb: take_tab(T_WORD_EMB)?,
        head_pos_emb: take_tab(T_HEAD_POS)?,
        tail_pos_emb: take_tab(T_TAIL_POS)?,
        conv: QuantLinear {
            w: take_tab(T_CONV_W)?,
            b: take_bias(B_CONV)?,
        },
        att_queries: if spec.agg == imre_core::AggKind::Att {
            Some(take_tab(T_ATT_Q)?)
        } else {
            None
        },
        re_head: QuantLinear {
            w: take_tab(T_RE_HEAD_W)?,
            b: take_bias(B_RE_HEAD)?,
        },
        mr: if spec.use_mr {
            Some(QuantLinear {
                w: take_tab(T_MR_W)?,
                b: take_bias(B_MR)?,
            })
        } else {
            None
        },
        entity_emb: if spec.use_mr {
            Some(take_tab(T_ENTITY_EMB)?)
        } else {
            None
        },
        ty: if spec.use_type {
            Some(QuantType {
                emb: take_tab(T_TY_EMB)?,
                fc: QuantLinear {
                    w: take_tab(T_TY_FC_W)?,
                    b: take_bias(B_TY_FC)?,
                },
            })
        } else {
            None
        },
        comb: if spec.use_mr || spec.use_type {
            Some(QuantCombiner {
                alpha,
                beta,
                gamma,
                out: QuantLinear {
                    w: take_tab(T_COMB_OUT_W)?,
                    b: take_bias(B_COMB_OUT)?,
                },
            })
        } else {
            None
        },
        num_relations: model.num_relations(),
    };
    qm.validate().map_err(bad)?;
    Ok(qm)
}
