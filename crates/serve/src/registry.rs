//! Named model registry with hot-swap.
//!
//! Models live behind `Arc`s inside an `RwLock`ed map: lookups are cheap
//! shared reads, and swapping a model in or out never interrupts requests
//! already running against the old `Arc` — they finish on the version they
//! resolved, new requests see the new one.

use crate::error::ServeError;
use crate::pipeline::ServingModel;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A concurrent name → model map.
#[derive(Default)]
pub struct Registry {
    models: RwLock<HashMap<String, Arc<ServingModel>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or hot-swaps) a model under `name`, returning the model
    /// it replaced, if any.
    pub fn insert(
        &self,
        name: impl Into<String>,
        model: ServingModel,
    ) -> Option<Arc<ServingModel>> {
        self.models
            .write()
            .expect("registry poisoned")
            .insert(name.into(), Arc::new(model))
    }

    /// Loads an `.imrb` bundle from disk and registers it under `name`.
    ///
    /// # Errors
    /// [`ServeError::BadArtifact`] when the file cannot be read or fails
    /// validation.
    pub fn load_file(&self, name: impl Into<String>, path: &Path) -> Result<(), ServeError> {
        let bundle = crate::bundle::load_bundle(path)
            .map_err(|e| ServeError::BadArtifact(format!("{}: {e}", path.display())))?;
        self.insert(name, ServingModel::new(bundle)?);
        Ok(())
    }

    /// Resolves a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ServingModel>> {
        self.models
            .read()
            .expect("registry poisoned")
            .get(name)
            .cloned()
    }

    /// Unregisters a model; in-flight requests against it still finish.
    pub fn remove(&self, name: &str) -> Option<Arc<ServingModel>> {
        self.models.write().expect("registry poisoned").remove(name)
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry poisoned").len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
