//! End-to-end int8 serving: `--precision int8` engine behavior, drift vs
//! the f32 engine, the typed error for quant-less bundles, and mmap-backed
//! hot-swap (the old mapping must outlive the swap until its last borrower
//! drops).

use imre_core::{HyperParams, ModelSpec, QuantModel};
use imre_eval::{build_index, smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{
    load_bundle, save_bundle, Bundle, EngineConfig, InferRequest, Precision, Registry, ServeError,
    ServeHandle, ServingModel,
};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Fixture {
    pipeline: Pipeline,
    model_bytes: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 2,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(5), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
        let mut model_bytes = Vec::new();
        imre_core::write_model(&model, &mut model_bytes).expect("serialize model");
        Fixture {
            pipeline,
            model_bytes,
        }
    })
}

fn bundle(with_quant: bool) -> Bundle {
    let fx = fixture();
    let model = imre_core::read_model(&mut fx.model_bytes.as_slice()).expect("model deserializes");
    let embedding = EntityEmbedding::from_matrix(fx.pipeline.embedding.matrix().clone());
    let ann = build_index(&fx.pipeline, &model, 7);
    let mut b = Bundle::new(
        model,
        fx.pipeline.dataset.vocab.clone(),
        &fx.pipeline.dataset.world,
        Some(embedding),
    )
    .with_ann(ann);
    if with_quant {
        let quant = QuantModel::from_model(&b.model, b.embedding.as_ref()).expect("quantizes");
        b = b.with_quant(quant);
    }
    b
}

fn request(b: &Bundle, i: usize) -> InferRequest {
    let head = b.entities[i % b.entities.len()].0.clone();
    let tail = b.entities[(i + 1) % b.entities.len()].0.clone();
    InferRequest {
        model: "smoke".to_string(),
        text: format!("records show {head} associated with {tail} in the region"),
        head,
        tail,
        top_k: 0,
        ..InferRequest::default()
    }
}

fn engine(registry: Arc<Registry>, precision: Precision) -> ServeHandle {
    ServeHandle::start(
        registry,
        EngineConfig {
            workers: 1,
            batch_max: 8,
            batch_deadline: Duration::from_millis(1),
            precision,
            ..EngineConfig::default()
        },
    )
}

#[test]
fn int8_engine_serves_and_tracks_the_f32_engine() {
    let registry = Arc::new(Registry::new());
    registry.insert("smoke", ServingModel::new(bundle(true)).expect("validates"));
    let f32_engine = engine(Arc::clone(&registry), Precision::F32);
    let int8_engine = engine(Arc::clone(&registry), Precision::Int8);

    let b = registry.get("smoke").unwrap();
    for i in 0..6 {
        let req = request(b.bundle(), i);
        let f = f32_engine.infer(req.clone()).expect("f32 serves");
        let q = int8_engine.infer(req).expect("int8 serves");
        assert_eq!(f.ranked.len(), q.ranked.len());
        // Same relation universe; scores drift by at most the quantization
        // tolerance (the CI gate pins the tight bound on real dims — tiny
        // test dims drift more per weight).
        for (a, c) in f.ranked.iter().zip(&q.ranked) {
            let other = q
                .ranked
                .iter()
                .find(|r| r.relation == a.relation)
                .expect("same relations");
            assert!(
                (a.score - other.score).abs() < 0.06,
                "relation {} drifted: f32 {} vs int8 {}",
                a.relation,
                a.score,
                other.score
            );
            let _ = c;
        }
    }

    // Batched int8 requests agree with one-at-a-time submissions.
    let reqs: Vec<InferRequest> = (0..6).map(|i| request(b.bundle(), i)).collect();
    let singles: Vec<_> = reqs
        .iter()
        .map(|r| int8_engine.infer(r.clone()).expect("serves"))
        .collect();
    let pending: Vec<_> = reqs
        .iter()
        .map(|r| int8_engine.submit(r.clone()).expect("queued"))
        .collect();
    for (p, single) in pending.into_iter().zip(singles) {
        let batched = p.wait().expect("serves");
        let a: Vec<(String, u32)> = single
            .ranked
            .iter()
            .map(|r| (r.relation.clone(), r.score.to_bits()))
            .collect();
        let c: Vec<(String, u32)> = batched
            .ranked
            .iter()
            .map(|r| (r.relation.clone(), r.score.to_bits()))
            .collect();
        assert_eq!(a, c, "int8 batching must be bit-identical");
    }

    // kNN interpolation also runs on the int8 path (repr from the
    // quantized encoder against the bundled f32 index).
    let mut knn_req = request(b.bundle(), 0);
    knn_req.knn_k = Some(4);
    knn_req.knn_lambda = Some(0.5);
    let blended = int8_engine
        .infer(knn_req)
        .expect("interpolated int8 serves");
    assert_eq!(blended.ranked.len(), b.num_relations());

    f32_engine.shutdown();
    int8_engine.shutdown();
}

#[test]
fn int8_engine_rejects_quantless_bundle_with_typed_error() {
    let registry = Arc::new(Registry::new());
    registry.insert(
        "smoke",
        ServingModel::new(bundle(false)).expect("validates"),
    );
    let int8_engine = engine(Arc::clone(&registry), Precision::Int8);
    let b = registry.get("smoke").unwrap();
    match int8_engine.infer(request(b.bundle(), 0)) {
        Err(ServeError::NoQuantModel) => {}
        other => panic!("expected NoQuantModel, got {other:?}"),
    }
    assert_eq!(ServeError::NoQuantModel.code(), "no-quant-model");
    int8_engine.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn hot_swap_defers_unmap_until_the_last_borrower_drops() {
    let dir = std::env::temp_dir().join("imre_quant_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.imrb");
    save_bundle(&bundle(true), &path).expect("saves");

    let registry = Arc::new(Registry::new());
    registry.load_file("smoke", &path).expect("mmap loads");
    let old = registry.get("smoke").expect("registered");
    assert!(
        old.quant().expect("v3 carries quant").is_borrowed(),
        "registry file load must borrow from the mapping"
    );
    let req = request(old.bundle(), 0);
    let want: Vec<u32> = {
        let int8_engine = engine(Arc::clone(&registry), Precision::Int8);
        let resp = int8_engine.infer(req.clone()).expect("serves");
        int8_engine.shutdown();
        resp.ranked.iter().map(|r| r.score.to_bits()).collect()
    };

    // Hot-swap to an owned (non-mapped) copy of the same model and delete
    // the file. The old Arc — standing in for an in-flight batch — must
    // keep the mapping alive and keep serving bit-identically.
    let mapped_bundle = load_bundle(&path).expect("second mapping");
    drop(mapped_bundle);
    registry.insert("smoke", ServingModel::new(bundle(true)).expect("validates"));
    std::fs::remove_file(&path).ok();

    let bag = old.featurize_request(&req).expect("featurizes");
    let mut scratch = imre_core::QuantScratch::new();
    let mut scores = vec![0.0f32; old.num_relations()];
    old.quant().unwrap().predict_quant_into(
        &bag,
        &imre_core::entity_type_table(&fixture().pipeline.dataset.world),
        &mut scratch,
        &mut scores,
        None,
    );
    let ranked = old.rank(&scores, 0);
    let got: Vec<u32> = ranked.iter().map(|r| r.score.to_bits()).collect();
    assert_eq!(
        got, want,
        "the swapped-out mapping must stay readable through the old Arc"
    );

    // New requests resolve the swapped-in model.
    let now = registry.get("smoke").expect("swap kept the name");
    assert!(!Arc::ptr_eq(&old, &now), "swap must replace the Arc");
}
