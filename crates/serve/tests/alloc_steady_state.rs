//! Steady-state allocation gate for the serving engine.
//!
//! After a warm-up phase, a worker's buffer arena must serve every forward
//! pass from recycled buffers: across ≥100 further requests the engine-wide
//! `pool_misses` counter must not grow at all, and the stats dump must
//! report `allocs_per_request` accordingly. `scripts/ci.sh alloc-gate` runs
//! exactly this test — it is the committed steady-state allocation budget
//! (zero) for the serving hot path.
//!
//! Everything runs in ONE `#[test]` so the compute-pool thread count can be
//! pinned before any tensor code touches the lazily-initialised global pool:
//! a single worker with a single-thread compute pool makes the warm-up
//! boundary exact (with racy multi-thread task claiming, a cold thread-local
//! stash could legitimately miss after warm-up).

use imre_core::{HyperParams, ModelSpec};
use imre_eval::{smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{Bundle, EngineConfig, InferRequest, Registry, ServeHandle, ServingModel};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn request(entity_names: &[String], i: usize) -> InferRequest {
    let head = entity_names[i % entity_names.len()].clone();
    let mut tail_ix = (i * 7 + 3) % entity_names.len();
    if tail_ix == i % entity_names.len() {
        tail_ix = (tail_ix + 1) % entity_names.len();
    }
    let tail = entity_names[tail_ix].clone();
    let text = if i.is_multiple_of(3) {
        format!(
            "{head} was reported near {tail} last year | sources link {head} directly to {tail}"
        )
    } else {
        format!("records show {head} associated with {tail} in the region")
    };
    InferRequest {
        model: "smoke".to_string(),
        head,
        tail,
        text,
        top_k: 3,
        deadline_ms: None,
        ..InferRequest::default()
    }
}

#[test]
fn steady_state_serve_allocs_per_request_is_zero() {
    // Must run before the first tensor op of this process initialises the
    // global compute pool (safe: edition-2021 `set_var`, single test fn).
    std::env::set_var("IMRE_THREADS", "1");

    let hp = HyperParams {
        epochs: 1,
        ..HyperParams::tiny()
    };
    let pipeline = Pipeline::build(&smoke_config(5), hp);
    let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
    // The bundle ships a kNN index so the same engine can gate the K>0
    // interpolation path below; requests that do not opt in still run the
    // pure path (engine default knn_k = 0).
    let ann = imre_eval::build_index(&pipeline, &model, 11);
    let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
    let bundle = Bundle::new(
        model,
        pipeline.dataset.vocab.clone(),
        &pipeline.dataset.world,
        Some(embedding),
    )
    .with_ann(ann);
    let entity_names: Vec<String> = bundle
        .entities
        .iter()
        .map(|(name, _)| name.clone())
        .collect();

    let registry = Arc::new(Registry::new());
    registry.insert(
        "smoke",
        ServingModel::new(bundle).expect("bundle validates"),
    );
    let handle = ServeHandle::start(
        registry,
        EngineConfig {
            workers: 1,
            batch_max: 8,
            batch_deadline: Duration::from_millis(1),
            queue_capacity: 256,
            default_deadline_ms: None,
            ..EngineConfig::default()
        },
    );

    let run = |lo: usize, hi: usize| {
        let pending: Vec<_> = (lo..hi)
            .map(|i| {
                handle
                    .submit(request(&entity_names, i))
                    .expect("queue accepts")
            })
            .collect();
        for p in pending {
            p.wait().expect("request succeeds");
        }
    };

    // Warm-up: every distinct request shape in the cycle must have passed
    // through the arena at least once (the request generator cycles with a
    // short period, so a couple of rounds cover all shapes).
    run(0, 40);

    let warm_misses = handle.metrics().pool_misses.load(Ordering::Relaxed);
    let warm_hits = handle.metrics().pool_hits.load(Ordering::Relaxed);
    assert!(warm_misses > 0, "warm-up should populate the arena");

    // Steady state: ≥100 more requests, zero fresh allocations.
    run(40, 160);

    let steady_misses = handle.metrics().pool_misses.load(Ordering::Relaxed) - warm_misses;
    let steady_hits = handle.metrics().pool_hits.load(Ordering::Relaxed) - warm_hits;
    assert_eq!(
        steady_misses, 0,
        "steady-state serving must not allocate tensor buffers \
         (pool grew by {steady_misses} buffers over 120 requests)"
    );
    assert!(
        steady_hits > 0,
        "steady state should be served from the pool"
    );

    // The stats dump carries the alloc line (cumulative counters, so the
    // ratio includes warm-up; it converges to the steady-state 0 as
    // requests accumulate).
    let stats = handle.stats_text();
    assert!(
        stats.contains("alloc: pool_hits=") && stats.contains("allocs_per_request="),
        "stats should report the alloc line:\n{stats}"
    );

    // K>0: the interpolation path must hold the same steady-state budget.
    // Its per-worker scratch (search beam, visited set, vote accumulator)
    // warms up alongside the buffer arena, after which interpolated
    // requests recycle everything too.
    let knn_run = |lo: usize, hi: usize| {
        let pending: Vec<_> = (lo..hi)
            .map(|i| {
                let mut req = request(&entity_names, i);
                req.knn_k = Some(4);
                req.knn_lambda = Some(0.3);
                handle.submit(req).expect("queue accepts")
            })
            .collect();
        for p in pending {
            p.wait().expect("interpolated request succeeds");
        }
    };
    knn_run(160, 200); // warm-up: repr buffers join the arena
    let warm_misses = handle.metrics().pool_misses.load(Ordering::Relaxed);
    let warm_queries = handle.metrics().knn_queries.load(Ordering::Relaxed);
    assert!(warm_queries >= 40, "kNN phase must query the index");
    knn_run(200, 320);
    let steady_misses = handle.metrics().pool_misses.load(Ordering::Relaxed) - warm_misses;
    assert_eq!(
        steady_misses, 0,
        "steady-state kNN serving must not allocate tensor buffers \
         (pool grew by {steady_misses} buffers over 120 interpolated requests)"
    );
    assert_eq!(
        handle.metrics().knn_queries.load(Ordering::Relaxed) - warm_queries,
        120,
        "every interpolated request queries the index exactly once"
    );
    let stats = handle.stats_text();
    assert!(
        stats.contains("knn: queries="),
        "stats should report the knn line:\n{stats}"
    );
    handle.shutdown();
}
