//! End-to-end serving tests: train a real `smoke` model, freeze it into a
//! bundle, load it through the registry, and drive the engine the way a
//! deployment would — concurrent submissions, micro-batching, backpressure,
//! and graceful shutdown.

use imre_core::{HyperParams, ModelSpec};
use imre_eval::{smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{
    read_bundle, write_bundle, Bundle, EngineConfig, InferRequest, Registry, ServeError,
    ServeHandle, ServingModel,
};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Serialized bundle bytes plus the entity names available for requests.
/// Trained once; every test deserializes its own copy (which also re-runs
/// the round-trip machinery under concurrency).
struct Fixture {
    bundle_bytes: Vec<u8>,
    entity_names: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 2,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(5), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
        let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let bundle = Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        );
        let mut bundle_bytes = Vec::new();
        write_bundle(&bundle, &mut bundle_bytes).expect("serialize bundle");
        let entity_names = bundle
            .entities
            .iter()
            .map(|(name, _)| name.clone())
            .collect();
        Fixture {
            bundle_bytes,
            entity_names,
        }
    })
}

fn load_model() -> ServingModel {
    let bundle = read_bundle(&mut fixture().bundle_bytes.as_slice()).expect("bundle deserializes");
    ServingModel::new(bundle).expect("bundle validates")
}

/// A deterministic request for index `i`, cycling over known entity pairs.
fn request(i: usize) -> InferRequest {
    let names = &fixture().entity_names;
    let head = names[i % names.len()].clone();
    let mut tail_ix = (i * 7 + 3) % names.len();
    if tail_ix == i % names.len() {
        tail_ix = (tail_ix + 1) % names.len();
    }
    let tail = names[tail_ix].clone();
    let text = if i.is_multiple_of(3) {
        format!(
            "{head} was reported near {tail} last year | sources link {head} directly to {tail}"
        )
    } else {
        format!("records show {head} associated with {tail} in the region")
    };
    InferRequest {
        model: "smoke".to_string(),
        head,
        tail,
        text,
        top_k: 0,
        deadline_ms: None,
        ..InferRequest::default()
    }
}

fn start_engine(config: EngineConfig) -> ServeHandle {
    let registry = Arc::new(Registry::new());
    registry.insert("smoke", load_model());
    ServeHandle::start(registry, config)
}

#[test]
fn bundle_roundtrip_preserves_ranked_predictions() {
    let a = load_model();
    let b = load_model();
    for i in 0..8 {
        let req = request(i);
        let ra = a.infer(&req).expect("infer a");
        let rb = b.infer(&req).expect("infer b");
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.relation, y.relation, "request {i}");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "request {i}: scores must be bit-identical"
            );
        }
        assert_eq!(ra.len(), a.num_relations());
    }
}

#[test]
fn corrupted_bundle_header_is_rejected() {
    let bytes = &fixture().bundle_bytes;
    // Flip the magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(
        read_bundle(&mut bad.as_slice()).is_err(),
        "bad magic must be rejected"
    );
    // Unsupported version.
    let mut bad = bytes.clone();
    bad[4] = 0xFF;
    assert!(
        read_bundle(&mut bad.as_slice()).is_err(),
        "bad version must be rejected"
    );
    // Truncation anywhere in the stream.
    let truncated = &bytes[..bytes.len() / 2];
    assert!(
        read_bundle(&mut &truncated[..]).is_err(),
        "truncated bundle must be rejected"
    );
}

#[test]
fn engine_serves_64_concurrent_requests_with_correct_rankings() {
    let reference = load_model();
    let handle = start_engine(EngineConfig {
        workers: 2,
        batch_max: 8,
        batch_deadline: Duration::from_millis(2),
        queue_capacity: 256,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });

    const N: usize = 64;
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let handle = handle.clone();
                scope.spawn(move || handle.infer(request(i)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("request thread"))
            .collect()
    });

    for (i, resp) in responses.into_iter().enumerate() {
        let resp = resp.unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        let expected = reference.infer(&request(i)).expect("reference infer");
        assert_eq!(resp.ranked.len(), expected.len(), "request {i}");
        for (got, want) in resp.ranked.iter().zip(&expected) {
            assert_eq!(got.relation, want.relation, "request {i}");
            assert_eq!(got.score.to_bits(), want.score.to_bits(), "request {i}");
        }
    }

    let metrics = handle.metrics();
    assert_eq!(metrics.completed.load(Ordering::Relaxed), N as u64);
    assert_eq!(metrics.errors.load(Ordering::Relaxed), 0);
    let stats = handle.stats_text();
    for stage in ["queue_wait", "featurize", "forward"] {
        assert!(
            stats.contains(stage),
            "stats dump missing {stage} histogram:\n{stats}"
        );
    }
    assert!(metrics.queue_wait.count() >= N as u64);
    assert!(metrics.forward.count() >= N as u64);
    handle.shutdown();
}

#[test]
fn batched_and_unbatched_forward_scores_are_identical() {
    // Model level: one shared inference tape over a batch vs one tape per bag.
    let model = load_model();
    let bags: Vec<_> = (0..12)
        .map(|i| model.featurize_request(&request(i)).expect("featurize"))
        .collect();
    let refs: Vec<&_> = bags.iter().collect();
    let batched = model.predict_prepared_batch(&refs);
    for (i, bag) in bags.iter().enumerate() {
        let single = model.predict_prepared(bag);
        assert_eq!(single.len(), batched[i].len());
        for (a, b) in single.iter().zip(&batched[i]) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "bag {i}: batched forward must match unbatched"
            );
        }
    }

    // Engine level: coalescing scheduler vs strictly-serial configuration.
    let coalescing = start_engine(EngineConfig {
        workers: 1,
        batch_max: 16,
        batch_deadline: Duration::from_millis(10),
        queue_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let serial = start_engine(EngineConfig {
        workers: 1,
        batch_max: 1,
        batch_deadline: Duration::from_millis(0),
        queue_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let pending: Vec<_> = (0..16)
        .map(|i| coalescing.submit(request(i)).expect("submit"))
        .collect();
    let batched: Vec<_> = pending
        .into_iter()
        .map(|p| p.wait().expect("batched reply"))
        .collect();
    coalescing.shutdown();
    let m = coalescing.metrics();
    assert!(
        m.batches.load(Ordering::Relaxed) < m.completed.load(Ordering::Relaxed),
        "expected coalescing: {} batches for {} requests",
        m.batches.load(Ordering::Relaxed),
        m.completed.load(Ordering::Relaxed)
    );
    for (i, resp) in batched.iter().enumerate() {
        let serial_resp = serial.infer(request(i)).expect("serial reply");
        for (a, b) in resp.ranked.iter().zip(&serial_resp.ranked) {
            assert_eq!(a.relation, b.relation, "request {i}");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "request {i}");
        }
    }
    serial.shutdown();
}

#[test]
fn full_queue_returns_typed_rejection() {
    // No workers: nothing drains the queue, so the capacity bound is exact.
    let handle = start_engine(EngineConfig {
        workers: 0,
        batch_max: 8,
        batch_deadline: Duration::from_millis(1),
        queue_capacity: 2,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let _p0 = handle.submit(request(0)).expect("first fits");
    let _p1 = handle.submit(request(1)).expect("second fits");
    match handle.submit(request(2)) {
        Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        Err(other) => panic!("expected QueueFull, got {other:?}"),
        Ok(_) => panic!("expected QueueFull, got an accepted request"),
    }
    assert_eq!(handle.metrics().rejected_full.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn shutdown_drains_all_queued_requests() {
    let handle = start_engine(EngineConfig {
        workers: 1,
        batch_max: 4,
        batch_deadline: Duration::from_millis(1),
        queue_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let pending: Vec<_> = (0..24)
        .map(|i| handle.submit(request(i)).expect("submit"))
        .collect();
    handle.shutdown();
    for (i, p) in pending.into_iter().enumerate() {
        let resp = p
            .wait()
            .unwrap_or_else(|e| panic!("queued request {i} dropped during shutdown: {e}"));
        assert!(!resp.ranked.is_empty());
    }
    assert_eq!(handle.metrics().completed.load(Ordering::Relaxed), 24);
    // New submissions after shutdown are refused with the typed error.
    match handle.submit(request(0)) {
        Err(ServeError::ShuttingDown) => {}
        Err(other) => panic!("expected ShuttingDown, got {other:?}"),
        Ok(_) => panic!("expected ShuttingDown, got an accepted request"),
    }
}

#[test]
fn generous_deadline_is_served_and_lifecycle_counters_stay_clean() {
    let handle = start_engine(EngineConfig::default());
    let mut req = request(0);
    req.deadline_ms = Some(60_000);
    let resp = handle.infer(req).expect("generous deadline must be served");
    assert!(!resp.ranked.is_empty());
    let m = handle.metrics();
    assert_eq!(m.deadline_expired.load(Ordering::Relaxed), 0);
    assert_eq!(m.shed.load(Ordering::Relaxed), 0);
    let stats = handle.stats_text();
    assert!(
        stats.contains("lifecycle: deadline_expired=0 shed=0 active_connections=0"),
        "stats must render the lifecycle counters:\n{stats}"
    );
    handle.shutdown();
}

#[test]
fn forward_shares_sum_to_elapsed_batch_time() {
    // The per-request forward shares of a batched pass must sum exactly to
    // the measured batch time — integer truncation used to drop up to
    // (batch-1) µs per batch and round fast batches down to 0.
    let handle = start_engine(EngineConfig {
        workers: 1,
        batch_max: 16,
        batch_deadline: Duration::from_millis(20),
        queue_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let pending: Vec<_> = (0..16)
        .map(|i| handle.submit(request(i)).expect("submit"))
        .collect();
    let responses: Vec<_> = pending
        .into_iter()
        .map(|p| p.wait().expect("reply"))
        .collect();
    handle.shutdown();
    let snap = handle.metrics().forward.snapshot();
    let share_sum: u64 = responses.iter().map(|r| r.forward_us).sum();
    assert_eq!(
        snap.sum_us, share_sum,
        "histogram total and response shares must agree"
    );
    assert_eq!(snap.count, 16);
    // If the whole burst coalesced into one batch, the remainder spreading
    // bounds the share skew to a single microsecond.
    if handle.metrics().batches.load(Ordering::Relaxed) == 1 {
        let spread: Vec<u64> = responses.iter().map(|r| r.forward_us).collect();
        let (min, max) = (spread.iter().min().unwrap(), spread.iter().max().unwrap());
        assert!(max - min <= 1, "one batch must spread shares within 1µs");
    }
}

#[test]
fn unknown_model_and_unknown_entity_report_typed_errors() {
    let handle = start_engine(EngineConfig::default());
    let mut req = request(0);
    req.model = "nope".to_string();
    match handle.infer(req) {
        Err(ServeError::UnknownModel(name)) => assert_eq!(name, "nope"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    // pa-tmr uses mutual-relation embeddings, so an unseen entity is an error.
    let mut req = request(0);
    req.head = "NotARealEntity".to_string();
    req.text = format!("NotARealEntity lives in {}", req.tail);
    match handle.infer(req) {
        Err(ServeError::UnknownEntity(name)) => assert_eq!(name, "NotARealEntity"),
        other => panic!("expected UnknownEntity, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn tcp_front_end_round_trips_the_line_protocol() {
    use std::io::{BufRead, BufReader, Write};

    let handle = start_engine(EngineConfig::default());
    let mut server = imre_serve::TcpServer::spawn(handle.clone(), "127.0.0.1:0").expect("bind");
    let stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    let mut ask = |line: &str| -> Vec<String> {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write newline");
        writer.flush().expect("flush");
        let mut lines = Vec::new();
        loop {
            let mut buf = String::new();
            reader.read_line(&mut buf).expect("read reply line");
            let trimmed = buf.trim_end_matches('\n');
            if trimmed.is_empty() {
                return lines;
            }
            lines.push(trimmed.to_string());
        }
    };

    assert_eq!(ask("ping"), vec!["ok pong"]);
    assert_eq!(ask("models"), vec!["ok smoke"]);

    let req = request(0);
    let reply = ask(&format!(
        "infer model=smoke head={} tail={} k=3 text={}",
        req.head, req.tail, req.text
    ));
    assert_eq!(reply.len(), 1);
    assert!(
        reply[0].starts_with("ok "),
        "expected ok reply, got {:?}",
        reply[0]
    );
    let expected = load_model().infer(&req).expect("reference infer");
    let first = expected
        .iter()
        .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
        .unwrap();
    assert!(
        reply[0].contains(&first.relation),
        "top relation {:?} missing from reply {:?}",
        first.relation,
        reply[0]
    );

    let bad = ask("infer model=smoke head=x");
    assert!(bad[0].starts_with("err bad-request"), "got {:?}", bad[0]);

    let stats = ask("stats");
    assert!(
        stats.iter().any(|l| l.contains("queue_wait")),
        "stats over TCP missing histograms: {stats:?}"
    );

    server.stop();
    handle.shutdown();
}

#[test]
fn registry_hot_swap_keeps_serving() {
    let registry = Arc::new(Registry::new());
    registry.insert("smoke", load_model());
    let handle = ServeHandle::start(Arc::clone(&registry), EngineConfig::default());
    let before = handle.infer(request(1)).expect("before swap");
    // Swap in a fresh instance of the same model while the engine is live.
    let previous = registry.insert("smoke", load_model());
    assert!(previous.is_some(), "swap returns the displaced model");
    let after = handle.infer(request(1)).expect("after swap");
    assert_eq!(before.ranked[0].relation, after.ranked[0].relation);
    assert_eq!(
        before.ranked[0].score.to_bits(),
        after.ranked[0].score.to_bits()
    );
    handle.shutdown();
}
