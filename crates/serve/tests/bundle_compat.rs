//! `.imrb` backward/forward compatibility and kNN-index determinism.
//!
//! The bundle format grew a version-2 layout (trailing `IMRA` kNN index
//! section) in the kNN-serving change. These tests pin the compatibility
//! contract:
//!
//! * a bundle without an index is still written as version 1, byte-for-byte
//!   loadable (old readers keep working, and this writer's v1 output is
//!   identical to the pre-kNN writer's);
//! * a bundle with an index carries version 2 and round-trips exactly;
//! * unknown versions and corrupted/truncated index sections fail with
//!   typed `InvalidData` errors, never panics;
//! * index construction is deterministic: byte-identical across repeated
//!   builds and across compute-pool thread counts (`--threads 1` vs `4`).

use imre_core::{HyperParams, ModelSpec};
use imre_eval::{build_index, smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{
    read_bundle, write_bundle, Bundle, ServeError, ServingModel, VERSION_V1, VERSION_V2,
};
use imre_tensor::pool::{with_pool, ThreadPool};
use std::sync::OnceLock;

struct Fixture {
    pipeline: Pipeline,
    // `ReModel` is deliberately not Clone; each bundle deserializes its own
    // copy (also re-exercising the IMRM round-trip).
    model_bytes: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 2,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(5), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
        let mut model_bytes = Vec::new();
        imre_core::write_model(&model, &mut model_bytes).expect("serialize model");
        Fixture {
            pipeline,
            model_bytes,
        }
    })
}

fn bundle(with_ann: bool) -> Bundle {
    let fx = fixture();
    let model = imre_core::read_model(&mut fx.model_bytes.as_slice()).expect("model deserializes");
    let embedding = EntityEmbedding::from_matrix(fx.pipeline.embedding.matrix().clone());
    let ann = with_ann.then(|| build_index(&fx.pipeline, &model, 7));
    let b = Bundle::new(
        model,
        fx.pipeline.dataset.vocab.clone(),
        &fx.pipeline.dataset.world,
        Some(embedding),
    );
    match ann {
        Some(ann) => b.with_ann(ann),
        None => b,
    }
}

fn bundle_bytes(with_ann: bool) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_bundle(&bundle(with_ann), &mut bytes).expect("serialize bundle");
    bytes
}

fn version_of(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[4..8].try_into().unwrap())
}

/// A request over the first two bundled entity names.
fn request(b: &Bundle, knn: Option<(usize, f32)>) -> imre_serve::InferRequest {
    let head = b.entities[0].0.clone();
    let tail = b.entities[1].0.clone();
    imre_serve::InferRequest {
        model: "smoke".to_string(),
        text: format!("records show {head} associated with {tail} in the region"),
        head,
        tail,
        top_k: 0,
        knn_k: knn.map(|(k, _)| k),
        knn_lambda: knn.map(|(_, l)| l),
        ..imre_serve::InferRequest::default()
    }
}

#[test]
fn bundle_without_index_stays_version_1_and_serves() {
    let bytes = bundle_bytes(false);
    assert_eq!(version_of(&bytes), VERSION_V1, "no index → v1 on disk");
    let loaded = read_bundle(&mut bytes.as_slice()).expect("v1 loads");
    assert!(loaded.ann.is_none());
    let req = request(&loaded, None);
    let model = ServingModel::new(loaded).expect("validates");
    let ranked = model.infer(&req).expect("serves");
    assert_eq!(ranked.len(), model.num_relations());
}

#[test]
fn bundle_with_index_is_version_2_and_round_trips() {
    let bytes = bundle_bytes(true);
    assert_eq!(version_of(&bytes), VERSION_V2, "index → v2 on disk");
    let loaded = read_bundle(&mut bytes.as_slice()).expect("v2 loads");
    let ann = loaded.ann.as_ref().expect("index survives the roundtrip");
    assert_eq!(ann.len(), fixture().pipeline.train_bags.len());
    assert_eq!(ann.dim(), loaded.model.sent_dim());
    // Serves on both paths: pure and interpolated.
    let pure_req = request(&loaded, None);
    let knn_req = request(&loaded, Some((4, 0.5)));
    let model = ServingModel::new(loaded).expect("validates");
    let pure = model.infer(&pure_req).expect("pure path");
    let blended = model.infer(&knn_req).expect("interpolated path");
    assert_eq!(pure.len(), blended.len());
}

#[test]
fn v1_bytes_are_identical_with_and_without_knn_support_compiled_in() {
    // The writer emits v1 whenever there is no index, so pre-kNN readers
    // (which reject any version != 1) keep loading new no-index bundles.
    // Two fresh serializations must agree byte-for-byte — nothing about
    // the optional section may leak into the v1 layout.
    assert_eq!(bundle_bytes(false), bundle_bytes(false));
    assert_ne!(
        bundle_bytes(false).len(),
        bundle_bytes(true).len(),
        "v2 must actually append the index section"
    );
}

#[test]
fn unknown_version_is_a_typed_error() {
    let mut bytes = bundle_bytes(true);
    bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
    let err = read_bundle(&mut bytes.as_slice())
        .map(|_| ())
        .expect_err("version 9 must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("version"),
        "error should name the version field: {err}"
    );
}

#[test]
fn corrupt_or_truncated_index_section_is_a_typed_error() {
    let v1_len = bundle_bytes(false).len();
    let bytes = bundle_bytes(true);
    assert!(bytes.len() > v1_len, "v2 appends the index after the model");

    // Truncations inside the ANN section: magic, header, mid-body, and
    // just before the checksum.
    for cut in [
        v1_len + 2,
        v1_len + 10,
        (v1_len + bytes.len()) / 2,
        bytes.len() - 4,
    ] {
        let truncated = &bytes[..cut];
        let err = read_bundle(&mut &truncated[..])
            .map(|_| ())
            .expect_err("truncated index section must be rejected");
        assert!(
            err.kind() == std::io::ErrorKind::InvalidData
                || err.kind() == std::io::ErrorKind::UnexpectedEof,
            "cut at {cut}: unexpected error kind {:?}",
            err.kind()
        );
    }

    // Byte flips across the ANN section (its checksum catches content
    // corruption; structural validation catches the rest).
    for offset in [v1_len, v1_len + 9, v1_len + 40, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[offset] ^= 0x5A;
        let err = read_bundle(&mut bad.as_slice())
            .map(|_| ())
            .expect_err("corrupt index section must be rejected");
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "flip at {offset}"
        );
    }
}

#[test]
fn index_build_is_byte_identical_across_thread_counts() {
    // The engine's determinism contract: the serving index (and with it the
    // whole v2 bundle) is byte-identical whether representations were
    // computed on one thread or four. `with_pool` scopes the pool override,
    // so both sides run in one process.
    let serial = with_pool(&ThreadPool::new(1), || bundle_bytes(true));
    let parallel = with_pool(&ThreadPool::new(4), || bundle_bytes(true));
    assert_eq!(
        serial, parallel,
        "--threads must never change the bundle bytes"
    );
    // And across repeated builds on the ambient pool.
    assert_eq!(bundle_bytes(true), bundle_bytes(true));
}

#[test]
fn knn_request_against_index_less_bundle_is_typed_no_knn_index() {
    let loaded = read_bundle(&mut bundle_bytes(false).as_slice()).expect("v1 loads");
    let req = request(&loaded, Some((4, 0.5)));
    let model = ServingModel::new(loaded).expect("validates");
    match model.infer(&req) {
        Err(ServeError::NoKnnIndex) => {}
        other => panic!("expected NoKnnIndex, got {other:?}"),
    }
    assert_eq!(ServeError::NoKnnIndex.code(), "no-knn-index");
}

#[test]
fn lambda_zero_is_bit_identical_to_index_less_serving() {
    // The λ=0 / knn=0 path must never consult the index: scores from a v2
    // bundle are bit-identical to the same model served from a v1 bundle.
    let v1 = ServingModel::new(read_bundle(&mut bundle_bytes(false).as_slice()).unwrap()).unwrap();
    let v2 = ServingModel::new(read_bundle(&mut bundle_bytes(true).as_slice()).unwrap()).unwrap();
    for knn in [None, Some((0, 0.5)), Some((8, 0.0))] {
        let req_v1 = request(v1.bundle(), None);
        let req_v2 = request(v2.bundle(), knn);
        let a = v1.infer(&req_v1).expect("v1 serves");
        let b = v2.infer(&req_v2).expect("v2 serves");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.relation, y.relation);
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "knn={knn:?}: λ=0 must be bit-identical to index-less serving"
            );
        }
    }
}

#[test]
fn interpolation_actually_changes_scores() {
    let v2 = ServingModel::new(read_bundle(&mut bundle_bytes(true).as_slice()).unwrap()).unwrap();
    let pure = v2.infer(&request(v2.bundle(), None)).unwrap();
    let blended = v2.infer(&request(v2.bundle(), Some((8, 0.5)))).unwrap();
    let pure_bits: Vec<u32> = pure.iter().map(|r| r.score.to_bits()).collect();
    let blended_bits: Vec<u32> = blended.iter().map(|r| r.score.to_bits()).collect();
    assert_ne!(
        pure_bits, blended_bits,
        "λ=0.5 with 8 neighbors must move the scores"
    );
}

#[test]
fn out_of_range_lambda_is_rejected_before_the_forward_pass() {
    let v2 = ServingModel::new(read_bundle(&mut bundle_bytes(true).as_slice()).unwrap()).unwrap();
    for lambda in [-0.1f32, 1.5, f32::NAN] {
        match v2.infer(&request(v2.bundle(), Some((4, lambda)))) {
            Err(ServeError::BadRequest(msg)) => {
                assert!(msg.contains("lambda"), "message should name lambda: {msg}")
            }
            other => panic!("lambda={lambda}: expected BadRequest, got {other:?}"),
        }
    }
}
