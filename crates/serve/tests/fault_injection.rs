//! Deterministic fault-injection tests for the serving request lifecycle:
//! slow/idle clients, mid-batch and zero-worker shutdown, expired
//! deadlines, and full-queue shedding.
//!
//! Every scenario here is *model-free* — it drives the engine against an
//! empty registry, because the lifecycle paths under test (deadline shed at
//! dequeue, shutdown drain, stop-aware connections) must all fire *before*
//! any model is resolved or a forward pass runs. That keeps the whole suite
//! fast enough for a tight CI loop (`scripts/ci.sh serve-faults`).

use imre_serve::{EngineConfig, InferRequest, Registry, ServeError, ServeHandle, TcpServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// A syntactically valid request; the engine sheds or fails it before any
/// model lookup, so the empty registry is never consulted.
fn request(i: usize) -> InferRequest {
    InferRequest {
        model: "ghost".to_string(),
        head: "a".to_string(),
        tail: "b".to_string(),
        text: format!("a relates to b case {i}"),
        top_k: 0,
        deadline_ms: None,
        ..InferRequest::default()
    }
}

fn start_engine(config: EngineConfig) -> ServeHandle {
    ServeHandle::start(Arc::new(Registry::new()), config)
}

/// Runs `f` on a helper thread and panics if it has not finished within
/// `limit` — turns a would-be infinite hang into a crisp test failure.
fn assert_finishes_within<T: Send + 'static>(
    limit: Duration,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(value) => {
            thread.join().expect("helper thread");
            value
        }
        Err(_) => panic!("{what} did not finish within {limit:?}"),
    }
}

#[test]
fn stop_joins_idle_connection_within_one_second() {
    let handle = start_engine(EngineConfig::default());
    let mut server = TcpServer::spawn(handle.clone(), "127.0.0.1:0").expect("bind");

    // An idle client: connects, completes one round-trip so we know its
    // connection thread is up, then never sends another byte.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"ping\n").expect("write ping");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read pong");
    assert_eq!(line.trim_end(), "ok pong");
    assert_eq!(
        handle.metrics().active_connections.load(Ordering::Relaxed),
        1,
        "connection thread must be tracked while the client is connected"
    );

    // stop() must join the accept loop AND the idle connection thread —
    // the connection polls the stop flag on its read-timeout tick, so the
    // whole drain is bounded well under a second.
    let start = Instant::now();
    assert_finishes_within(Duration::from_secs(1), "TcpServer::stop()", move || {
        server.stop();
    });
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "stop took {:?} with an idle client connected",
        start.elapsed()
    );
    assert_eq!(
        handle.metrics().active_connections.load(Ordering::Relaxed),
        0,
        "connection gauge must return to zero after stop"
    );
    handle.shutdown();
}

#[test]
fn shutdown_with_zero_workers_answers_every_queued_pending() {
    // workers: 0 — nothing ever drains the queue, so shutdown itself must
    // fail-fast the queued jobs instead of waiting for a drain that will
    // never happen.
    let handle = start_engine(EngineConfig {
        workers: 0,
        queue_capacity: 16,
        ..EngineConfig::default()
    });
    let pending: Vec<_> = (0..8)
        .map(|i| handle.submit(request(i)).expect("submit"))
        .collect();

    {
        let handle = handle.clone();
        assert_finishes_within(Duration::from_secs(2), "shutdown(workers=0)", move || {
            handle.shutdown();
        });
    }

    for (i, p) in pending.into_iter().enumerate() {
        match assert_finishes_within(Duration::from_secs(1), "Pending::wait", move || p.wait()) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("queued request {i}: expected ShuttingDown, got {other:?}"),
        }
    }
    let m = handle.metrics();
    assert_eq!(m.shed.load(Ordering::Relaxed), 8);
    assert_eq!(m.errors.load(Ordering::Relaxed), 8);
    assert_eq!(m.deadline_expired.load(Ordering::Relaxed), 0);
}

#[test]
fn expired_deadline_is_shed_without_featurize_or_forward() {
    let handle = start_engine(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    // deadline_ms: 0 — expired the instant it was submitted, so the worker
    // dequeues an already-dead job. It must be answered DeadlineExceeded
    // without touching the registry (which would yield UnknownModel), the
    // featurizer, or the forward pass.
    let mut req = request(0);
    req.deadline_ms = Some(0);
    let p = handle.submit(req).expect("submit");
    match assert_finishes_within(Duration::from_secs(2), "deadline wait", move || p.wait()) {
        Err(ServeError::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 0),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let m = handle.metrics();
    assert_eq!(
        m.forward.count(),
        0,
        "an expired request must not run a forward pass"
    );
    assert_eq!(
        m.featurize.count(),
        0,
        "an expired request must not be featurized"
    );
    assert_eq!(m.deadline_expired.load(Ordering::Relaxed), 1);
    assert_eq!(m.shed.load(Ordering::Relaxed), 1);

    // A request without a deadline on the same engine reaches the registry
    // (UnknownModel), proving the worker is alive and only expired jobs
    // were short-circuited.
    match handle.infer(request(1)) {
        Err(ServeError::UnknownModel(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn engine_default_deadline_applies_to_requests_without_their_own() {
    let handle = start_engine(EngineConfig {
        workers: 1,
        default_deadline_ms: Some(0),
        ..EngineConfig::default()
    });
    let p = handle.submit(request(0)).expect("submit");
    match assert_finishes_within(Duration::from_secs(2), "deadline wait", move || p.wait()) {
        Err(ServeError::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 0),
        other => panic!("expected DeadlineExceeded via engine default, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn wait_timeout_leaves_request_in_flight() {
    let handle = start_engine(EngineConfig {
        workers: 0,
        ..EngineConfig::default()
    });
    let p = handle.submit(request(0)).expect("submit");
    // Nothing will ever answer (no workers): wait_timeout must give up
    // cleanly instead of blocking forever…
    assert!(
        p.wait_timeout(Duration::from_millis(20)).is_none(),
        "wait_timeout must report a still-in-flight request as None"
    );
    assert!(p.poll().is_none());
    // …and the request stays submitted: shutdown still answers it.
    handle.shutdown();
    match p.wait_timeout(Duration::from_secs(1)) {
        Some(Err(ServeError::ShuttingDown)) => {}
        other => panic!("expected ShuttingDown after shutdown, got {other:?}"),
    }
}

#[test]
fn full_queue_sheds_at_submission_and_stats_render_lifecycle_counters() {
    let handle = start_engine(EngineConfig {
        workers: 0,
        queue_capacity: 2,
        ..EngineConfig::default()
    });
    let _p0 = handle.submit(request(0)).expect("first fits");
    let _p1 = handle.submit(request(1)).expect("second fits");
    match handle.submit(request(2)) {
        Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        Err(other) => panic!("expected QueueFull, got {other:?}"),
        Ok(_) => panic!("expected QueueFull, got an accepted request"),
    }
    handle.shutdown();

    // Regression: the stats dump must render every lifecycle counter.
    let stats = handle.stats_text();
    assert!(
        stats.contains("rejected_queue_full=1"),
        "stats missing queue-full rejection:\n{stats}"
    );
    assert!(
        stats.contains("lifecycle: deadline_expired=0 shed=2 active_connections=0"),
        "stats missing lifecycle counters:\n{stats}"
    );
}

#[test]
fn expired_deadline_over_tcp_answers_with_the_wire_code() {
    let handle = start_engine(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let mut server = TcpServer::spawn(handle.clone(), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"infer model=ghost head=a tail=b deadline=0 text=a b\n")
        .expect("write infer");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(
        line.starts_with("err deadline-exceeded"),
        "expected deadline-exceeded on the wire, got {line:?}"
    );
    server.stop();
    handle.shutdown();
}

#[test]
fn stop_with_mid_request_client_still_joins_promptly() {
    // A "slow loris" client that sends half a request line and stalls: the
    // connection thread is mid-read with a partial line buffered. stop()
    // must still take it down on the next read-timeout tick.
    let handle = start_engine(EngineConfig::default());
    let mut server = TcpServer::spawn(handle.clone(), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(b"infer model=ghost hea")
        .expect("half a line");
    writer.flush().expect("flush");
    // Let the connection thread absorb the partial line.
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    assert_finishes_within(Duration::from_secs(1), "TcpServer::stop()", move || {
        server.stop();
    });
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "stop took {:?} with a stalled mid-request client",
        start.elapsed()
    );
    handle.shutdown();
}

#[test]
fn mid_batch_shutdown_answers_both_halves() {
    // One worker, batch_max 2, and a queue holding more jobs than one
    // batch: close the queue while the worker is somewhere in its
    // batch cycle. Everything the worker dequeues is answered by the
    // worker (UnknownModel from the empty registry); everything still
    // queued when the worker exits is failed fast by shutdown. Either way,
    // every Pending resolves.
    let handle = start_engine(EngineConfig {
        workers: 1,
        batch_max: 2,
        batch_deadline: Duration::from_millis(1),
        queue_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let pending: Vec<_> = (0..32)
        .map(|i| handle.submit(request(i)).expect("submit"))
        .collect();
    {
        let handle = handle.clone();
        assert_finishes_within(Duration::from_secs(5), "mid-batch shutdown", move || {
            handle.shutdown();
        });
    }
    let mut answered = 0;
    for (i, p) in pending.into_iter().enumerate() {
        match assert_finishes_within(Duration::from_secs(1), "Pending::wait", move || p.wait()) {
            Err(ServeError::UnknownModel(_)) | Err(ServeError::ShuttingDown) => answered += 1,
            other => panic!("request {i}: unexpected reply {other:?}"),
        }
    }
    assert_eq!(answered, 32, "every pending must resolve across shutdown");
    let m = handle.metrics();
    assert_eq!(
        m.errors.load(Ordering::Relaxed),
        32,
        "all 32 must be accounted as errors (UnknownModel or ShuttingDown)"
    );
}
