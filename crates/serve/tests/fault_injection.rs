//! Deterministic fault-injection tests for the serving request lifecycle:
//! slow/idle clients, mid-batch and zero-worker shutdown, expired
//! deadlines, and full-queue shedding.
//!
//! Every scenario here is *model-free* — it drives the engine against an
//! empty registry, because the lifecycle paths under test (deadline shed at
//! dequeue, shutdown drain, stop-aware connections) must all fire *before*
//! any model is resolved or a forward pass runs. That keeps the whole suite
//! fast enough for a tight CI loop (`scripts/ci.sh serve-faults`).

use imre_serve::{EngineConfig, InferRequest, Registry, ServeError, ServeHandle, TcpServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Reads one protocol reply — payload lines up to (and consuming) the empty
/// terminator line. Panics on EOF mid-reply so a dropped connection shows up
/// as a crisp failure, not a hang.
fn read_reply(reader: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read reply line");
        assert!(n > 0, "peer closed mid-reply; got {lines:?}");
        let line = line.trim_end_matches(['\r', '\n']).to_string();
        if line.is_empty() {
            return lines;
        }
        lines.push(line);
    }
}

/// Polls `probe` until it returns true or `limit` elapses.
fn wait_until(limit: Duration, what: &str, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(
            start.elapsed() < limit,
            "{what} not reached within {limit:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A syntactically valid request; the engine sheds or fails it before any
/// model lookup, so the empty registry is never consulted.
fn request(i: usize) -> InferRequest {
    InferRequest {
        model: "ghost".to_string(),
        head: "a".to_string(),
        tail: "b".to_string(),
        text: format!("a relates to b case {i}"),
        top_k: 0,
        deadline_ms: None,
        ..InferRequest::default()
    }
}

fn start_engine(config: EngineConfig) -> ServeHandle {
    ServeHandle::start(Arc::new(Registry::new()), config)
}

/// Runs `f` on a helper thread and panics if it has not finished within
/// `limit` — turns a would-be infinite hang into a crisp test failure.
fn assert_finishes_within<T: Send + 'static>(
    limit: Duration,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(value) => {
            thread.join().expect("helper thread");
            value
        }
        Err(_) => panic!("{what} did not finish within {limit:?}"),
    }
}

#[test]
fn stop_joins_idle_connection_within_one_second() {
    let handle = start_engine(EngineConfig::default());
    let mut server = TcpServer::spawn(handle.clone(), "127.0.0.1:0").expect("bind");

    // An idle client: connects, completes one round-trip so we know its
    // connection thread is up, then never sends another byte.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"ping\n").expect("write ping");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read pong");
    assert_eq!(line.trim_end(), "ok pong");
    assert_eq!(
        handle.metrics().active_connections.load(Ordering::Relaxed),
        1,
        "connection thread must be tracked while the client is connected"
    );

    // stop() must join the accept loop AND the idle connection thread —
    // the connection polls the stop flag on its read-timeout tick, so the
    // whole drain is bounded well under a second.
    let start = Instant::now();
    assert_finishes_within(Duration::from_secs(1), "TcpServer::stop()", move || {
        server.stop();
    });
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "stop took {:?} with an idle client connected",
        start.elapsed()
    );
    assert_eq!(
        handle.metrics().active_connections.load(Ordering::Relaxed),
        0,
        "connection gauge must return to zero after stop"
    );
    handle.shutdown();
}

#[test]
fn shutdown_with_zero_workers_answers_every_queued_pending() {
    // workers: 0 — nothing ever drains the queue, so shutdown itself must
    // fail-fast the queued jobs instead of waiting for a drain that will
    // never happen.
    let handle = start_engine(EngineConfig {
        workers: 0,
        queue_capacity: 16,
        ..EngineConfig::default()
    });
    let pending: Vec<_> = (0..8)
        .map(|i| handle.submit(request(i)).expect("submit"))
        .collect();

    {
        let handle = handle.clone();
        assert_finishes_within(Duration::from_secs(2), "shutdown(workers=0)", move || {
            handle.shutdown();
        });
    }

    for (i, p) in pending.into_iter().enumerate() {
        match assert_finishes_within(Duration::from_secs(1), "Pending::wait", move || p.wait()) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("queued request {i}: expected ShuttingDown, got {other:?}"),
        }
    }
    let m = handle.metrics();
    assert_eq!(m.shed.load(Ordering::Relaxed), 8);
    assert_eq!(m.errors.load(Ordering::Relaxed), 8);
    assert_eq!(m.deadline_expired.load(Ordering::Relaxed), 0);
}

#[test]
fn expired_deadline_is_shed_without_featurize_or_forward() {
    let handle = start_engine(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    // deadline_ms: 0 — expired the instant it was submitted, so the worker
    // dequeues an already-dead job. It must be answered DeadlineExceeded
    // without touching the registry (which would yield UnknownModel), the
    // featurizer, or the forward pass.
    let mut req = request(0);
    req.deadline_ms = Some(0);
    let p = handle.submit(req).expect("submit");
    match assert_finishes_within(Duration::from_secs(2), "deadline wait", move || p.wait()) {
        Err(ServeError::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 0),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let m = handle.metrics();
    assert_eq!(
        m.forward.count(),
        0,
        "an expired request must not run a forward pass"
    );
    assert_eq!(
        m.featurize.count(),
        0,
        "an expired request must not be featurized"
    );
    assert_eq!(m.deadline_expired.load(Ordering::Relaxed), 1);
    assert_eq!(m.shed.load(Ordering::Relaxed), 1);

    // A request without a deadline on the same engine reaches the registry
    // (UnknownModel), proving the worker is alive and only expired jobs
    // were short-circuited.
    match handle.infer(request(1)) {
        Err(ServeError::UnknownModel(name)) => assert_eq!(name, "ghost"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn engine_default_deadline_applies_to_requests_without_their_own() {
    let handle = start_engine(EngineConfig {
        workers: 1,
        default_deadline_ms: Some(0),
        ..EngineConfig::default()
    });
    let p = handle.submit(request(0)).expect("submit");
    match assert_finishes_within(Duration::from_secs(2), "deadline wait", move || p.wait()) {
        Err(ServeError::DeadlineExceeded { budget_ms }) => assert_eq!(budget_ms, 0),
        other => panic!("expected DeadlineExceeded via engine default, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn wait_timeout_leaves_request_in_flight() {
    let handle = start_engine(EngineConfig {
        workers: 0,
        ..EngineConfig::default()
    });
    let p = handle.submit(request(0)).expect("submit");
    // Nothing will ever answer (no workers): wait_timeout must give up
    // cleanly instead of blocking forever…
    assert!(
        p.wait_timeout(Duration::from_millis(20)).is_none(),
        "wait_timeout must report a still-in-flight request as None"
    );
    assert!(p.poll().is_none());
    // …and the request stays submitted: shutdown still answers it.
    handle.shutdown();
    match p.wait_timeout(Duration::from_secs(1)) {
        Some(Err(ServeError::ShuttingDown)) => {}
        other => panic!("expected ShuttingDown after shutdown, got {other:?}"),
    }
}

#[test]
fn full_queue_sheds_at_submission_and_stats_render_lifecycle_counters() {
    let handle = start_engine(EngineConfig {
        workers: 0,
        queue_capacity: 2,
        ..EngineConfig::default()
    });
    let _p0 = handle.submit(request(0)).expect("first fits");
    let _p1 = handle.submit(request(1)).expect("second fits");
    match handle.submit(request(2)) {
        Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 2),
        Err(other) => panic!("expected QueueFull, got {other:?}"),
        Ok(_) => panic!("expected QueueFull, got an accepted request"),
    }
    handle.shutdown();

    // Regression: the stats dump must render every lifecycle counter.
    let stats = handle.stats_text();
    assert!(
        stats.contains("rejected_queue_full=1"),
        "stats missing queue-full rejection:\n{stats}"
    );
    assert!(
        stats.contains("lifecycle: deadline_expired=0 shed=2 active_connections=0"),
        "stats missing lifecycle counters:\n{stats}"
    );
}

#[test]
fn expired_deadline_over_tcp_answers_with_the_wire_code() {
    let handle = start_engine(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let mut server = TcpServer::spawn(handle.clone(), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"infer model=ghost head=a tail=b deadline=0 text=a b\n")
        .expect("write infer");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(
        line.starts_with("err deadline-exceeded"),
        "expected deadline-exceeded on the wire, got {line:?}"
    );
    server.stop();
    handle.shutdown();
}

#[test]
fn stop_with_mid_request_client_still_joins_promptly() {
    // A "slow loris" client that sends half a request line and stalls: the
    // connection thread is mid-read with a partial line buffered. stop()
    // must still take it down on the next read-timeout tick.
    let handle = start_engine(EngineConfig::default());
    let mut server = TcpServer::spawn(handle.clone(), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(b"infer model=ghost hea")
        .expect("half a line");
    writer.flush().expect("flush");
    // Let the connection thread absorb the partial line.
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    assert_finishes_within(Duration::from_secs(1), "TcpServer::stop()", move || {
        server.stop();
    });
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "stop took {:?} with a stalled mid-request client",
        start.elapsed()
    );
    handle.shutdown();
}

#[test]
fn mid_batch_shutdown_answers_both_halves() {
    // One worker, batch_max 2, and a queue holding more jobs than one
    // batch: close the queue while the worker is somewhere in its
    // batch cycle. Everything the worker dequeues is answered by the
    // worker (UnknownModel from the empty registry); everything still
    // queued when the worker exits is failed fast by shutdown. Either way,
    // every Pending resolves.
    let handle = start_engine(EngineConfig {
        workers: 1,
        batch_max: 2,
        batch_deadline: Duration::from_millis(1),
        queue_capacity: 64,
        default_deadline_ms: None,
        ..EngineConfig::default()
    });
    let pending: Vec<_> = (0..32)
        .map(|i| handle.submit(request(i)).expect("submit"))
        .collect();
    {
        let handle = handle.clone();
        assert_finishes_within(Duration::from_secs(5), "mid-batch shutdown", move || {
            handle.shutdown();
        });
    }
    let mut answered = 0;
    for (i, p) in pending.into_iter().enumerate() {
        match assert_finishes_within(Duration::from_secs(1), "Pending::wait", move || p.wait()) {
            Err(ServeError::UnknownModel(_)) | Err(ServeError::ShuttingDown) => answered += 1,
            other => panic!("request {i}: unexpected reply {other:?}"),
        }
    }
    assert_eq!(answered, 32, "every pending must resolve across shutdown");
    let m = handle.metrics();
    assert_eq!(
        m.errors.load(Ordering::Relaxed),
        32,
        "all 32 must be accounted as errors (UnknownModel or ShuttingDown)"
    );
}

/// Fault injection specific to the epoll event-loop front end: incremental
/// framing under trickled input, admission control (per-connection in-flight
/// cap, global connection cap), oversized-line rejection, completions racing
/// disconnects, and stop at connection scale. Each test pins
/// [`FrontendKind::EventLoop`] explicitly so the suite keeps exercising the
/// event loop even if the `Auto` default or `IMRE_SERVE_FRONTEND` changes.
#[cfg(target_os = "linux")]
mod event_loop {
    use super::*;
    use imre_serve::{FrontendConfig, FrontendKind};

    fn epoll_cfg() -> FrontendConfig {
        FrontendConfig {
            frontend: FrontendKind::EventLoop,
            ..FrontendConfig::default()
        }
    }

    /// Connects to `server`, returning a writer plus a buffered reader with
    /// a generous read timeout so a lost reply fails the test instead of
    /// hanging it.
    fn connect(server: &TcpServer) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        (stream, reader)
    }

    const INFER_LINE: &[u8] = b"infer model=ghost head=a tail=b text=a b\n";

    #[test]
    fn trickled_request_line_does_not_stall_other_connections() {
        let handle = start_engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let mut server =
            TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", epoll_cfg()).expect("bind");

        // A slow-loris client trickles one request line a few bytes at a
        // time; between every fragment a second connection must stay fully
        // responsive (its reads would time out if the loop stalled on the
        // partial line).
        let (mut slow, mut slow_reader) = connect(&server);
        let (mut fast, mut fast_reader) = connect(&server);
        for chunk in INFER_LINE.chunks(5) {
            slow.write_all(chunk).expect("trickle fragment");
            slow.flush().expect("flush fragment");
            fast.write_all(b"ping\n").expect("interleaved ping");
            assert_eq!(read_reply(&mut fast_reader), vec!["ok pong".to_string()]);
        }

        // Once the final fragment lands, the reassembled line parses and
        // resolves like any other request (UnknownModel from the empty
        // registry proves it reached the engine intact).
        let reply = read_reply(&mut slow_reader);
        assert_eq!(reply.len(), 1, "one reply line, got {reply:?}");
        assert!(
            reply[0].starts_with("err unknown-model"),
            "trickled line must reassemble into a real request, got {reply:?}"
        );
        server.stop();
        handle.shutdown();
    }

    #[test]
    fn oversized_line_answers_typed_bad_request_and_closes() {
        // Both front ends share the max_line_bytes bound and the typed
        // reject; pin each explicitly.
        for frontend in [FrontendKind::EventLoop, FrontendKind::Threads] {
            let handle = start_engine(EngineConfig::default());
            let cfg = FrontendConfig {
                frontend,
                max_line_bytes: 256,
                ..FrontendConfig::default()
            };
            let mut server =
                TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", cfg).expect("bind");
            let (mut stream, mut reader) = connect(&server);
            // 1 KiB with no newline: the framer must reject the connection
            // without ever seeing a complete line.
            stream.write_all(&[b'a'; 1024]).expect("write oversized");
            stream.flush().expect("flush");
            let reply = read_reply(&mut reader);
            assert!(
                reply[0].starts_with("err bad-request"),
                "{frontend:?}: expected typed bad-request, got {reply:?}"
            );
            let mut extra = String::new();
            assert_eq!(
                reader.read_line(&mut extra).expect("read after reject"),
                0,
                "{frontend:?}: connection must close after the oversized reject"
            );
            server.stop();
            handle.shutdown();
        }
    }

    #[test]
    fn fast_newline_free_stream_is_rejected_mid_line() {
        // A hostile client streaming newline-free bytes *without pausing*
        // never trips a read timeout, so the cap must be enforced per read
        // chunk, mid-line — not only between reads. Regression test for the
        // threaded framer, which previously let `read_line` grow the buffer
        // unboundedly for exactly this client; the event loop rides along.
        for frontend in [FrontendKind::EventLoop, FrontendKind::Threads] {
            let handle = start_engine(EngineConfig::default());
            let cfg = FrontendConfig {
                frontend,
                max_line_bytes: 256,
                ..FrontendConfig::default()
            };
            let mut server =
                TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", cfg).expect("bind");
            let (stream, mut reader) = connect(&server);
            let writer = std::thread::spawn(move || {
                // Stream far past the cap with no gap between writes; stop
                // only when the server closes the socket on us.
                let chunk = [b'x'; 4096];
                let mut sent = 0usize;
                let mut stream = stream;
                while sent < 8 * 1024 * 1024 {
                    match stream.write_all(&chunk) {
                        Ok(()) => sent += chunk.len(),
                        Err(_) => break, // reset/EPIPE after the reject
                    }
                }
            });
            let reply = read_reply(&mut reader);
            assert!(
                reply[0].starts_with("err bad-request"),
                "{frontend:?}: expected typed bad-request mid-stream, got {reply:?}"
            );
            writer.join().expect("writer thread");
            server.stop();
            handle.shutdown();
        }
    }

    #[test]
    fn mid_request_disconnect_drops_the_completion_safely() {
        // workers: 0 — the submitted request can only resolve at shutdown,
        // by which point the client is long gone. The completion must be
        // dropped (dead socket), the connection closed, and the gauge
        // returned to zero; nothing may panic or hang.
        let handle = start_engine(EngineConfig {
            workers: 0,
            ..EngineConfig::default()
        });
        let mut server =
            TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", epoll_cfg()).expect("bind");
        let (mut stream, reader) = connect(&server);
        stream.write_all(INFER_LINE).expect("write infer");
        stream.flush().expect("flush");
        let metrics = handle.metrics();
        wait_until(Duration::from_secs(2), "request submitted", || {
            metrics.submitted.load(Ordering::Relaxed) == 1
        });
        drop(stream);
        drop(reader);

        {
            let handle = handle.clone();
            assert_finishes_within(
                Duration::from_secs(2),
                "shutdown with a dead client",
                move || handle.shutdown(),
            );
        }
        // The loop delivers the ShuttingDown completion, finds the peer
        // gone, and closes the connection.
        wait_until(Duration::from_secs(2), "connection reaped", || {
            metrics.active_connections.load(Ordering::Relaxed) == 0
        });
        assert_finishes_within(Duration::from_secs(1), "TcpServer::stop()", move || {
            server.stop();
        });
    }

    #[test]
    fn stop_with_a_thousand_idle_connections_is_prompt() {
        let handle = start_engine(EngineConfig::default());
        let cfg = FrontendConfig {
            frontend: FrontendKind::EventLoop,
            max_connections: 1_200,
            ..FrontendConfig::default()
        };
        let mut server = TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", cfg).expect("bind");
        let conns: Vec<TcpStream> = (0..1_000)
            .map(|i| {
                TcpStream::connect(server.local_addr())
                    .unwrap_or_else(|e| panic!("connect {i}: {e}"))
            })
            .collect();
        let metrics = handle.metrics();
        wait_until(Duration::from_secs(10), "1000 connections accepted", || {
            metrics.active_connections.load(Ordering::Relaxed) == 1_000
        });

        // One loop thread owns all 1000 sockets: stop() wakes it once and it
        // closes everything — no per-connection threads to join.
        let start = Instant::now();
        assert_finishes_within(Duration::from_secs(2), "TcpServer::stop()", move || {
            server.stop();
        });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "stop took {:?} with 1000 idle connections",
            start.elapsed()
        );
        assert_eq!(
            metrics.active_connections.load(Ordering::Relaxed),
            0,
            "gauge must return to zero after stop"
        );
        drop(conns);
        handle.shutdown();
    }

    #[test]
    fn pipelined_burst_beyond_inflight_cap_rejects_and_keeps_reply_order() {
        // workers: 0 keeps the first four submissions parked in the queue,
        // so the burst deterministically exceeds the in-flight cap.
        let handle = start_engine(EngineConfig {
            workers: 0,
            queue_capacity: 64,
            ..EngineConfig::default()
        });
        let cfg = FrontendConfig {
            frontend: FrontendKind::EventLoop,
            max_inflight_per_conn: 4,
            ..FrontendConfig::default()
        };
        let mut server = TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", cfg).expect("bind");
        let (mut stream, mut reader) = connect(&server);
        let burst: Vec<u8> = INFER_LINE.repeat(7);
        stream.write_all(&burst).expect("write burst");
        stream.flush().expect("flush");

        let metrics = handle.metrics();
        wait_until(Duration::from_secs(2), "3 in-flight rejections", || {
            metrics.rejected_inflight.load(Ordering::Relaxed) == 3
        });
        assert_eq!(
            metrics.submitted.load(Ordering::Relaxed),
            4,
            "exactly the cap's worth of requests may reach the queue"
        );

        // The rejects (seq 4..6) resolved instantly but must wait in the
        // reorder buffer until shutdown fail-fasts seq 0..3 — replies come
        // back in submission order regardless of completion order.
        handle.shutdown();
        let replies: Vec<String> = (0..7).map(|_| read_reply(&mut reader).join(" ")).collect();
        for (i, reply) in replies[..4].iter().enumerate() {
            assert!(
                reply.starts_with("err shutting-down"),
                "reply {i}: expected shutting-down, got {reply:?}"
            );
        }
        for (i, reply) in replies[4..].iter().enumerate() {
            assert!(
                reply.starts_with("err server-busy"),
                "reply {}: expected server-busy, got {reply:?}",
                i + 4
            );
        }
        server.stop();
    }

    #[test]
    fn connection_cap_rejects_the_excess_connection() {
        let handle = start_engine(EngineConfig::default());
        let cfg = FrontendConfig {
            frontend: FrontendKind::EventLoop,
            max_connections: 2,
            ..FrontendConfig::default()
        };
        let mut server = TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", cfg).expect("bind");

        // Fill the cap with two live connections (round-trips prove both
        // are registered, not just queued in the accept backlog).
        let (mut s1, mut r1) = connect(&server);
        s1.write_all(b"ping\n").expect("ping 1");
        assert_eq!(read_reply(&mut r1), vec!["ok pong".to_string()]);
        let (mut s2, mut r2) = connect(&server);
        s2.write_all(b"ping\n").expect("ping 2");
        assert_eq!(read_reply(&mut r2), vec!["ok pong".to_string()]);

        // The third connection is told why and closed — never silently
        // dropped.
        let (_s3, mut r3) = connect(&server);
        let reply = read_reply(&mut r3);
        assert!(
            reply[0].starts_with("err server-busy"),
            "expected typed server-busy at accept, got {reply:?}"
        );
        let mut extra = String::new();
        assert_eq!(
            r3.read_line(&mut extra).expect("read after reject"),
            0,
            "rejected connection must be closed"
        );
        assert_eq!(
            handle.metrics().rejected_conn_cap.load(Ordering::Relaxed),
            1
        );

        // Capacity frees as soon as an admitted connection leaves.
        s1.write_all(b"quit\n").expect("quit");
        let mut eof = String::new();
        assert_eq!(r1.read_line(&mut eof).expect("quit closes"), 0);
        wait_until(Duration::from_secs(2), "slot released", || {
            handle.metrics().active_connections.load(Ordering::Relaxed) == 1
        });
        let (mut s4, mut r4) = connect(&server);
        s4.write_all(b"ping\n").expect("ping 4");
        assert_eq!(read_reply(&mut r4), vec!["ok pong".to_string()]);

        server.stop();
        handle.shutdown();
    }

    #[test]
    fn deadline_expiry_over_pipelined_connection_keeps_reply_order() {
        let handle = start_engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let mut server =
            TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", epoll_cfg()).expect("bind");
        let (mut stream, mut reader) = connect(&server);
        // Two pipelined requests in one segment: the first is born expired
        // (deadline=0) and is shed at dequeue; the second resolves normally
        // (UnknownModel from the empty registry). Replies must come back in
        // submission order with the right code on each.
        stream
            .write_all(b"infer model=ghost head=a tail=b deadline=0 text=a b\ninfer model=ghost head=a tail=b text=a b\n")
            .expect("write pipelined pair");
        stream.flush().expect("flush");
        let first = read_reply(&mut reader);
        assert!(
            first[0].starts_with("err deadline-exceeded"),
            "first reply must be the shed request, got {first:?}"
        );
        let second = read_reply(&mut reader);
        assert!(
            second[0].starts_with("err unknown-model"),
            "second reply must resolve normally, got {second:?}"
        );
        assert_eq!(handle.metrics().deadline_expired.load(Ordering::Relaxed), 1);
        server.stop();
        handle.shutdown();
    }
}
