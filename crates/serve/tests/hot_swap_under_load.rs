//! Hot-swap under load: 256 concurrently connected epoll clients stream
//! pipelined requests while the registry republishes the serving bundle
//! over and over (the stream updater's publish path). Every connection must
//! see every reply, in order; and the swapped-out mmap-backed bundles must
//! unmap only after their last borrower drops (observed via the
//! `live_mappings` gauge).
#![cfg(target_os = "linux")]

use imre_core::{HyperParams, ModelSpec, QuantModel};
use imre_eval::{build_index, smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{
    live_mappings, load_bundle, save_bundle, Bundle, EngineConfig, FrontendConfig, FrontendKind,
    Registry, ServeHandle, ServingModel, TcpServer,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const CONNECTIONS: usize = 256;
const REQUESTS_PER_CONN: usize = 24;
const PIPELINE_CHUNK: usize = 12;
const REPUBLISHES: usize = 6;

struct Fixture {
    bundle_bytes: Vec<u8>,
    entity_names: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 2,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(5), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
        let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let ann = build_index(&pipeline, &model, 7);
        let quant = QuantModel::from_model(&model, Some(&embedding)).expect("quantizes");
        // quant forces a v3 bundle, so disk loads go through the mmap path.
        let bundle = Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        )
        .with_ann(ann)
        .with_quant(quant);
        let mut bundle_bytes = Vec::new();
        imre_serve::write_bundle(&bundle, &mut bundle_bytes).expect("serialize");
        let entity_names = bundle
            .entities
            .iter()
            .map(|(name, _)| name.clone())
            .collect();
        Fixture {
            bundle_bytes,
            entity_names,
        }
    })
}

/// The request line for slot `i` of a connection, and a checker for its
/// reply. Three reply classes make drops and reorderings visible: a
/// misplaced reply fails the class check at that position.
fn request_line(conn: usize, i: usize) -> String {
    match i % 3 {
        0 => "ping".to_string(),
        1 => "models".to_string(),
        _ => {
            let names = &fixture().entity_names;
            let head = &names[(conn + i) % names.len()];
            let mut t = (conn + i * 7 + 3) % names.len();
            if t == (conn + i) % names.len() {
                t = (t + 1) % names.len();
            }
            let tail = &names[t];
            format!(
                "infer model=smoke head={head} tail={tail} text=records show {head} associated with {tail} in the region"
            )
        }
    }
}

fn check_reply(conn: usize, i: usize, lines: &[String]) {
    assert!(
        !lines.is_empty(),
        "conn {conn} reply {i} is empty (dropped reply)"
    );
    match i % 3 {
        0 => assert_eq!(lines, &["ok pong"], "conn {conn} reply {i} misordered"),
        1 => assert_eq!(lines, &["ok smoke"], "conn {conn} reply {i} misordered"),
        _ => assert!(
            lines[0].starts_with("ok ") && lines[0] != "ok pong" && lines[0] != "ok smoke",
            "conn {conn} reply {i} misordered or failed: {lines:?}"
        ),
    }
}

/// Reads one reply (lines up to the empty terminator). EOF mid-reply is a
/// dropped reply and fails loudly.
fn read_reply(conn: usize, reader: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read reply line");
        assert!(
            n > 0,
            "conn {conn}: peer closed mid-stream after {lines:?} (dropped replies)"
        );
        let line = line.trim_end_matches(['\r', '\n']).to_string();
        if line.is_empty() {
            return lines;
        }
        lines.push(line);
    }
}

fn wait_until(limit: Duration, what: &str, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(
            start.elapsed() < limit,
            "{what} not reached within {limit:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn republishing_under_256_connections_drops_and_reorders_nothing() {
    let dir = std::env::temp_dir().join(format!("imre_hot_swap_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.imrb");
    {
        let bundle = imre_serve::read_bundle(&mut fixture().bundle_bytes.as_slice())
            .expect("fixture parses");
        save_bundle(&bundle, &path).expect("saves");
    }

    let mappings_baseline = live_mappings();
    let registry = Arc::new(Registry::new());
    registry.load_file("smoke", &path).expect("mmap load");
    assert_eq!(
        live_mappings(),
        mappings_baseline + 1,
        "registry load must map the v3 file"
    );

    let handle = ServeHandle::start(
        Arc::clone(&registry),
        EngineConfig {
            workers: 4,
            batch_max: 32,
            batch_deadline: Duration::from_millis(1),
            queue_capacity: 8192,
            ..EngineConfig::default()
        },
    );
    let mut server = TcpServer::spawn_with(
        handle.clone(),
        "127.0.0.1:0",
        FrontendConfig {
            frontend: FrontendKind::EventLoop,
            max_connections: CONNECTIONS + 16,
            max_inflight_per_conn: PIPELINE_CHUNK + 4,
            ..FrontendConfig::default()
        },
    )
    .expect("epoll front end binds");
    let addr = server.local_addr();

    // A borrower of the *first* mapping, standing in for an in-flight batch
    // that outlives every republish below.
    let old = registry.get("smoke").expect("registered");

    let clients: Vec<_> = (0..CONNECTIONS)
        .map(|conn| {
            std::thread::Builder::new()
                .name(format!("swap-client-{conn}"))
                .spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut i = 0;
                    while i < REQUESTS_PER_CONN {
                        let chunk = PIPELINE_CHUNK.min(REQUESTS_PER_CONN - i);
                        let mut burst = String::new();
                        for j in 0..chunk {
                            burst.push_str(&request_line(conn, i + j));
                            burst.push('\n');
                        }
                        writer.write_all(burst.as_bytes()).expect("write burst");
                        writer.flush().expect("flush");
                        for j in 0..chunk {
                            let reply = read_reply(conn, &mut reader);
                            check_reply(conn, i + j, &reply);
                        }
                        i += chunk;
                    }
                })
                .expect("spawn client")
        })
        .collect();

    // Republish while the fleet is in flight: each cycle maps the file
    // afresh and swaps the registry entry, exactly like a stream publish.
    for cycle in 0..REPUBLISHES {
        let bundle = load_bundle(&path).expect("fresh mmap");
        let model = ServingModel::new(bundle).expect("validates");
        registry.insert("smoke", model);
        assert!(
            live_mappings() > mappings_baseline,
            "cycle {cycle}: the new mapping must be live"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    for (conn, client) in clients.into_iter().enumerate() {
        client
            .join()
            .unwrap_or_else(|_| panic!("client {conn} panicked"));
    }

    // Quiesce: swapped-out mappings unmap once their last borrower (engine
    // batches, replaced registry Arcs) drops. Two must remain — the current
    // registry entry and `old`, our deliberate long-lived borrower.
    wait_until(
        Duration::from_secs(10),
        "swapped-out mappings unmapped",
        || live_mappings() == mappings_baseline + 2,
    );

    // The deferred unmap fires exactly when the last borrower goes away.
    assert!(old.quant().expect("v3 quant").is_borrowed());
    drop(old);
    wait_until(
        Duration::from_secs(5),
        "old mapping unmapped after last borrower dropped",
        || live_mappings() == mappings_baseline + 1,
    );

    server.stop();
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
