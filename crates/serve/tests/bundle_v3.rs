//! `.imrb` version-3 contract: compat matrix across v1/v2/v3, zero-copy
//! mmap-vs-owned load identity, and typed rejection of corrupt or
//! truncated aligned sections.
//!
//! v3 is only emitted when a quantized model rides along; bundles without
//! one keep writing v1/v2 byte-identically (pinned in `bundle_compat.rs`).

use imre_core::quant::QuantScratch;
use imre_core::{entity_type_table, HyperParams, ModelSpec, QuantModel};
use imre_eval::{build_index, smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{
    load_bundle, read_bundle, save_bundle, write_bundle, Bundle, VERSION_V1, VERSION_V2, VERSION_V3,
};
use std::io::ErrorKind;
use std::sync::OnceLock;

struct Fixture {
    pipeline: Pipeline,
    model_bytes: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 2,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(5), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
        let mut model_bytes = Vec::new();
        imre_core::write_model(&model, &mut model_bytes).expect("serialize model");
        Fixture {
            pipeline,
            model_bytes,
        }
    })
}

/// A bundle of the fixture model at the requested on-disk version.
fn bundle(version: u32) -> Bundle {
    let fx = fixture();
    let model = imre_core::read_model(&mut fx.model_bytes.as_slice()).expect("model deserializes");
    let embedding = EntityEmbedding::from_matrix(fx.pipeline.embedding.matrix().clone());
    let mut b = Bundle::new(
        model,
        fx.pipeline.dataset.vocab.clone(),
        &fx.pipeline.dataset.world,
        Some(embedding),
    );
    if version >= VERSION_V2 {
        let ann = build_index(&fx.pipeline, &b.model, 7);
        b = b.with_ann(ann);
    }
    if version >= VERSION_V3 {
        let quant = QuantModel::from_model(&b.model, b.embedding.as_ref()).expect("quantizes");
        b = b.with_quant(quant);
    }
    b
}

fn bytes_of(b: &Bundle) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_bundle(b, &mut bytes).expect("serialize");
    bytes
}

fn version_of(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[4..8].try_into().unwrap())
}

/// Quantized scores of the first few test bags, as bit patterns.
fn quant_scores(qm: &QuantModel) -> Vec<u32> {
    let fx = fixture();
    let types = entity_type_table(&fx.pipeline.dataset.world);
    let mut scratch = QuantScratch::new();
    let mut out = Vec::new();
    for bag in fx.pipeline.test_bags.iter().take(5) {
        let mut scores = vec![0.0f32; qm.num_relations];
        qm.predict_quant_into(bag, &types, &mut scratch, &mut scores, None);
        out.extend(scores.iter().map(|s| s.to_bits()));
    }
    out
}

#[test]
fn version_matrix_round_trips() {
    for version in [VERSION_V1, VERSION_V2, VERSION_V3] {
        let b = bundle(version);
        let bytes = bytes_of(&b);
        assert_eq!(version_of(&bytes), version, "wrong on-disk version");
        let loaded = read_bundle(&mut bytes.as_slice()).expect("loads");
        assert_eq!(loaded.ann.is_some(), version >= VERSION_V2);
        assert_eq!(loaded.quant.is_some(), version >= VERSION_V3);
        assert_eq!(loaded.relations, b.relations);
        assert_eq!(loaded.vocab.len(), b.vocab.len());
        // Reserialization is a fixed point at every version.
        assert_eq!(bytes_of(&loaded), bytes, "v{version} not byte-stable");
    }
}

#[test]
fn v3_quant_model_survives_the_round_trip_bit_exactly() {
    let b = bundle(VERSION_V3);
    let want = quant_scores(b.quant.as_ref().unwrap());
    let loaded = read_bundle(&mut bytes_of(&b).as_slice()).expect("v3 loads");
    let qm = loaded.quant.as_ref().expect("quant section survives");
    assert!(!qm.is_borrowed(), "stream read must own its tables");
    assert_eq!(quant_scores(qm), want, "round-trip changed the int8 scores");
}

#[cfg(target_os = "linux")]
#[test]
fn mmap_load_is_zero_copy_and_byte_identical_to_owned() {
    let b = bundle(VERSION_V3);
    let bytes = bytes_of(&b);
    let dir = std::env::temp_dir().join("imre_bundle_v3_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.imrb");
    save_bundle(&b, &path).expect("saves");
    assert_eq!(std::fs::read(&path).unwrap(), bytes, "save != in-memory");

    let mapped = load_bundle(&path).expect("mmap loads");
    let qm = mapped.quant.as_ref().expect("quant section");
    assert!(
        qm.is_borrowed(),
        "v3 file load must borrow from the mapping"
    );
    assert!(
        mapped.ann.as_ref().unwrap().is_borrowed(),
        "ANN vectors must borrow from the mapping"
    );

    let owned = read_bundle(&mut bytes.as_slice()).expect("owned loads");
    assert_eq!(
        quant_scores(qm),
        quant_scores(owned.quant.as_ref().unwrap()),
        "mmap and owned loads must predict bit-identically"
    );
    // Both loads reserialize to the original file bytes.
    assert_eq!(bytes_of(&mapped), bytes);
    assert_eq!(bytes_of(&owned), bytes);

    // The mapping must stay alive through the tensors even after the file
    // is unlinked and the bundle's other parts are gone.
    std::fs::remove_file(&path).ok();
    let scores = quant_scores(mapped.quant.as_ref().unwrap());
    assert_eq!(scores.len(), 5 * mapped.model.num_relations());
}

#[test]
fn corrupt_v3_sections_are_typed_errors() {
    let bytes = bytes_of(&bundle(VERSION_V3));
    // Section count starts at offset 8; the directory entries follow.
    let n = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    assert!(n >= 4, "fixture should carry META/MODL/QNT8/IMRA");

    // Flip one byte inside every section: the table checksum must catch it.
    for i in 0..n {
        let e = 12 + i * 28;
        let offset = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[e + 12..e + 20].try_into().unwrap()) as usize;
        let mut bad = bytes.clone();
        bad[offset + len / 2] ^= 0x20;
        let err = read_bundle(&mut bad.as_slice())
            .map(|_| ())
            .expect_err("corrupt section accepted");
        assert_eq!(err.kind(), ErrorKind::InvalidData, "section {i}");
        assert!(err.to_string().contains("checksum"), "section {i}: {err}");
    }

    // Misaligned or out-of-bounds directory offsets are rejected by the
    // checked size math before any section parsing.
    let mut misaligned = bytes.clone();
    let off = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    misaligned[16..24].copy_from_slice(&(off + 1).to_le_bytes());
    assert_eq!(
        read_bundle(&mut misaligned.as_slice())
            .map(|_| ())
            .unwrap_err()
            .kind(),
        ErrorKind::InvalidData
    );
    let mut oob = bytes.clone();
    oob[24..32].copy_from_slice(&u64::MAX.to_le_bytes()); // first entry len
    assert_eq!(
        read_bundle(&mut oob.as_slice())
            .map(|_| ())
            .unwrap_err()
            .kind(),
        ErrorKind::InvalidData
    );

    // Truncations anywhere in the file.
    for keep in [6usize, 13, 40, bytes.len() / 2, bytes.len() - 3] {
        let err = read_bundle(&mut &bytes[..keep])
            .map(|_| ())
            .expect_err("truncation accepted");
        assert!(
            err.kind() == ErrorKind::InvalidData || err.kind() == ErrorKind::UnexpectedEof,
            "keep {keep}: {err}"
        );
    }
}

#[test]
fn v3_sections_are_64_byte_aligned() {
    let bytes = bytes_of(&bundle(VERSION_V3));
    let n = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    for i in 0..n {
        let e = 12 + i * 28;
        let tag = &bytes[e..e + 4];
        let offset = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap());
        assert_eq!(
            offset % 64,
            0,
            "section {} not 64-byte aligned",
            String::from_utf8_lossy(tag)
        );
    }
}
