//! Developer utility: quick cross-dataset comparison (NYT-sim vs GDS-sim)
//! of the base model and the paper's full model. The paper's GDS numbers
//! are much higher than NYT's; this checks the simulated corpora preserve
//! that contrast.
//!
//! ```text
//! cargo run --release -p imre-eval --example compare_datasets
//! ```

use imre_core::{HyperParams, ModelSpec};
use imre_eval::Pipeline;
use std::time::Instant;

fn main() {
    let mut hp = HyperParams::scaled();
    hp.epochs = 8;
    for config in [imre_corpus::nyt_sim(1), imre_corpus::gds_sim(2)] {
        let t0 = Instant::now();
        let p = Pipeline::build(&config, hp.clone());
        println!(
            "\n[{}] {} train bags / {} test bags (built in {:?})",
            config.name,
            p.train_bags.len(),
            p.test_bags.len(),
            t0.elapsed()
        );
        for spec in [ModelSpec::pcnn_att(), ModelSpec::pa_tmr()] {
            let t = Instant::now();
            let ev = p.run_system(spec, 5);
            println!(
                "  {:9} auc {:.4} f1 {:.4} p@100 {:.2}  ({:?})",
                spec.name(),
                ev.auc,
                ev.f1,
                ev.p_at_100,
                t.elapsed()
            );
        }
    }
    println!("\n(paper: GDS AUC ≈ 0.80-0.86, NYT AUC ≈ 0.33-0.39 — GDS must come out much higher)");
}
