//! Held-out evaluation metrics (paper §IV-A.2): precision–recall curves,
//! AUC (area under the PR curve), max-F1 with its precision/recall, and
//! precision-at-N.

/// One scored prediction: `(score, is_correct)`.
///
/// In the held-out protocol every (test bag, non-NA relation) pair yields
/// one prediction; it is correct when the bag's distant-supervision label
/// equals that relation.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Model confidence for the (bag, relation) pair.
    pub score: f32,
    /// Whether the KG holds this relation for the bag's entity pair.
    pub correct: bool,
}

/// A point on the precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Precision at this rank.
    pub precision: f32,
    /// Recall at this rank.
    pub recall: f32,
}

/// Complete held-out evaluation results.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// PR curve, one point per prediction rank.
    pub curve: Vec<PrPoint>,
    /// Area under the PR curve.
    pub auc: f32,
    /// Maximum F1 along the curve.
    pub f1: f32,
    /// Precision at the max-F1 point.
    pub precision: f32,
    /// Recall at the max-F1 point.
    pub recall: f32,
    /// Precision over the top-100 predictions.
    pub p_at_100: f32,
    /// Precision over the top-200 predictions.
    pub p_at_200: f32,
    /// Precision over the top-300 predictions (paper Table III reports
    /// P@N for N ∈ {100, 200, 300}).
    pub p_at_300: f32,
}

/// Computes the PR curve from scored predictions and the number of true
/// positive facts in the test set (`total_positives` — recall's
/// denominator).
///
/// # Panics
/// If `total_positives == 0` or `predictions` is empty.
pub fn pr_curve(mut predictions: Vec<Prediction>, total_positives: usize) -> Vec<PrPoint> {
    assert!(total_positives > 0, "pr_curve: no positive facts to recall");
    assert!(!predictions.is_empty(), "pr_curve: no predictions");
    predictions.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    let mut tp = 0usize;
    let mut curve = Vec::with_capacity(predictions.len());
    for (rank, p) in predictions.iter().enumerate() {
        if p.correct {
            tp += 1;
        }
        curve.push(PrPoint {
            precision: tp as f32 / (rank + 1) as f32,
            recall: tp as f32 / total_positives as f32,
        });
    }
    curve
}

/// Area under a PR curve by trapezoidal integration over recall.
pub fn auc(curve: &[PrPoint]) -> f32 {
    let mut area = 0.0f64;
    let mut prev_recall = 0.0f32;
    let mut prev_precision = curve.first().map_or(1.0, |p| p.precision);
    for p in curve {
        let dr = (p.recall - prev_recall) as f64;
        if dr > 0.0 {
            area += dr * ((p.precision + prev_precision) as f64 / 2.0);
        }
        prev_recall = p.recall;
        prev_precision = p.precision;
    }
    area as f32
}

/// Max F1 along a curve, returned with its precision and recall.
pub fn max_f1(curve: &[PrPoint]) -> (f32, f32, f32) {
    let mut best = (0.0f32, 0.0f32, 0.0f32);
    for p in curve {
        if p.precision + p.recall > 0.0 {
            let f1 = 2.0 * p.precision * p.recall / (p.precision + p.recall);
            if f1 > best.0 {
                best = (f1, p.precision, p.recall);
            }
        }
    }
    best
}

/// Precision over the `n` highest-scored predictions.
pub fn p_at_n(predictions: &[Prediction], n: usize) -> f32 {
    let mut sorted: Vec<&Prediction> = predictions.iter().collect();
    sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    let top = &sorted[..n.min(sorted.len())];
    if top.is_empty() {
        return 0.0;
    }
    top.iter().filter(|p| p.correct).count() as f32 / top.len() as f32
}

/// Bundles curve + scalar metrics from raw predictions.
pub fn evaluate_predictions(predictions: Vec<Prediction>, total_positives: usize) -> Evaluation {
    let p100 = p_at_n(&predictions, 100);
    let p200 = p_at_n(&predictions, 200);
    let p300 = p_at_n(&predictions, 300);
    let curve = pr_curve(predictions, total_positives);
    let a = auc(&curve);
    let (f1, precision, recall) = max_f1(&curve);
    Evaluation {
        curve,
        auc: a,
        f1,
        precision,
        recall,
        p_at_100: p100,
        p_at_200: p200,
        p_at_300: p300,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(score: f32, correct: bool) -> Prediction {
        Prediction { score, correct }
    }

    #[test]
    fn perfect_ranking_has_unit_auc() {
        let preds = vec![
            pred(0.9, true),
            pred(0.8, true),
            pred(0.2, false),
            pred(0.1, false),
        ];
        let ev = evaluate_predictions(preds, 2);
        assert!((ev.auc - 1.0).abs() < 1e-6, "auc {}", ev.auc);
        assert!((ev.f1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverted_ranking_has_low_auc() {
        let preds = vec![
            pred(0.9, false),
            pred(0.8, false),
            pred(0.2, true),
            pred(0.1, true),
        ];
        let ev = evaluate_predictions(preds, 2);
        assert!(ev.auc < 0.5, "auc {}", ev.auc);
    }

    #[test]
    fn precision_monotone_counts() {
        let preds = vec![pred(0.9, true), pred(0.8, false), pred(0.7, true)];
        let curve = pr_curve(preds, 2);
        assert_eq!(curve.len(), 3);
        assert!((curve[0].precision - 1.0).abs() < 1e-6);
        assert!((curve[1].precision - 0.5).abs() < 1e-6);
        assert!((curve[2].precision - 2.0 / 3.0).abs() < 1e-6);
        assert!((curve[2].recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn recall_never_decreases() {
        let preds: Vec<Prediction> = (0..100)
            .map(|i| pred(1.0 / (i + 1) as f32, i % 3 == 0))
            .collect();
        let curve = pr_curve(preds, 34);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
    }

    #[test]
    fn auc_bounded() {
        let preds: Vec<Prediction> = (0..50)
            .map(|i| pred((i as f32).sin().abs(), i % 2 == 0))
            .collect();
        let ev = evaluate_predictions(preds, 25);
        assert!(ev.auc >= 0.0 && ev.auc <= 1.0);
        assert!(ev.f1 >= 0.0 && ev.f1 <= 1.0);
    }

    #[test]
    fn p_at_n_counts_top() {
        let preds = vec![
            pred(0.9, true),
            pred(0.8, false),
            pred(0.7, true),
            pred(0.6, true),
        ];
        assert!((p_at_n(&preds, 2) - 0.5).abs() < 1e-6);
        assert!((p_at_n(&preds, 4) - 0.75).abs() < 1e-6);
        // n beyond length falls back to all predictions
        assert!((p_at_n(&preds, 100) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn max_f1_picks_best_tradeoff() {
        let curve = vec![
            PrPoint {
                precision: 1.0,
                recall: 0.1,
            },
            PrPoint {
                precision: 0.8,
                recall: 0.5,
            },
            PrPoint {
                precision: 0.3,
                recall: 0.9,
            },
        ];
        let (f1, p, r) = max_f1(&curve);
        assert!((p - 0.8).abs() < 1e-6 && (r - 0.5).abs() < 1e-6);
        assert!((f1 - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "no positive facts")]
    fn zero_positives_panics() {
        let _ = pr_curve(vec![pred(0.5, false)], 0);
    }
}
