//! End-to-end experiment pipeline: dataset → unlabeled corpus → proximity
//! graph → LINE embedding → model training → held-out evaluation.
//!
//! Every table/figure bench builds one [`Pipeline`] per dataset and then
//! trains the systems it compares. Multi-seed runs fan out across threads
//! (one model per thread; the pipeline is shared read-only).

use crate::heldout::evaluate_system;
use crate::metrics::Evaluation;
use imre_core::{
    entity_type_table, prepare_bags, BagContext, HyperParams, ModelSpec, PreparedBag, ReModel,
    TrainConfig,
};
use imre_corpus::{generate_unlabeled, CoOccurrence, Dataset, DatasetConfig, UnlabeledConfig};
use imre_graph::{train_line, EntityEmbedding, LineConfig, ProximityGraph};

/// Everything shared by the systems compared within one experiment.
pub struct Pipeline {
    /// The generated dataset (world + vocab + splits).
    pub dataset: Dataset,
    /// Unlabeled-corpus co-occurrence counts.
    pub co: CoOccurrence,
    /// LINE entity embeddings from the proximity graph.
    pub embedding: EntityEmbedding,
    /// Pretrained skip-gram word vectors (`[vocab, word_dim]`).
    pub word_vectors: imre_tensor::Tensor,
    /// Featurised training bags.
    pub train_bags: Vec<PreparedBag>,
    /// Featurised test bags.
    pub test_bags: Vec<PreparedBag>,
    /// Per-entity coarse-type ids.
    pub types: Vec<Vec<usize>>,
    /// Hyperparameters shared by all systems in the experiment.
    pub hp: HyperParams,
}

impl Pipeline {
    /// Builds the full pipeline for a dataset preset.
    pub fn build(config: &DatasetConfig, hp: HyperParams) -> Pipeline {
        let dataset = Dataset::generate(config);
        let co = generate_unlabeled(&dataset.world, &UnlabeledConfig::default());
        let graph = ProximityGraph::from_counts(
            co.iter().map(|(&p, &c)| (p, c)),
            dataset.world.num_entities(),
            2,
        );
        let line_cfg = LineConfig {
            dim: hp.entity_dim,
            ..LineConfig::default()
        };
        let embedding = train_line(&graph, &line_cfg);
        let train_bags = prepare_bags(&dataset.train, &hp);
        let test_bags = prepare_bags(&dataset.test, &hp);
        // Word-embedding pretraining, as in the paper's stack (word2vec on
        // the raw corpus text; unsupervised — labels never enter). This is
        // what lets encoders handle entity mentions absent from the
        // labelled training pairs.
        let raw_sentences = imre_core::corpus_sentences(&[&dataset.train, &dataset.test]);
        let sg_cfg = imre_core::SkipGramConfig {
            dim: hp.word_dim,
            ..Default::default()
        };
        let word_vectors = imre_core::train_skipgram(&raw_sentences, dataset.vocab.len(), &sg_cfg);
        let types = entity_type_table(&dataset.world);
        Pipeline {
            dataset,
            co,
            embedding,
            word_vectors,
            train_bags,
            test_bags,
            types,
            hp,
        }
    }

    /// The forward-time side information models consume.
    pub fn ctx(&self) -> BagContext<'_> {
        BagContext {
            entity_embedding: Some(&self.embedding),
            entity_types: &self.types,
        }
    }

    /// Trains one system variant with the given seed.
    pub fn train_system(&self, spec: ModelSpec, seed: u64) -> ReModel {
        let mut model = ReModel::new(
            spec,
            &self.hp,
            self.dataset.vocab.len(),
            self.dataset.num_relations(),
            imre_corpus::NUM_COARSE_TYPES,
            self.embedding.dim(),
            seed,
        );
        model.set_word_embeddings(self.word_vectors.clone());
        let mut tc = TrainConfig::from_hp(&self.hp, seed ^ 0xabcd);
        if spec.encoder == imre_core::EncoderKind::Gru {
            // Recurrent encoders converge in steps, not sentences: at this
            // corpus scale the conv models get enough SGD steps per epoch
            // but the GRU does not. A smaller batch gives it ~4× the update
            // count for identical per-epoch compute.
            tc.batch_size = (tc.batch_size / 4).max(2);
        }
        imre_core::train_model(&mut model, &self.train_bags, &self.ctx(), &tc);
        model
    }

    /// The training config [`train_system`](Self::train_system) would use
    /// for this spec/seed (GRU batch-size adjustment included) — shared so
    /// the data-parallel path trains under identical hyperparameters.
    pub fn train_config(&self, spec: ModelSpec, seed: u64) -> TrainConfig {
        let mut tc = TrainConfig::from_hp(&self.hp, seed ^ 0xabcd);
        if spec.encoder == imre_core::EncoderKind::Gru {
            tc.batch_size = (tc.batch_size / 4).max(2);
        }
        tc
    }

    /// Trains one system on the data-parallel engine with `replicas`
    /// model replicas (`imre train --data-parallel R`). Optionally resumes
    /// from an IMRC checkpoint and/or writes periodic checkpoints.
    ///
    /// For a fixed `(seed, replicas)` the result is byte-identical across
    /// runs and thread counts; it is *not* bitwise-equal to the serial
    /// [`train_system`](Self::train_system) path (different RNG
    /// discipline; see `imre_core::train`).
    ///
    /// # Panics
    /// If a resume checkpoint's architecture differs from `spec`, or the
    /// checkpoint cannot be read.
    pub fn train_system_dp(
        &self,
        spec: ModelSpec,
        seed: u64,
        replicas: usize,
        resume: Option<&std::path::Path>,
        checkpoint: Option<&imre_dist::CheckpointCfg>,
    ) -> (ReModel, imre_dist::DistStats) {
        let tc = self.train_config(spec, seed);
        let (mut engine, start_epoch) = match resume {
            Some(path) => {
                let mut ck = imre_dist::load_checkpoint(path)
                    .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", path.display()));
                assert_eq!(
                    ck.model.spec, spec,
                    "checkpoint architecture does not match the requested system"
                );
                // The IMRM header records the run's total epoch budget; the
                // checkpoint froze the interrupted run's smaller one. Align
                // it so a resumed artifact is byte-identical to an
                // uninterrupted run's.
                ck.model.hp.epochs = tc.epochs;
                imre_dist::DataParallel::resume(ck, replicas)
            }
            None => {
                let mut model = ReModel::new(
                    spec,
                    &self.hp,
                    self.dataset.vocab.len(),
                    self.dataset.num_relations(),
                    imre_corpus::NUM_COARSE_TYPES,
                    self.embedding.dim(),
                    seed,
                );
                model.set_word_embeddings(self.word_vectors.clone());
                (
                    imre_dist::DataParallel::new(
                        model,
                        replicas,
                        imre_dist::OptimizerKind::Sgd,
                        tc.lr,
                    ),
                    0,
                )
            }
        };
        let stats = engine.train(&self.train_bags, &self.ctx(), &tc, start_epoch, checkpoint);
        (engine.into_model(), stats)
    }

    /// Held-out evaluation of a trained model on the test split.
    pub fn evaluate_model(&self, model: &ReModel) -> Evaluation {
        let ctx = self.ctx();
        evaluate_system(&self.test_bags, self.dataset.num_relations(), |bag| {
            model.predict(bag, &ctx)
        })
    }

    /// Trains and evaluates one system; convenience for single-seed runs.
    pub fn run_system(&self, spec: ModelSpec, seed: u64) -> Evaluation {
        let model = self.train_system(spec, seed);
        self.evaluate_model(&model)
    }

    /// Trains and evaluates several systems in parallel (one thread per
    /// `(spec, seed)` pair), returning per-spec seed evaluations in input
    /// order. This is what the table/figure benches use to exploit cores:
    /// systems within one experiment are independent given the pipeline.
    pub fn run_systems_parallel(&self, specs: &[ModelSpec], seeds: &[u64]) -> Vec<Vec<Evaluation>> {
        let mut out: Vec<Vec<Option<Evaluation>>> =
            specs.iter().map(|_| vec![None; seeds.len()]).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (si, &spec) in specs.iter().enumerate() {
                for (ki, &seed) in seeds.iter().enumerate() {
                    let this = &*self;
                    handles.push(scope.spawn(move || (si, ki, this.run_system(spec, seed))));
                }
            }
            for h in handles {
                let (si, ki, ev) = h.join().expect("system-run thread panicked");
                out[si][ki] = Some(ev);
            }
        });
        out.into_iter()
            .map(|per_seed| {
                per_seed
                    .into_iter()
                    .map(|o| o.expect("every run filled"))
                    .collect()
            })
            .collect()
    }

    /// Trains and evaluates one system across several seeds in parallel,
    /// returning the per-seed evaluations. Unbounded: every seed gets its
    /// own thread (see [`run_system_seeds_bounded`](Self::run_system_seeds_bounded)
    /// to cap memory).
    pub fn run_system_seeds(&self, spec: ModelSpec, seeds: &[u64]) -> Vec<Evaluation> {
        self.run_system_seeds_bounded(spec, seeds, 0)
    }

    /// Trains and evaluates one system across several seeds, at most
    /// `max_parallel` concurrently (`0` = all at once — `imre compare
    /// --parallel-seeds N`). Results come back in seed order; each seed's
    /// run is deterministic in isolation, so the cap changes wall time and
    /// peak memory, never the numbers.
    pub fn run_system_seeds_bounded(
        &self,
        spec: ModelSpec,
        seeds: &[u64],
        max_parallel: usize,
    ) -> Vec<Evaluation> {
        if seeds.len() == 1 {
            return vec![self.run_system(spec, seeds[0])];
        }
        imre_dist::run_seeds(seeds, max_parallel, |seed| self.run_system(spec, seed))
    }
}

/// Seed-averaged scalar metrics (the paper reports five-run means).
#[derive(Debug, Clone)]
pub struct MeanEvaluation {
    /// Mean area under the PR curve.
    pub auc: f32,
    /// Mean max-F1.
    pub f1: f32,
    /// Mean precision at max-F1.
    pub precision: f32,
    /// Mean recall at max-F1.
    pub recall: f32,
    /// Mean P@100.
    pub p_at_100: f32,
    /// Mean P@200.
    pub p_at_200: f32,
    /// Mean P@300.
    pub p_at_300: f32,
    /// Number of seeds averaged.
    pub n_seeds: usize,
}

/// Averages scalar metrics across seed runs.
///
/// # Panics
/// If `evals` is empty.
pub fn mean_evaluation(evals: &[Evaluation]) -> MeanEvaluation {
    assert!(!evals.is_empty(), "mean_evaluation: no runs");
    let n = evals.len() as f32;
    MeanEvaluation {
        auc: evals.iter().map(|e| e.auc).sum::<f32>() / n,
        f1: evals.iter().map(|e| e.f1).sum::<f32>() / n,
        precision: evals.iter().map(|e| e.precision).sum::<f32>() / n,
        recall: evals.iter().map(|e| e.recall).sum::<f32>() / n,
        p_at_100: evals.iter().map(|e| e.p_at_100).sum::<f32>() / n,
        p_at_200: evals.iter().map(|e| e.p_at_200).sum::<f32>() / n,
        p_at_300: evals.iter().map(|e| e.p_at_300).sum::<f32>() / n,
        n_seeds: evals.len(),
    }
}

/// A small, fast dataset config for tests and the quickstart example —
/// same machinery as the full presets, minutes → seconds.
pub fn smoke_config(seed: u64) -> DatasetConfig {
    DatasetConfig {
        name: "smoke".to_string(),
        world: imre_corpus::WorldConfig {
            n_relations: 5,
            entities_per_cluster: 8,
            facts_per_relation: 24,
            cluster_reuse_prob: 0.3,
            seed: seed ^ 0x5111,
        },
        sentence: imre_corpus::SentenceGenConfig {
            noise_prob: 0.2,
            min_len: 6,
            max_len: 14,
        },
        train_fraction: 0.7,
        na_train: 40,
        na_test: 20,
        na_hard_fraction: 0.5,
        zipf_alpha: 1.8,
        max_sentences_per_bag: 8,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_pipeline() -> Pipeline {
        let mut hp = HyperParams::tiny();
        hp.epochs = 12; // the smoke corpus is small; short runs underfit
        Pipeline::build(&smoke_config(3), hp)
    }

    #[test]
    fn pipeline_builds_consistently() {
        let p = smoke_pipeline();
        assert_eq!(p.train_bags.len(), p.dataset.train.len());
        assert_eq!(p.test_bags.len(), p.dataset.test.len());
        assert_eq!(p.types.len(), p.dataset.world.num_entities());
        assert_eq!(p.embedding.len(), p.dataset.world.num_entities());
        assert_eq!(p.embedding.dim(), p.hp.entity_dim);
    }

    #[test]
    fn trained_system_beats_untrained() {
        let p = smoke_pipeline();
        let untrained = ReModel::new(
            ModelSpec::pcnn_att(),
            &p.hp,
            p.dataset.vocab.len(),
            p.dataset.num_relations(),
            imre_corpus::NUM_COARSE_TYPES,
            p.embedding.dim(),
            5,
        );
        let ev_untrained = p.evaluate_model(&untrained);
        let ev_trained = p.run_system(ModelSpec::pcnn_att(), 5);
        assert!(
            ev_trained.auc > ev_untrained.auc + 0.05,
            "training must help: {} vs {}",
            ev_trained.auc,
            ev_untrained.auc
        );
    }

    #[test]
    fn dp_training_is_deterministic_and_learns() {
        let p = smoke_pipeline();
        let (m1, stats) = p.train_system_dp(ModelSpec::pcnn_att(), 5, 2, None, None);
        let (m2, _) = p.train_system_dp(ModelSpec::pcnn_att(), 5, 2, None, None);
        let bytes = |m: &ReModel| {
            let mut out = Vec::new();
            imre_core::write_model(m, &mut out).unwrap();
            out
        };
        assert_eq!(bytes(&m1), bytes(&m2), "same (seed, replicas) must match");
        assert!(
            stats.final_loss() < stats.epoch_losses[0],
            "losses {:?}",
            stats.epoch_losses
        );
        let ev = p.evaluate_model(&m1);
        let serial = p.run_system(ModelSpec::pcnn_att(), 5);
        assert!(
            (ev.auc - serial.auc).abs() < 0.25,
            "dp-trained quality {} drifted far from serial {}",
            ev.auc,
            serial.auc
        );
    }

    #[test]
    fn dp_resume_matches_uninterrupted_run_bytewise() {
        // Mirrors the CLI flow: one process trains to a mid-run checkpoint
        // with a smaller epoch budget, a second resumes with the full one.
        // The resumed artifact must equal the uninterrupted run's, byte for
        // byte — including the hp header, which records the total budget.
        let mut hp = HyperParams::tiny();
        hp.epochs = 4;
        let full = Pipeline::build(&smoke_config(3), hp.clone());
        hp.epochs = 2;
        let half = Pipeline::build(&smoke_config(3), hp);

        let dir = std::env::temp_dir().join("imre-eval-dp-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("mid.imrc");
        let ckpt = imre_dist::CheckpointCfg {
            every: 1,
            path: ck.clone(),
        };
        let (straight, _) = full.train_system_dp(ModelSpec::pcnn_att(), 5, 2, None, None);
        let (_, _) = half.train_system_dp(ModelSpec::pcnn_att(), 5, 2, None, Some(&ckpt));
        let (resumed, _) = full.train_system_dp(ModelSpec::pcnn_att(), 5, 2, Some(&ck), None);
        let bytes = |m: &ReModel| {
            let mut out = Vec::new();
            imre_core::write_model(m, &mut out).unwrap();
            out
        };
        assert_eq!(
            bytes(&straight),
            bytes(&resumed),
            "resume must replay the uninterrupted run exactly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounded_seed_runner_matches_unbounded() {
        let p = smoke_pipeline();
        let a = p.run_system_seeds(ModelSpec::pcnn(), &[1, 2]);
        let b = p.run_system_seeds_bounded(ModelSpec::pcnn(), &[1, 2], 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.auc, y.auc, "cap must not change results");
        }
    }

    #[test]
    fn multi_seed_runs_are_independent_and_parallel() {
        let p = smoke_pipeline();
        let evals = p.run_system_seeds(ModelSpec::pcnn(), &[1, 2]);
        assert_eq!(evals.len(), 2);
        // different seeds should give (at least slightly) different results
        assert!(
            (evals[0].auc - evals[1].auc).abs() > 1e-6 || (evals[0].f1 - evals[1].f1).abs() > 1e-6
        );
        let mean = mean_evaluation(&evals);
        assert_eq!(mean.n_seeds, 2);
        let expected = (evals[0].auc + evals[1].auc) / 2.0;
        assert!((mean.auc - expected).abs() < 1e-6);
    }
}
