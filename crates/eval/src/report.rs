//! Plain-text rendering of tables and curve series — the output format of
//! every table/figure bench in `imre-bench`.

use crate::metrics::PrPoint;

/// Renders an aligned text table.
///
/// # Panics
/// If any row's width differs from the header's.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            headers.len(),
            "format_table: row {i} has {} cells, expected {}",
            r.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:<w$} | "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a PR curve as `recall precision` rows, downsampled to at most
/// `max_points` evenly spaced points (plotting-tool friendly).
pub fn format_pr_series(name: &str, curve: &[PrPoint], max_points: usize) -> String {
    let mut out = format!("# series: {name}\n# recall precision\n");
    if curve.is_empty() {
        return out;
    }
    let step = (curve.len() / max_points.max(1)).max(1);
    for (i, p) in curve.iter().enumerate() {
        if i % step == 0 || i == curve.len() - 1 {
            out.push_str(&format!("{:.4} {:.4}\n", p.recall, p.precision));
        }
    }
    out
}

/// Renders labelled `(x, y)` points (bar-chart data like Figures 1, 5–7).
pub fn format_labeled_series(name: &str, points: &[(String, f32)]) -> String {
    let mut out = format!("# series: {name}\n");
    for (label, value) in points {
        out.push_str(&format!("{label:<10} {value:.4}\n"));
    }
    out
}

/// Formats a float metric to the paper's 4-decimal convention.
pub fn metric(v: f32) -> String {
    format!("{v:.4}")
}

/// Formats a P@N metric to the paper's 2-decimal convention.
pub fn metric2(v: f32) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            "T",
            &["name", "auc"],
            &[
                vec!["PCNN".into(), "0.33".into()],
                vec!["PA-TMR".into(), "0.3939".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("name") && lines[1].contains("auc"));
        // all data lines equal length (aligned)
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row 0 has 1 cells")]
    fn ragged_rows_panic() {
        let _ = format_table("T", &["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn pr_series_downsamples() {
        let curve: Vec<PrPoint> = (0..1000)
            .map(|i| PrPoint {
                precision: 1.0 - i as f32 / 2000.0,
                recall: i as f32 / 1000.0,
            })
            .collect();
        let s = format_pr_series("x", &curve, 50);
        let data_lines = s.lines().filter(|l| !l.starts_with('#')).count();
        assert!(data_lines <= 52, "{data_lines} lines");
        assert!(s.ends_with("0.9990 0.5005\n"), "last point kept: {s:?}");
    }

    #[test]
    fn labeled_series_format() {
        let s = format_labeled_series("fig", &[("1-5".to_string(), 0.5)]);
        assert!(s.contains("1-5"));
        assert!(s.contains("0.5000"));
    }

    #[test]
    fn metric_precision() {
        assert_eq!(metric(0.39391), "0.3939");
        assert_eq!(metric2(0.831), "0.83");
    }
}
