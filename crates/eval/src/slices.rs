//! Stratified evaluation slices for the paper's Figures 6 and 7.
//!
//! * **Figure 6** buckets test pairs by their co-occurrence frequency
//!   *in the unlabeled corpus* (quantiles) and reports F1 per bucket.
//! * **Figure 7** buckets test pairs by their number of available sentences
//!   and reports F1 per bucket. (The paper buckets by training-corpus
//!   sentence count; our held-out split keeps train/test pairs disjoint, so
//!   the test bag's own sentence count is the faithful analogue — it is the
//!   quantity that controls how much textual evidence the model sees for
//!   the pair. Documented in DESIGN.md.)

use crate::heldout::hard_f1;
use imre_core::PreparedBag;
use imre_corpus::CoOccurrence;

/// F1 per quantile bucket of unlabeled-corpus co-occurrence counts.
///
/// Pairs are sorted by co-occurrence count and cut into `n_buckets` equal
/// slices; the returned vector holds `(upper-quantile-label, f1)` per
/// bucket, in increasing co-occurrence order.
pub fn f1_by_cooccurrence_quantile(
    bags: &[PreparedBag],
    co: &CoOccurrence,
    n_buckets: usize,
    mut predict: impl FnMut(&PreparedBag) -> Vec<f32>,
) -> Vec<(String, f32)> {
    assert!(n_buckets > 0, "need at least one bucket");
    let mut indexed: Vec<(usize, u32)> = bags
        .iter()
        .enumerate()
        .map(|(i, b)| (i, co.count(b.head, b.tail)))
        .collect();
    indexed.sort_by_key(|&(_, c)| c);
    let per = indexed.len().div_ceil(n_buckets);
    let mut out = Vec::with_capacity(n_buckets);
    for (bi, chunk) in indexed.chunks(per).enumerate() {
        let subset: Vec<PreparedBag> = chunk.iter().map(|&(i, _)| bags[i].clone()).collect();
        let f1 = hard_f1(&subset, &mut predict);
        let label = format!("q{}", (bi + 1) * 100 / n_buckets);
        out.push((label, f1));
    }
    out
}

/// F1 per sentence-count bucket (`1, 2, 3, 4, ≥5`).
pub fn f1_by_sentence_count(
    bags: &[PreparedBag],
    mut predict: impl FnMut(&PreparedBag) -> Vec<f32>,
) -> Vec<(String, f32)> {
    let buckets: [(usize, usize); 5] = [(1, 1), (2, 2), (3, 3), (4, 4), (5, usize::MAX)];
    buckets
        .iter()
        .map(|&(lo, hi)| {
            let subset: Vec<PreparedBag> = bags
                .iter()
                .filter(|b| b.sentences.len() >= lo && b.sentences.len() <= hi)
                .cloned()
                .collect();
            let label = if hi == usize::MAX {
                format!("{lo}+")
            } else {
                lo.to_string()
            };
            let f1 = if subset.is_empty() {
                0.0
            } else {
                hard_f1(&subset, &mut predict)
            };
            (label, f1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_core::SentenceFeatures;

    fn bag(head: usize, label: usize, n_sentences: usize) -> PreparedBag {
        let s = SentenceFeatures {
            tokens: vec![1, 2],
            head_offsets: vec![0, 1],
            tail_offsets: vec![1, 0],
            head_pos: 0,
            tail_pos: 1,
        };
        PreparedBag {
            head,
            tail: head + 100,
            label,
            sentences: vec![s; n_sentences],
        }
    }

    #[test]
    fn quantile_buckets_cover_all_pairs() {
        let bags: Vec<PreparedBag> = (0..12).map(|i| bag(i, 1 + i % 2, 1)).collect();
        let mut co = CoOccurrence::new();
        for i in 0..12 {
            co.add(i, i + 100, (i as u32 + 1) * 3);
        }
        let out = f1_by_cooccurrence_quantile(&bags, &co, 4, |b| {
            let mut s = vec![0.0; 3];
            s[b.label] = 1.0;
            s
        });
        assert_eq!(out.len(), 4);
        for (label, f1) in &out {
            assert!(label.starts_with('q'));
            assert!(
                (f1 - 1.0).abs() < 1e-6,
                "oracle must be perfect in every bucket"
            );
        }
    }

    #[test]
    fn sentence_count_buckets_route_correctly() {
        let bags = vec![bag(0, 1, 1), bag(1, 1, 2), bag(2, 1, 7)];
        // oracle only for bags with ≥5 sentences; others predicted NA
        let out = f1_by_sentence_count(&bags, |b| {
            let mut s = vec![1.0, 0.0, 0.0];
            if b.sentences.len() >= 5 {
                s = vec![0.0; 3];
                s[b.label] = 1.0;
            }
            s
        });
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].1, 0.0, "single-sentence bucket predicted NA");
        assert!(
            (out[4].1 - 1.0).abs() < 1e-6,
            "5+ bucket predicted correctly"
        );
        assert_eq!(out[4].0, "5+");
    }

    #[test]
    fn empty_bucket_yields_zero() {
        let bags = vec![bag(0, 1, 1)];
        let out = f1_by_sentence_count(&bags, |b| {
            let mut s = vec![0.0; 3];
            s[b.label] = 1.0;
            s
        });
        assert_eq!(out[1].1, 0.0, "no 2-sentence bags");
    }
}
