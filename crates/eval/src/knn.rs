//! kNN label-interpolation evaluation: the serve-time long-tail rescue.
//!
//! The paper's implicit-mutual-relations component helps exactly where
//! distant supervision is weakest — entity pairs with little textual
//! evidence. The kNN path attacks the same long tail non-parametrically: a
//! deterministic HNSW index over the *training* bags' pooled
//! representations turns each test bag's neighborhood into a label
//! distribution, blended into the model's softmax as
//! `(1−λ)·model + λ·votes`. This module builds that index (the same one
//! `imre train --bundle` ships inside the `.imrb`) and reports held-out
//! metrics with and without the interpolation, stratified by
//! unlabeled-corpus co-occurrence quantile (the Figure 6 axis) — the
//! low-co-occurrence buckets are where the lift should appear.

use crate::heldout::{evaluate_system, hard_f1};
use crate::metrics::Evaluation;
use crate::runner::Pipeline;
use crate::slices::f1_by_cooccurrence_quantile;
use imre_ann::{blend_scores, AnnIndex, HnswConfig, SearchScratch};
use imre_core::{PreparedBag, ReModel};

/// One co-occurrence-quantile bucket's F1 with and without interpolation.
#[derive(Debug, Clone)]
pub struct KnnBucket {
    /// Quantile label (`q20` … `q100`), increasing co-occurrence.
    pub label: String,
    /// Hard-F1 of the pure model on this bucket.
    pub base_f1: f32,
    /// Hard-F1 of the interpolated scores on this bucket.
    pub knn_f1: f32,
}

/// Held-out comparison of pure vs. kNN-interpolated scoring.
#[derive(Debug, Clone)]
pub struct KnnReport {
    /// Neighbors retrieved per query.
    pub k: usize,
    /// Interpolation weight.
    pub lambda: f32,
    /// Held-out metrics of the pure model (λ=0 path).
    pub base: Evaluation,
    /// Held-out metrics with interpolation.
    pub blended: Evaluation,
    /// Hard-F1 of the pure model over the full test split.
    pub base_hard_f1: f32,
    /// Hard-F1 with interpolation over the full test split.
    pub blended_hard_f1: f32,
    /// Per-bucket F1, increasing co-occurrence order.
    pub buckets: Vec<KnnBucket>,
    /// Training bags indexed.
    pub index_len: usize,
    /// On-disk size of the serialized index section, in bytes.
    pub index_bytes: usize,
    /// Wall-clock time spent building the index, in milliseconds.
    pub build_ms: f64,
}

/// Builds the serving kNN index for a trained model: one vector per
/// training bag (the eval-mode pooled representation, `ReModel::
/// predict_repr_batch`), labeled with the bag's distant-supervision
/// relation. Deterministic in `(model, train set, seed)` — byte-identical
/// across runs and thread counts.
///
/// # Panics
/// If the pipeline has no training bags (`AnnIndex::build` rejects empty
/// input).
pub fn build_index(pipeline: &Pipeline, model: &ReModel, seed: u64) -> AnnIndex {
    let bags: Vec<&PreparedBag> = pipeline.train_bags.iter().collect();
    let reprs = model.predict_repr_batch(&bags);
    let dim = model.sent_dim();
    let mut vectors = Vec::with_capacity(reprs.len() * dim);
    for r in &reprs {
        vectors.extend_from_slice(r);
    }
    let labels: Vec<u32> = pipeline.train_bags.iter().map(|b| b.label as u32).collect();
    AnnIndex::build(dim, vectors, labels, HnswConfig::with_seed(seed))
        .expect("training bags produce a valid index")
}

/// Evaluates a trained model with and without kNN label interpolation.
///
/// The pure numbers come from the exact `model.predict` path (bit-identical
/// to [`Pipeline::evaluate_model`]); the blended numbers re-score every
/// test bag as `(1−λ)·model + λ·neighbor-votes` with `k` neighbors from an
/// index built over the training bags (seeded with `seed`).
pub fn evaluate_model_knn(
    pipeline: &Pipeline,
    model: &ReModel,
    k: usize,
    lambda: f32,
    seed: u64,
    n_buckets: usize,
) -> KnnReport {
    let build_start = std::time::Instant::now();
    let index = build_index(pipeline, model, seed);
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let index_bytes = index.serialized_len();
    let ctx = pipeline.ctx();
    let num_relations = pipeline.dataset.num_relations();

    let mut base_predict = |bag: &PreparedBag| model.predict(bag, &ctx);
    let mut scratch = SearchScratch::new();
    let mut votes = vec![0.0f32; num_relations];
    let mut blended_predict = |bag: &PreparedBag| {
        let mut scores = model.predict(bag, &ctx);
        if k > 0 && lambda > 0.0 {
            let repr = model.predict_repr(bag);
            let neighbors = index.search(&repr, k.min(index.len()), &mut scratch);
            index.label_votes_into(neighbors, &mut votes);
            blend_scores(&mut scores, &votes, lambda);
        }
        scores
    };

    let base = evaluate_system(&pipeline.test_bags, num_relations, &mut base_predict);
    let blended = evaluate_system(&pipeline.test_bags, num_relations, &mut blended_predict);
    let base_hard_f1 = hard_f1(&pipeline.test_bags, &mut base_predict);
    let blended_hard_f1 = hard_f1(&pipeline.test_bags, &mut blended_predict);
    let base_buckets = f1_by_cooccurrence_quantile(
        &pipeline.test_bags,
        &pipeline.co,
        n_buckets,
        &mut base_predict,
    );
    let knn_buckets = f1_by_cooccurrence_quantile(
        &pipeline.test_bags,
        &pipeline.co,
        n_buckets,
        &mut blended_predict,
    );
    let buckets = base_buckets
        .into_iter()
        .zip(knn_buckets)
        .map(|((label, base_f1), (_, knn_f1))| KnnBucket {
            label,
            base_f1,
            knn_f1,
        })
        .collect();
    KnnReport {
        k,
        lambda,
        base,
        blended,
        base_hard_f1,
        blended_hard_f1,
        buckets,
        index_len: index.len(),
        index_bytes,
        build_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::smoke_config;
    use imre_core::{HyperParams, ModelSpec};

    fn smoke_pipeline() -> Pipeline {
        let mut hp = HyperParams::tiny();
        hp.epochs = 12;
        Pipeline::build(&smoke_config(3), hp)
    }

    #[test]
    fn index_covers_every_training_bag_deterministically() {
        let p = smoke_pipeline();
        let model = p.train_system(ModelSpec::pcnn(), 5);
        let a = build_index(&p, &model, 7);
        let b = build_index(&p, &model, 7);
        assert_eq!(a.len(), p.train_bags.len());
        let bytes = |ix: &AnnIndex| {
            let mut out = Vec::new();
            ix.write_to(&mut out).unwrap();
            out
        };
        assert_eq!(bytes(&a), bytes(&b), "same seed must be byte-identical");
    }

    #[test]
    fn lambda_zero_report_matches_pure_evaluation() {
        let p = smoke_pipeline();
        let model = p.train_system(ModelSpec::pcnn(), 5);
        let report = evaluate_model_knn(&p, &model, 4, 0.0, 7, 3);
        // λ=0 never blends, so both sides of the report are the pure path.
        assert_eq!(report.base.auc, report.blended.auc);
        assert_eq!(report.base_hard_f1, report.blended_hard_f1);
        let pure = p.evaluate_model(&model);
        assert_eq!(report.base.auc, pure.auc);
        for b in &report.buckets {
            assert_eq!(b.base_f1, b.knn_f1, "bucket {}", b.label);
        }
    }

    #[test]
    fn interpolation_changes_scores_and_reports_buckets() {
        let p = smoke_pipeline();
        let model = p.train_system(ModelSpec::pcnn(), 5);
        let report = evaluate_model_knn(&p, &model, 8, 0.5, 7, 3);
        assert_eq!(report.buckets.len(), 3);
        assert!(report.index_len > 0);
        assert!(report.index_bytes > 0);
        // With half the mass on neighbor votes the metrics must actually
        // differ from the pure path (equality would mean the blend is dead).
        assert!(
            report.base.auc != report.blended.auc || report.base_hard_f1 != report.blended_hard_f1,
            "blend changed nothing: auc {} vs {}",
            report.base.auc,
            report.blended.auc
        );
    }
}
