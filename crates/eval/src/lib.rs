//! # imre-eval
//!
//! Evaluation machinery for the `imre` reproduction of Kuang et al. (ICDE
//! 2020):
//!
//! * [`metrics`] — held-out PR curves, AUC, max-F1, P@N (paper §IV-A.2).
//! * [`heldout`] — running any scoring function over a test split under
//!   Lin et al.'s held-out protocol; hard-F1 for the slice analyses.
//! * [`slices`] — the Figure 6 (co-occurrence quantile) and Figure 7
//!   (sentence count) stratifications.
//! * [`knn`] — kNN label-interpolation evaluation: builds the serving HNSW
//!   index over training-bag representations and reports per-bucket F1
//!   with/without the blend (`imre eval --knn`).
//! * [`runner`] — the end-to-end [`Pipeline`] (dataset → proximity graph →
//!   LINE → train → evaluate) with parallel multi-seed averaging.
//! * [`report`] — plain-text tables and curve series, the output format of
//!   every bench in `imre-bench`.

pub mod heldout;
pub mod knn;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod slices;

pub use heldout::{evaluate_system, hard_f1};
pub use knn::{build_index, evaluate_model_knn, KnnBucket, KnnReport};
pub use metrics::{
    auc, evaluate_predictions, max_f1, p_at_n, pr_curve, Evaluation, PrPoint, Prediction,
};
pub use report::{format_labeled_series, format_pr_series, format_table, metric, metric2};
pub use runner::{mean_evaluation, smoke_config, MeanEvaluation, Pipeline};
pub use slices::{f1_by_cooccurrence_quantile, f1_by_sentence_count};
