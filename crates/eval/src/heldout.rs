//! Running a system over a test split under the held-out protocol.
//!
//! Every `(test bag, non-NA relation)` pair contributes one scored
//! prediction; it counts as correct when the bag's distant-supervision label
//! is exactly that relation. Recall is measured against the number of
//! non-NA test bags. This mirrors Lin et al.'s evaluation, which the paper
//! adopts ("compare the predicting relation facts from the test sentences
//! with those in Freebase").

use crate::metrics::{evaluate_predictions, Evaluation, Prediction};
use imre_core::PreparedBag;

/// Evaluates an arbitrary scoring function over prepared test bags.
///
/// `predict` returns a per-relation score vector (index 0 = NA, skipped).
///
/// # Panics
/// If the test split has no non-NA bag.
pub fn evaluate_system(
    bags: &[PreparedBag],
    num_relations: usize,
    mut predict: impl FnMut(&PreparedBag) -> Vec<f32>,
) -> Evaluation {
    let mut predictions = Vec::with_capacity(bags.len() * (num_relations - 1));
    let mut positives = 0usize;
    for bag in bags {
        if bag.label != 0 {
            positives += 1;
        }
        let scores = predict(bag);
        debug_assert_eq!(scores.len(), num_relations);
        for (r, &score) in scores.iter().enumerate().skip(1) {
            predictions.push(Prediction {
                score,
                correct: bag.label == r,
            });
        }
    }
    assert!(
        positives > 0,
        "evaluate_system: no non-NA bags in the test split"
    );
    evaluate_predictions(predictions, positives)
}

/// Micro-F1 of hard (argmax) predictions over a bag subset: a bag counts as
/// predicted-positive when its argmax is non-NA, and as correct when the
/// argmax equals its label. Used by the Figure 6/7 slice analyses.
pub fn hard_f1(bags: &[PreparedBag], mut predict: impl FnMut(&PreparedBag) -> Vec<f32>) -> f32 {
    let mut predicted_pos = 0usize;
    let mut actual_pos = 0usize;
    let mut correct_pos = 0usize;
    for bag in bags {
        let scores = predict(bag);
        let argmax = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, _)| i)
            .expect("non-empty scores");
        if bag.label != 0 {
            actual_pos += 1;
        }
        if argmax != 0 {
            predicted_pos += 1;
            if argmax == bag.label {
                correct_pos += 1;
            }
        }
    }
    if predicted_pos == 0 || actual_pos == 0 || correct_pos == 0 {
        return 0.0;
    }
    let p = correct_pos as f32 / predicted_pos as f32;
    let r = correct_pos as f32 / actual_pos as f32;
    2.0 * p * r / (p + r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_core::{PreparedBag, SentenceFeatures};

    fn bag(label: usize) -> PreparedBag {
        PreparedBag {
            head: 0,
            tail: 1,
            label,
            sentences: vec![SentenceFeatures {
                tokens: vec![1],
                head_offsets: vec![0],
                tail_offsets: vec![0],
                head_pos: 0,
                tail_pos: 0,
            }],
        }
    }

    #[test]
    fn oracle_scores_give_perfect_eval() {
        let bags: Vec<PreparedBag> = vec![bag(1), bag(2), bag(0), bag(1)];
        let ev = evaluate_system(&bags, 3, |b| {
            let mut s = vec![0.0; 3];
            s[b.label] = 1.0;
            s
        });
        assert!((ev.f1 - 1.0).abs() < 1e-6, "f1 {}", ev.f1);
        assert!(ev.auc > 0.99);
    }

    #[test]
    fn random_scores_bounded_metrics() {
        let bags: Vec<PreparedBag> = (0..20).map(|i| bag(i % 3)).collect();
        let mut c = 0u32;
        let ev = evaluate_system(&bags, 3, |_| {
            c += 1;
            vec![
                0.1,
                ((c * 37 % 11) as f32) / 11.0,
                ((c * 53 % 7) as f32) / 7.0,
            ]
        });
        assert!(ev.auc > 0.0 && ev.auc < 1.0);
        assert!(ev.f1 > 0.0 && ev.f1 < 1.0);
    }

    #[test]
    fn hard_f1_oracle_is_one() {
        let bags: Vec<PreparedBag> = vec![bag(1), bag(0), bag(2)];
        let f1 = hard_f1(&bags, |b| {
            let mut s = vec![0.0; 3];
            s[b.label] = 1.0;
            s
        });
        assert!((f1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hard_f1_all_na_predictions_zero() {
        let bags: Vec<PreparedBag> = vec![bag(1), bag(2)];
        let f1 = hard_f1(&bags, |_| vec![1.0, 0.0, 0.0]);
        assert_eq!(f1, 0.0);
    }

    #[test]
    #[should_panic(expected = "no non-NA bags")]
    fn all_na_test_split_panics() {
        let bags: Vec<PreparedBag> = vec![bag(0)];
        let _ = evaluate_system(&bags, 2, |_| vec![0.5, 0.5]);
    }
}
