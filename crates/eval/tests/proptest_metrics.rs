//! Property-based tests for the evaluation metrics: PR-curve laws that must
//! hold for arbitrary prediction sets.

use imre_eval::{auc, evaluate_predictions, max_f1, p_at_n, pr_curve, Prediction};
use proptest::prelude::*;

fn predictions() -> impl Strategy<Value = Vec<Prediction>> {
    proptest::collection::vec((0.0f32..1.0, proptest::bool::ANY), 2..200).prop_map(|v| {
        v.into_iter()
            .map(|(score, correct)| Prediction { score, correct })
            .collect()
    })
}

fn positives(preds: &[Prediction]) -> usize {
    preds.iter().filter(|p| p.correct).count()
}

proptest! {
    #[test]
    fn recall_monotone_nondecreasing(preds in predictions()) {
        let pos = positives(&preds).max(1);
        let curve = pr_curve(preds, pos);
        for w in curve.windows(2) {
            prop_assert!(w[1].recall >= w[0].recall - 1e-7);
        }
    }

    #[test]
    fn final_recall_is_total_hits_over_positives(preds in predictions()) {
        let hits = positives(&preds);
        prop_assume!(hits > 0);
        let curve = pr_curve(preds, hits);
        let last = curve.last().unwrap();
        prop_assert!((last.recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn precision_in_unit_interval(preds in predictions()) {
        let pos = positives(&preds).max(1);
        let curve = pr_curve(preds, pos);
        for p in &curve {
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!((0.0..=1.0).contains(&p.recall));
        }
    }

    #[test]
    fn auc_and_f1_bounded(preds in predictions()) {
        let pos = positives(&preds).max(1);
        let ev = evaluate_predictions(preds, pos);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ev.auc));
        prop_assert!((0.0..=1.0).contains(&ev.f1));
        prop_assert!(ev.f1 >= 0.0);
    }

    #[test]
    fn perfect_ranking_dominates_any_ranking(preds in predictions()) {
        let hits = positives(&preds);
        prop_assume!(hits > 0 && hits < preds.len());
        // perfect ranking: all correct predictions first
        let perfect: Vec<Prediction> = {
            let mut v = preds.clone();
            v.sort_by_key(|p| !p.correct);
            v.iter().enumerate().map(|(i, p)| Prediction { score: 1.0 - i as f32 / v.len() as f32, correct: p.correct }).collect()
        };
        let a_any = auc(&pr_curve(preds, hits));
        let a_perfect = auc(&pr_curve(perfect, hits));
        prop_assert!(a_perfect >= a_any - 1e-4, "perfect {a_perfect} < actual {a_any}");
    }

    #[test]
    fn p_at_n_monotone_in_perfectness(preds in predictions()) {
        // P@N of a perfect ranking is ≥ P@N of the given ranking for small N
        let hits = positives(&preds);
        prop_assume!(hits > 0);
        let perfect: Vec<Prediction> = {
            let mut v = preds.clone();
            v.sort_by_key(|p| !p.correct);
            v.iter().enumerate().map(|(i, p)| Prediction { score: 1.0 - i as f32 / v.len() as f32, correct: p.correct }).collect()
        };
        for n in [1usize, 5, 20] {
            prop_assert!(p_at_n(&perfect, n) >= p_at_n(&preds, n) - 1e-6);
        }
    }

    #[test]
    fn max_f1_is_on_curve(preds in predictions()) {
        let pos = positives(&preds).max(1);
        let curve = pr_curve(preds, pos);
        let (f1, p, r) = max_f1(&curve);
        if f1 > 0.0 {
            // the reported (p, r) must be an actual curve point
            let found = curve.iter().any(|pt| (pt.precision - p).abs() < 1e-6 && (pt.recall - r).abs() < 1e-6);
            prop_assert!(found, "max-F1 point ({p}, {r}) not on curve");
            // and f1 must match its own formula
            prop_assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-5);
        }
    }

    #[test]
    fn score_shift_invariance(preds in predictions(), shift in 0.0f32..5.0) {
        // adding a constant to every score must not change any metric
        let hits = positives(&preds).max(1);
        let shifted: Vec<Prediction> = preds.iter().map(|p| Prediction { score: p.score + shift, correct: p.correct }).collect();
        let e1 = evaluate_predictions(preds, hits);
        let e2 = evaluate_predictions(shifted, hits);
        prop_assert!((e1.auc - e2.auc).abs() < 1e-6);
        prop_assert!((e1.f1 - e2.f1).abs() < 1e-6);
    }
}
