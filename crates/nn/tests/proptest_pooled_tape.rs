//! Bit-identity of pooled (buffer-recycling) tapes against fresh tapes.
//!
//! The tape's arena re-zeroes every buffer it hands out, so a warm tape —
//! one whose pool is full of recycled, previously-dirty buffers — must
//! produce **exactly** the same forward values and parameter gradients as a
//! tape allocating everything fresh, at any thread count. These properties
//! drive a PCNN-shaped graph (gather → unfold → matmul → piecewise max →
//! attention → cross-entropy) through both paths and compare bits.

use imre_nn::{pcnn_segments, GradStore, ParamStore, Tape};
use imre_tensor::pool::{self, ThreadPool};
use imre_tensor::{BufferPool, TensorRng};
use proptest::prelude::*;

struct Model {
    emb: imre_nn::ParamId,
    w: imre_nn::ParamId,
    q: imre_nn::ParamId,
}

fn build(seed: u64, vocab: usize, d: usize, k: usize) -> (ParamStore, Model) {
    let mut rng = TensorRng::seed(seed);
    let mut params = ParamStore::new();
    let emb = params.uniform("emb", &[vocab, d], 1.0, &mut rng);
    let w = params.xavier("w", 3 * d, k, &mut rng);
    let q = params.uniform("q", &[3 * k], 1.0, &mut rng);
    (params, Model { emb, w, q })
}

/// One full forward (+ optional backward) pass; returns the loss bits and
/// the tape so callers can inspect or recycle it.
fn forward(
    tape: &mut Tape,
    m: &Model,
    tokens: &[usize],
    segs: &[(usize, usize)],
    target: usize,
) -> (f32, imre_nn::Var) {
    let x = tape.gather(m.emb, tokens);
    let u = tape.unfold(x, 3);
    let wv = tape.param(m.w);
    let c = tape.matmul(u, wv);
    let pooled = tape.piecewise_max(c, segs);
    let act = tape.tanh(pooled);
    // tiny attention head exercising matvec/softmax/weighted_sum_rows
    let mat = tape.stack_rows(&[act, act]);
    let qv = tape.param(m.q);
    let scores = tape.matvec(mat, qv);
    let attn = tape.softmax(scores);
    let agg = tape.weighted_sum_rows(mat, attn);
    let loss = tape.softmax_cross_entropy(agg, target);
    (tape.value(loss).data()[0], loss)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn warm_inference_tape_is_bit_identical(
        seed in 0u64..10_000,
        t in 3usize..9,
        d in 2usize..5,
        k in 2usize..5,
        threads_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        let vocab = 11;
        let (params, model) = build(seed, vocab, d, k);
        let tokens: Vec<usize> = (0..t).map(|i| (seed as usize + 3 * i) % vocab).collect();
        let segs = pcnn_segments(t, (seed as usize) % t, (seed as usize / 5) % t);
        let target = (seed as usize) % (3 * k);

        pool::with_pool(&ThreadPool::new(threads), || {
            let mut fresh = Tape::inference(&params);
            let (expect, _) = forward(&mut fresh, &model, &tokens, &segs, target);

            let mut warm = Tape::inference(&params);
            for _ in 0..3 {
                let (got, _) = forward(&mut warm, &model, &tokens, &segs, target);
                prop_assert_eq!(expect.to_bits(), got.to_bits());
                warm.reset();
            }
            // After warm-up every pass is allocation-free.
            let base = warm.pool_stats();
            let (got, _) = forward(&mut warm, &model, &tokens, &segs, target);
            prop_assert_eq!(expect.to_bits(), got.to_bits());
            let delta = warm.pool_stats().since(&base);
            prop_assert_eq!(delta.misses, 0, "warm pass allocated: {:?}", delta);
            Ok(())
        })?;
    }

    #[test]
    fn warm_training_tape_gradients_are_bit_identical(
        seed in 0u64..10_000,
        t in 3usize..8,
        d in 2usize..4,
        k in 2usize..4,
        threads_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        let vocab = 9;
        let (params, model) = build(seed, vocab, d, k);
        let tokens: Vec<usize> = (0..t).map(|i| (seed as usize + i) % vocab).collect();
        let segs = pcnn_segments(t, (seed as usize) % t, (seed as usize / 3) % t);
        let target = (seed as usize) % (3 * k);

        pool::with_pool(&ThreadPool::new(threads), || {
            let mut expect = GradStore::zeros_like(&params);
            let mut fresh = Tape::new(&params);
            let (expect_loss, loss_var) = forward(&mut fresh, &model, &tokens, &segs, target);
            fresh.backward(loss_var, &mut expect);

            // Thread one arena through repeated steps; every step's loss and
            // gradients must match the fresh-tape step bitwise.
            let mut arena = BufferPool::new();
            for step in 0..3 {
                let mut grads = GradStore::zeros_like(&params);
                let mut tape = Tape::with_pool(&params, arena);
                let before = tape.pool_stats();
                let (got_loss, loss_var) = forward(&mut tape, &model, &tokens, &segs, target);
                arena = tape.backward(loss_var, &mut grads);
                prop_assert_eq!(expect_loss.to_bits(), got_loss.to_bits());
                for (id, _, _) in params.iter() {
                    prop_assert_eq!(expect.get(id).data(), grads.get(id).data());
                }
                if step > 0 {
                    let delta = arena.stats().since(&before);
                    prop_assert_eq!(delta.misses, 0, "warm step allocated: {:?}", delta);
                }
            }
            Ok(())
        })?;
    }
}
