//! Property-based gradient checks: for random shapes, seeds and targets, the
//! analytic gradients of composite graphs must match finite differences.

use imre_nn::gradcheck::check_param_gradient;
use imre_nn::{pcnn_segments, GradStore, ParamId, ParamStore, Tape};
use imre_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

const TOL: f32 = 3e-2;

fn check_all(
    params: &mut ParamStore,
    loss: &dyn Fn(&ParamStore) -> f32,
    grad: &dyn Fn(&ParamStore, &mut GradStore),
) {
    let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let r = check_param_gradient(params, id, 1e-2, loss, grad);
        assert!(
            r.max_rel_diff < TOL,
            "param {:?}: rel diff {}",
            id,
            r.max_rel_diff
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mlp_gradcheck(seed in 0u64..10_000, in_dim in 2usize..6, hidden in 2usize..6, classes in 2usize..5) {
        let mut rng = TensorRng::seed(seed);
        let mut params = ParamStore::new();
        let w1 = params.xavier("w1", in_dim, hidden, &mut rng);
        let b1 = params.zeros("b1", &[hidden]);
        let w2 = params.xavier("w2", hidden, classes, &mut rng);
        let x = Tensor::rand_uniform(&[1, in_dim], -1.0, 1.0, &mut rng);
        let target = (seed as usize) % classes;

        let f = move |store: &ParamStore, grads: Option<&mut GradStore>| -> f32 {
            let mut tape = Tape::new(store);
            let xv = tape.leaf(x.clone());
            let w1v = tape.param(w1);
            let b1v = tape.param(b1);
            let h = tape.matmul(xv, w1v);
            let h = tape.add_row_broadcast(h, b1v);
            let h = tape.tanh(h);
            let w2v = tape.param(w2);
            let o = tape.matmul(h, w2v);
            let flat = tape.reshape(o, &[classes]);
            let l = tape.softmax_cross_entropy(flat, target);
            let val = tape.value(l).data()[0];
            if let Some(g) = grads {
                tape.backward(l, g);
            }
            val
        };
        let loss = {
            let f = f.clone();
            move |s: &ParamStore| f(s, None)
        };
        let grad = move |s: &ParamStore, g: &mut GradStore| {
            f(s, Some(g));
        };
        check_all(&mut params, &loss, &grad);
    }

    #[test]
    fn pcnn_path_gradcheck(seed in 0u64..10_000, t in 3usize..8, d in 2usize..4, k in 2usize..4) {
        let mut rng = TensorRng::seed(seed);
        let mut params = ParamStore::new();
        let w = params.xavier("w", 3 * d, k, &mut rng);
        let x = Tensor::rand_uniform(&[t, d], -1.0, 1.0, &mut rng);
        let head = (seed as usize) % t;
        let tail = (seed as usize / 7) % t;
        let segs = pcnn_segments(t, head, tail);
        let target = (seed as usize) % (3 * k);

        let f = move |store: &ParamStore, grads: Option<&mut GradStore>| -> f32 {
            let mut tape = Tape::new(store);
            let xv = tape.leaf(x.clone());
            let u = tape.unfold(xv, 3);
            let wv = tape.param(w);
            let c = tape.matmul(u, wv);
            let pooled = tape.piecewise_max(c, &segs);
            let act = tape.tanh(pooled);
            let l = tape.softmax_cross_entropy(act, target);
            let val = tape.value(l).data()[0];
            if let Some(g) = grads {
                tape.backward(l, g);
            }
            val
        };
        let loss = {
            let f = f.clone();
            move |s: &ParamStore| f(s, None)
        };
        let grad = move |s: &ParamStore, g: &mut GradStore| {
            f(s, Some(g));
        };
        // Max-pool argmax ties can flip when a parameter is perturbed by ±h,
        // making the numeric gradient sample a different linear piece; a
        // smaller step and looser tolerance absorb near-tie cases.
        let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let r = check_param_gradient(&mut params, id, 2e-3, &loss, &grad);
            prop_assert!(r.max_rel_diff < 0.08, "param {:?}: rel diff {}", id, r.max_rel_diff);
        }
    }

    #[test]
    fn attention_mix_gradcheck(seed in 0u64..10_000, n in 2usize..5, k in 2usize..5) {
        let mut rng = TensorRng::seed(seed);
        let mut params = ParamStore::new();
        let mat = params.uniform("mat", &[n, k], 1.0, &mut rng);
        let q = params.uniform("q", &[k], 1.0, &mut rng);
        let alpha = params.register("alpha", Tensor::from_vec(vec![0.7], &[1]));
        let target = (seed as usize) % k;

        let f = move |store: &ParamStore, grads: Option<&mut GradStore>| -> f32 {
            let mut tape = Tape::new(store);
            let m = tape.param(mat);
            let qv = tape.param(q);
            let scores = tape.matvec(m, qv);
            let w = tape.softmax(scores);
            let agg = tape.weighted_sum_rows(m, w);
            let av = tape.param(alpha);
            let scaled = tape.scale_by_var(agg, av);
            let l = tape.softmax_cross_entropy(scaled, target);
            let val = tape.value(l).data()[0];
            if let Some(g) = grads {
                tape.backward(l, g);
            }
            val
        };
        let loss = move |s: &ParamStore| f(s, None);
        let grad = move |s: &ParamStore, g: &mut GradStore| {
            f(s, Some(g));
        };
        check_all(&mut params, &loss, &grad);
    }
}
