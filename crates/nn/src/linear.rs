//! Fully connected (dense) layer.

use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use imre_tensor::TensorRng;

/// A dense layer `y = x · W + b` with `W: [in, out]`, `b: [out]`.
///
/// All of the paper's confidence heads (`C_MR`, `C_T`, `RE`) are a `Linear`
/// followed by softmax; the combiner's outer transform is also a `Linear`.
pub struct Linear {
    /// Weight parameter, shape `[in_dim, out_dim]`.
    pub w: ParamId,
    /// Bias parameter, shape `[out_dim]`.
    pub b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialised dense layer under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let w = store.xavier(&format!("{name}.w"), in_dim, out_dim, rng);
        let b = store.zeros(&format!("{name}.b"), &[out_dim]);
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a rank-2 input `[n, in] → [n, out]`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        let xw = tape.matmul(x, w);
        tape.add_row_broadcast(xw, b)
    }

    /// Applies the layer to a rank-1 input `[in] → [out]`.
    pub fn forward_vec(&self, tape: &mut Tape, x: Var) -> Var {
        let x2 = tape.reshape(x, &[1, self.in_dim]);
        let y2 = self.forward(tape, x2);
        tape.reshape(y2, &[self.out_dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::GradStore;
    use imre_tensor::{assert_close, Tensor};

    #[test]
    fn forward_matches_manual() {
        let mut rng = TensorRng::seed(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        store.set(
            layer.w,
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]),
        );
        store.set(layer.b, Tensor::from_vec(vec![0.5, -0.5], &[2]));
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = layer.forward(&mut tape, x);
        // y0 = 1*1 + 2*0 + 3*1 + 0.5 = 4.5 ; y1 = 0 + 2 + 3 - 0.5 = 4.5
        assert_close(tape.value(y).data(), &[4.5, 4.5], 1e-6);
    }

    #[test]
    fn vec_and_matrix_paths_agree() {
        let mut rng = TensorRng::seed(2);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 4, 3, &mut rng);
        let input = Tensor::rand_uniform(&[4], -1.0, 1.0, &mut rng);

        let mut tape = Tape::new(&store);
        let xv = tape.leaf(input.clone());
        let yv = layer.forward_vec(&mut tape, xv);
        let vec_out = tape.value(yv).clone();

        let mut tape2 = Tape::new(&store);
        let xm = tape2.leaf(input.reshape(&[1, 4]));
        let ym = layer.forward(&mut tape2, xm);
        assert_close(vec_out.data(), tape2.value(ym).data(), 1e-6);
    }

    #[test]
    fn gradients_flow_to_both_params() {
        let mut rng = TensorRng::seed(3);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 3, 4, &mut rng);
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::rand_uniform(&[3], -1.0, 1.0, &mut rng));
        let y = layer.forward_vec(&mut tape, x);
        let loss = tape.softmax_cross_entropy(y, 2);
        tape.backward(loss, &mut grads);
        assert!(grads.get(layer.w).norm_l2() > 0.0);
        assert!(grads.get(layer.b).norm_l2() > 0.0);
    }
}
