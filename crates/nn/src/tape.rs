//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a forward computation as a flat list of nodes; calling
//! [`Tape::backward`] walks the list in reverse, propagating gradients to
//! every node and accumulating parameter gradients into a [`GradStore`].
//!
//! The op set is exactly what the paper's models need: dense algebra, the
//! embedding gather/scatter pair, conv-style unfolding, (piecewise) max
//! pooling with argmax routing, rank-1 softmax, selective-attention
//! primitives (`matvec`, `weighted_sum_rows`), and the softmax-cross-entropy
//! loss. Each op variant owns whatever forward context its backward rule
//! needs (argmax indices, saved probabilities), so backward never recomputes.
//!
//! **Memory model.** Every tape owns a [`BufferPool`]: op results are
//! allocated from it via the `_into` destination-passing kernels, and
//! [`Tape::reset`] recycles every owned node tensor back into it. A reused
//! inference tape therefore reaches a steady state where forward passes
//! perform **zero heap allocations** — every tensor is a (re-zeroed) pool
//! hit. Backward context is built lazily: on an inference tape no op payload
//! (gather indices, argmax tables, saved probabilities) is ever constructed.
//! [`Tape::backward_scaled`] recycles the node and adjoint tensors it
//! consumes and returns the pool, so a training loop can thread one arena
//! through every step. Pooled buffers are always re-zeroed on allocation,
//! which keeps results bit-identical to the plain allocating kernels.
//!
//! Typical usage — one tape per training bag:
//!
//! ```
//! use imre_nn::{ParamStore, GradStore, Tape};
//! use imre_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::seed(0);
//! let mut params = ParamStore::new();
//! let w = params.xavier("w", 4, 3, &mut rng);
//! let mut grads = GradStore::zeros_like(&params);
//!
//! let mut tape = Tape::new(&params);
//! let x = tape.leaf(Tensor::ones(&[1, 4]));
//! let wv = tape.param(w);
//! let h = tape.matmul(x, wv);
//! let h1 = tape.reshape(h, &[3]);
//! let loss = tape.softmax_cross_entropy(h1, 1);
//! tape.backward(loss, &mut grads);
//! assert_eq!(grads.get(w).shape(), &[4, 3]);
//! ```

use crate::param::{GradStore, ParamId, ParamStore};
use imre_tensor::{BufferPool, PoolStats, Tensor};

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// A contiguous row segment `[lo, hi)` used by piecewise pooling.
pub type Segment = (usize, usize);

enum Op {
    /// Constant input; receives no gradient.
    Leaf,
    /// A trainable parameter copied from the store.
    Param(ParamId),
    /// Rows of a parameter table (embedding lookup); grads scatter back.
    GatherParam(ParamId, Vec<usize>),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    /// Matrix plus per-row broadcast bias vector.
    AddRowBroadcast(Var, Var),
    Matmul(Var, Var),
    /// `mat [m,k] · vec [k] → [m]`.
    MatVec(Var, Var),
    Tanh(Var),
    Sigmoid(Var),
    Relu(Var),
    /// Natural log, input clamped to `LN_EPS` for stability.
    Ln(Var),
    /// View with a different shape (same data).
    Reshape(Var),
    /// Sliding-window unfold for 1-D convolution: `[T, d] → [T, w*d]`.
    Unfold {
        x: Var,
        window: usize,
    },
    /// Per-segment column max over rows; output is the concatenation of the
    /// per-segment max vectors. `argmax[s][c]` is the winning absolute row.
    PiecewiseMax {
        x: Var,
        segments: Vec<Segment>,
        argmax: Vec<Vec<usize>>,
    },
    /// Row `r` of a matrix as a rank-1 vector.
    SliceRow {
        x: Var,
        row: usize,
    },
    /// Column-wise mean of a matrix → rank-1.
    MeanRows(Var),
    /// Stack rank-1 vars into a matrix.
    StackRows(Vec<Var>),
    /// Concatenate rank-1 vars end-to-end.
    Concat(Vec<Var>),
    /// Concatenate rank-2 vars along the column axis (equal row counts).
    ConcatCols(Vec<Var>),
    /// Rank-1 softmax; backward uses the saved output.
    Softmax(Var),
    /// `x * s` where `s` is a `[1]` tensor (learned mixing weight).
    ScaleByVar {
        x: Var,
        s: Var,
    },
    /// Attention aggregation: `Σ_i w[i] · mat[i, :]`.
    WeightedSumRows {
        mat: Var,
        weights: Var,
    },
    /// `−log softmax(logits)[target]`; saves the probability vector.
    SoftmaxCrossEntropy {
        logits: Var,
        target: usize,
        probs: Tensor,
    },
}

/// A node's forward value: owned for computed results, borrowed straight
/// from the [`ParamStore`] for parameters (avoids cloning weight tables).
enum Val<'s> {
    Owned(Tensor),
    Borrowed(&'s Tensor),
}

impl Val<'_> {
    #[inline]
    fn tensor(&self) -> &Tensor {
        match self {
            Val::Owned(t) => t,
            Val::Borrowed(t) => t,
        }
    }
}

struct Node<'s> {
    value: Val<'s>,
    op: Op,
}

/// Minimum input to [`Tape::ln`]; inputs are clamped here to avoid `−∞`.
pub const LN_EPS: f32 = 1e-8;

/// A recorded forward computation, ready for one backward pass.
///
/// Tapes come in two flavours: [`Tape::new`] records every op's backward
/// context for a later [`Tape::backward`] pass, while [`Tape::inference`]
/// skips all backward bookkeeping (ops are stored as gradient-free leaves),
/// which makes pure forward passes cheaper and lets one tape be reused
/// across many inputs via [`Tape::reset`]. Both own a [`BufferPool`] arena;
/// pass one in via [`Tape::with_pool`] / [`Tape::inference_with_pool`] to
/// reuse buffers across tape lifetimes.
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node<'s>>,
    record: bool,
    pool: BufferPool,
}

impl<'s> Tape<'s> {
    /// Starts an empty recording tape reading parameter values from `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Tape::with_pool(store, BufferPool::new())
    }

    /// [`Tape::new`] with a caller-provided buffer arena (reused across
    /// tapes; get it back from [`Tape::backward_scaled`] / [`Tape::into_pool`]).
    pub fn with_pool(store: &'s ParamStore, pool: BufferPool) -> Self {
        Tape {
            store,
            nodes: Vec::with_capacity(64),
            record: true,
            pool,
        }
    }

    /// Starts a forward-only tape: no backward context is recorded, and
    /// [`Tape::backward`] panics. Use for prediction / serving paths.
    pub fn inference(store: &'s ParamStore) -> Self {
        Tape::inference_with_pool(store, BufferPool::new())
    }

    /// [`Tape::inference`] with a caller-provided buffer arena.
    pub fn inference_with_pool(store: &'s ParamStore, pool: BufferPool) -> Self {
        Tape {
            store,
            nodes: Vec::with_capacity(64),
            record: false,
            pool,
        }
    }

    /// Whether this tape records backward context.
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Clears all nodes, recycling every owned node tensor into the tape's
    /// buffer pool — so a reused tape's next forward pass is served from
    /// recycled buffers instead of the heap.
    pub fn reset(&mut self) {
        let Tape {
            ref mut nodes,
            ref mut pool,
            ..
        } = *self;
        for node in nodes.drain(..) {
            if let Val::Owned(t) = node.value {
                pool.recycle(t);
            }
        }
    }

    /// Consumes the tape, recycling its nodes, and hands the arena back.
    pub fn into_pool(mut self) -> BufferPool {
        self.reset();
        self.pool
    }

    /// A zero-filled tensor from the tape's arena. Callers use this to build
    /// leaf inputs without fresh heap allocations; hand unused tensors back
    /// via [`Tape::recycle`].
    pub fn alloc(&mut self, shape: &[usize]) -> Tensor {
        self.pool.alloc(shape)
    }

    /// Returns a tensor to the tape's arena.
    pub fn recycle(&mut self, t: Tensor) {
        self.pool.recycle(t)
    }

    /// Allocator-pressure counters of the tape's arena.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.push_val(Val::Owned(value), op)
    }

    fn push_val(&mut self, value: Val<'s>, op: Op) -> Var {
        let op = if self.record { op } else { Op::Leaf };
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Like [`Tape::push`], but builds the op payload lazily: on an
    /// inference tape the closure never runs, so ops whose backward context
    /// owns heap data (gather indices, stacked vars) allocate nothing.
    fn push_with(&mut self, value: Tensor, op: impl FnOnce() -> Op) -> Var {
        let op = if self.record { op() } else { Op::Leaf };
        self.nodes.push(Node {
            value: Val::Owned(value),
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    #[inline]
    pub fn value(&self, v: Var) -> &Tensor {
        self.nodes[v.0].value.tensor()
    }

    /// Number of recorded nodes (for tests / diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Records a constant input (no gradient flows into it).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Records a zero-filled constant of `shape` drawn from the tape's
    /// arena — the allocation-free way to seed e.g. an RNN's initial state.
    pub fn zeros_leaf(&mut self, shape: &[usize]) -> Var {
        let value = self.pool.alloc(shape);
        self.push(value, Op::Leaf)
    }

    /// Records a parameter; its gradient accumulates into the grad store.
    /// The value is borrowed from the store, never cloned.
    pub fn param(&mut self, id: ParamId) -> Var {
        self.push_val(Val::Borrowed(self.store.get(id)), Op::Param(id))
    }

    /// Embedding lookup: records `indices.len()` rows of parameter `id`
    /// without copying the whole table onto the tape. The scatter indices
    /// are copied only on recording tapes.
    pub fn gather(&mut self, id: ParamId, indices: &[usize]) -> Var {
        let table = self.store.get(id);
        let mut out = self.pool.alloc(&[indices.len(), table.cols()]);
        table.gather_rows_into(indices, &mut out);
        self.push_with(out, || Op::GatherParam(id, indices.to_vec()))
    }

    // ------------------------------------------------------------------
    // Algebra
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let (av, bv) = (nodes[a.0].value.tensor(), nodes[b.0].value.tensor());
        let mut out = pool.alloc(av.shape());
        av.add_into(bv, &mut out);
        self.push(out, Op::Add(a, b))
    }

    /// Elementwise difference `a − b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let (av, bv) = (nodes[a.0].value.tensor(), nodes[b.0].value.tensor());
        let mut out = pool.alloc(av.shape());
        av.sub_into(bv, &mut out);
        self.push(out, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let (av, bv) = (nodes[a.0].value.tensor(), nodes[b.0].value.tensor());
        let mut out = pool.alloc(av.shape());
        av.mul_into(bv, &mut out);
        self.push(out, Op::Mul(a, b))
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let av = nodes[a.0].value.tensor();
        let mut out = pool.alloc(av.shape());
        av.scale_into(s, &mut out);
        self.push(out, Op::Scale(a, s))
    }

    /// Matrix (rank-2) plus broadcast rank-1 bias.
    pub fn add_row_broadcast(&mut self, mat: Var, bias: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let (mv, bv) = (nodes[mat.0].value.tensor(), nodes[bias.0].value.tensor());
        let mut out = pool.alloc(mv.shape());
        mv.add_row_broadcast_into(bv, &mut out);
        self.push(out, Op::AddRowBroadcast(mat, bias))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let (av, bv) = (nodes[a.0].value.tensor(), nodes[b.0].value.tensor());
        let (m, k) = (av.rows(), av.cols());
        let (k2, n) = (bv.rows(), bv.cols());
        assert_eq!(
            k,
            k2,
            "Tape::matmul: inner dimension mismatch {:?} · {:?}",
            av.shape(),
            bv.shape()
        );
        let mut out = pool.alloc(&[m, n]);
        imre_tensor::matmul_into(av.data(), bv.data(), out.data_mut(), m, k, n);
        self.push(out, Op::Matmul(a, b))
    }

    /// Matrix–vector product, result rank-1.
    pub fn matvec(&mut self, mat: Var, vec: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let (mv, vv) = (nodes[mat.0].value.tensor(), nodes[vec.0].value.tensor());
        let mut out = pool.alloc(&[mv.rows()]);
        mv.matvec_into(vv, &mut out);
        self.push(out, Op::MatVec(mat, vec))
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let av = nodes[a.0].value.tensor();
        let mut out = pool.alloc(av.shape());
        av.tanh_into(&mut out);
        self.push(out, Op::Tanh(a))
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let av = nodes[a.0].value.tensor();
        let mut out = pool.alloc(av.shape());
        av.sigmoid_into(&mut out);
        self.push(out, Op::Sigmoid(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let av = nodes[a.0].value.tensor();
        let mut out = pool.alloc(av.shape());
        av.relu_into(&mut out);
        self.push(out, Op::Relu(a))
    }

    /// Elementwise natural log with input clamped to [`LN_EPS`].
    pub fn ln(&mut self, a: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let av = nodes[a.0].value.tensor();
        let mut out = pool.alloc(av.shape());
        av.map_into(&mut out, |x| x.max(LN_EPS).ln());
        self.push(out, Op::Ln(a))
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Shape view with identical data (copies into a pooled buffer).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let av = nodes[a.0].value.tensor();
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            av.len(),
            "Tape::reshape: cannot view {:?} ({} elems) as {:?} ({n} elems)",
            av.shape(),
            av.len(),
            shape
        );
        let mut out = pool.alloc(shape);
        out.data_mut().copy_from_slice(av.data());
        self.push(out, Op::Reshape(a))
    }

    /// Sliding-window unfold: row `t` of the output is the concatenation of
    /// rows `t − w/2 … t + w/2` of the input (zero padded at the ends).
    /// The convolution `Conv1d(x, W)` is then `unfold(x, w) · W`.
    ///
    /// # Panics
    /// If `window` is even or zero, or `x` is not rank-2.
    pub fn unfold(&mut self, x: Var, window: usize) -> Var {
        assert!(
            window % 2 == 1 && window > 0,
            "Tape::unfold: window must be odd and positive, got {window}"
        );
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let xv = nodes[x.0].value.tensor();
        let (t, d) = (xv.rows(), xv.cols());
        let half = window / 2;
        let mut out = pool.alloc(&[t, window * d]);
        // Row-parallel: output row `row` only reads input rows and writes its
        // own `window · d` slice, so partitioning cannot change the result.
        // Unfold is a pure copy (~0.25 ns/element), so the grain must be
        // large for a chunk to dwarf the ~650 ns pool dispatch cost (a
        // 64 Ki-element chunk copies for ~16 µs).
        let grain = (65536 / (window * d).max(1)).max(1);
        let src_data = xv.data();
        imre_tensor::pool::for_rows(out.data_mut(), t, window * d, grain, |lo, hi, shard| {
            for row in lo..hi {
                for o in 0..window {
                    // signed source row
                    let src = row as isize + o as isize - half as isize;
                    if src < 0 || src >= t as isize {
                        continue;
                    }
                    let src = src as usize;
                    let dst_off = (row - lo) * window * d + o * d;
                    shard[dst_off..dst_off + d].copy_from_slice(&src_data[src * d..(src + 1) * d]);
                }
            }
        });
        self.push(out, Op::Unfold { x, window })
    }

    /// Piecewise max pooling: per-column max over each row segment, outputs
    /// concatenated. With a single `(0, T)` segment this is ordinary global
    /// max pooling; with the three segments cut by the two entity positions
    /// it is the PCNN pooling of Zeng et al. (2015).
    ///
    /// On an inference tape this takes the values-only path — no argmax
    /// tables, no segment copies, no allocations beyond the pooled output.
    ///
    /// # Panics
    /// If any segment is empty or out of range.
    pub fn piecewise_max(&mut self, x: Var, segments: &[Segment]) -> Var {
        let record = self.record;
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let xv = nodes[x.0].value.tensor();
        let cols = xv.cols();
        let mut out = pool.alloc(&[segments.len() * cols]);
        let op = if record {
            let mut argmax = Vec::with_capacity(segments.len());
            for (s, &(lo, hi)) in segments.iter().enumerate() {
                let (vals, idx) = xv.max_over_rows(lo, hi);
                out.data_mut()[s * cols..(s + 1) * cols].copy_from_slice(vals.data());
                argmax.push(idx);
            }
            Op::PiecewiseMax {
                x,
                segments: segments.to_vec(),
                argmax,
            }
        } else {
            for (s, &(lo, hi)) in segments.iter().enumerate() {
                xv.max_over_rows_into(lo, hi, &mut out.data_mut()[s * cols..(s + 1) * cols]);
            }
            Op::Leaf
        };
        self.push_val(Val::Owned(out), op)
    }

    /// Row `row` of a rank-2 var as a rank-1 var (gradient scatters back
    /// into that row only).
    ///
    /// # Panics
    /// If out of range or `x` is not rank-2.
    pub fn slice_row(&mut self, x: Var, row: usize) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let xv = nodes[x.0].value.tensor();
        let mut out = pool.alloc(&[xv.cols()]);
        out.data_mut().copy_from_slice(xv.row(row));
        self.push(out, Op::SliceRow { x, row })
    }

    /// Column-wise mean of a matrix → rank-1 vector.
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let xv = nodes[x.0].value.tensor();
        let mut out = pool.alloc(&[xv.cols()]);
        xv.mean_rows_into(&mut out);
        self.push(out, Op::MeanRows(x))
    }

    /// Stacks rank-1 vars of equal length into a matrix.
    pub fn stack_rows(&mut self, rows: &[Var]) -> Var {
        assert!(!rows.is_empty(), "Tape::stack_rows: nothing to stack");
        let out = {
            let (nodes, pool) = (&self.nodes, &mut self.pool);
            let cols = nodes[rows[0].0].value.tensor().len();
            let mut out = pool.alloc(&[rows.len(), cols]);
            for (i, &r) in rows.iter().enumerate() {
                let rv = nodes[r.0].value.tensor();
                assert_eq!(
                    rv.len(),
                    cols,
                    "Tape::stack_rows: row {i} has len {} expected {cols}",
                    rv.len()
                );
                out.data_mut()[i * cols..(i + 1) * cols].copy_from_slice(rv.data());
            }
            out
        };
        self.push_with(out, || Op::StackRows(rows.to_vec()))
    }

    /// Concatenates rank-1 vars end to end.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        let out = {
            let (nodes, pool) = (&self.nodes, &mut self.pool);
            let total: usize = parts.iter().map(|&p| nodes[p.0].value.tensor().len()).sum();
            let mut out = pool.alloc(&[total]);
            let mut off = 0;
            for &p in parts {
                let pv = nodes[p.0].value.tensor();
                out.data_mut()[off..off + pv.len()].copy_from_slice(pv.data());
                off += pv.len();
            }
            out
        };
        self.push_with(out, || Op::Concat(parts.to_vec()))
    }

    /// Concatenates rank-2 vars side by side (equal row counts).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(
            !parts.is_empty(),
            "Tape::concat_cols: nothing to concatenate"
        );
        let out = {
            let (nodes, pool) = (&self.nodes, &mut self.pool);
            let rows = nodes[parts[0].0].value.tensor().rows();
            let total_cols: usize = parts
                .iter()
                .map(|&p| nodes[p.0].value.tensor().cols())
                .sum();
            for (i, &p) in parts.iter().enumerate() {
                let pv = nodes[p.0].value.tensor();
                assert_eq!(
                    pv.rows(),
                    rows,
                    "Tape::concat_cols: part {i} has {} rows expected {rows}",
                    pv.rows()
                );
            }
            let mut out = pool.alloc(&[rows, total_cols]);
            for r in 0..rows {
                let mut off = 0;
                for &p in parts {
                    let pv = nodes[p.0].value.tensor();
                    let pc = pv.cols();
                    out.data_mut()[r * total_cols + off..r * total_cols + off + pc]
                        .copy_from_slice(pv.row(r));
                    off += pc;
                }
            }
            out
        };
        self.push_with(out, || Op::ConcatCols(parts.to_vec()))
    }

    // ------------------------------------------------------------------
    // Attention / output heads
    // ------------------------------------------------------------------

    /// Rank-1 softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let av = nodes[a.0].value.tensor();
        let mut out = pool.alloc(av.shape());
        av.softmax_into(&mut out);
        self.push(out, Op::Softmax(a))
    }

    /// `x` scaled by a learned `[1]` tensor `s` (the paper's α/β/γ weights).
    ///
    /// # Panics
    /// If `s` does not hold exactly one element.
    pub fn scale_by_var(&mut self, x: Var, s: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let sv = nodes[s.0].value.tensor();
        assert_eq!(
            sv.len(),
            1,
            "Tape::scale_by_var: scale must be a [1] tensor"
        );
        let sv = sv.data()[0];
        let xv = nodes[x.0].value.tensor();
        let mut out = pool.alloc(xv.shape());
        xv.scale_into(sv, &mut out);
        self.push(out, Op::ScaleByVar { x, s })
    }

    /// Attention aggregation `Σ_i weights[i] · mat[i, :]` → rank-1.
    ///
    /// # Panics
    /// If `weights.len() != mat.rows()`.
    pub fn weighted_sum_rows(&mut self, mat: Var, weights: Var) -> Var {
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let m = nodes[mat.0].value.tensor();
        let w = nodes[weights.0].value.tensor();
        assert_eq!(
            w.len(),
            m.rows(),
            "Tape::weighted_sum_rows: {} weights for {} rows",
            w.len(),
            m.rows()
        );
        let cols = m.cols();
        let mut out = pool.alloc(&[cols]);
        {
            let o = out.data_mut();
            for (i, &wi) in w.data().iter().enumerate() {
                for (oo, &x) in o.iter_mut().zip(m.row(i)) {
                    *oo += wi * x;
                }
            }
        }
        self.push(out, Op::WeightedSumRows { mat, weights })
    }

    /// Cross-entropy of rank-1 `logits` against a hard `target` class.
    /// Returns a `[1]` tensor holding `−log softmax(logits)[target]`.
    ///
    /// On an inference tape the probability vector is never materialised —
    /// the loss is computed scalar-wise with the identical max/exp/sum
    /// sequence, so the value is bit-identical to the recording path.
    ///
    /// # Panics
    /// If `target` is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, target: usize) -> Var {
        let record = self.record;
        let (nodes, pool) = (&self.nodes, &mut self.pool);
        let l = nodes[logits.0].value.tensor();
        assert!(
            target < l.len(),
            "Tape::softmax_cross_entropy: target {target} out of {} classes",
            l.len()
        );
        let (loss, op) = if record {
            let mut probs = pool.alloc(l.shape());
            l.softmax_into(&mut probs);
            let loss = -(probs.data()[target].max(LN_EPS)).ln();
            (
                loss,
                Op::SoftmaxCrossEntropy {
                    logits,
                    target,
                    probs,
                },
            )
        } else {
            let m = l.max();
            let mut z = 0.0f32;
            for &x in l.data() {
                z += (x - m).exp();
            }
            let p = (l.data()[target] - m).exp() / z;
            (-(p.max(LN_EPS)).ln(), Op::Leaf)
        };
        let mut out = pool.alloc(&[1]);
        out.data_mut()[0] = loss;
        self.push_val(Val::Owned(out), op)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from scalar node `loss`, multiplying
    /// by `seed`, and accumulates parameter gradients into `grads`.
    ///
    /// The tape is consumed: one tape, one backward pass. Every node tensor
    /// and adjoint is recycled into the tape's arena, which is returned so
    /// the next step can reuse it via [`Tape::with_pool`].
    ///
    /// # Panics
    /// If `loss` is not a single-element tensor, or the tape was built with
    /// [`Tape::inference`] (no backward context was recorded).
    pub fn backward_scaled(self, loss: Var, seed: f32, grads: &mut GradStore) -> BufferPool {
        let Tape {
            store: _,
            nodes,
            record,
            mut pool,
        } = self;
        assert!(
            record,
            "Tape::backward: cannot differentiate an inference tape"
        );
        assert_eq!(
            nodes[loss.0].value.tensor().len(),
            1,
            "Tape::backward: loss must be scalar"
        );
        let mut adj: Vec<Option<Tensor>> = (0..nodes.len()).map(|_| None).collect();
        let mut seed_t = pool.alloc(&[1]);
        seed_t.data_mut()[0] = seed;
        adj[loss.0] = Some(seed_t);

        // Accumulate a delta into an adjoint slot; merged deltas go back to
        // the arena immediately.
        fn acc(adj: &mut [Option<Tensor>], pool: &mut BufferPool, i: usize, delta: Tensor) {
            match &mut adj[i] {
                Some(g) => {
                    g.add_assign(&delta);
                    pool.recycle(delta);
                }
                slot @ None => *slot = Some(delta),
            }
        }

        /// A pooled copy of `t` (replaces `t.clone()` on the hot path).
        fn copy_of(pool: &mut BufferPool, t: &Tensor) -> Tensor {
            let mut out = pool.alloc(t.shape());
            out.data_mut().copy_from_slice(t.data());
            out
        }

        for i in (0..nodes.len()).rev() {
            let g = match adj[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &nodes[i];
            match &node.op {
                Op::Leaf => pool.recycle(g),
                Op::Param(id) => {
                    grads.accumulate(*id, &g);
                    pool.recycle(g);
                }
                Op::GatherParam(id, indices) => {
                    grads.get_mut(*id).scatter_add_rows(indices, &g);
                    pool.recycle(g);
                }
                Op::Add(a, b) => {
                    let da = copy_of(&mut pool, &g);
                    acc(&mut adj, &mut pool, a.0, da);
                    acc(&mut adj, &mut pool, b.0, g);
                }
                Op::Sub(a, b) => {
                    let da = copy_of(&mut pool, &g);
                    acc(&mut adj, &mut pool, a.0, da);
                    let mut db = pool.alloc(g.shape());
                    g.scale_into(-1.0, &mut db);
                    acc(&mut adj, &mut pool, b.0, db);
                    pool.recycle(g);
                }
                Op::Mul(a, b) => {
                    let mut da = pool.alloc(g.shape());
                    g.mul_into(nodes[b.0].value.tensor(), &mut da);
                    let mut db = pool.alloc(g.shape());
                    g.mul_into(nodes[a.0].value.tensor(), &mut db);
                    acc(&mut adj, &mut pool, a.0, da);
                    acc(&mut adj, &mut pool, b.0, db);
                    pool.recycle(g);
                }
                Op::Scale(a, s) => {
                    let mut da = pool.alloc(g.shape());
                    g.scale_into(*s, &mut da);
                    acc(&mut adj, &mut pool, a.0, da);
                    pool.recycle(g);
                }
                Op::AddRowBroadcast(mat, bias) => {
                    let mut db = pool.alloc(&[g.cols()]);
                    g.sum_rows_into(&mut db);
                    acc(&mut adj, &mut pool, bias.0, db);
                    acc(&mut adj, &mut pool, mat.0, g);
                }
                Op::Matmul(a, b) => {
                    let av = nodes[a.0].value.tensor();
                    let bv = nodes[b.0].value.tensor();
                    let (m, k) = (av.rows(), av.cols());
                    let n = bv.cols();
                    // da = g · bᵀ, db = aᵀ · g — the same kernels the
                    // allocating matmul_nt / matmul_tn wrappers call, into
                    // zeroed pooled buffers.
                    let mut da = pool.alloc(&[m, k]);
                    imre_tensor::matmul_nt_into(g.data(), bv.data(), da.data_mut(), m, n, k);
                    let mut db = pool.alloc(&[k, n]);
                    imre_tensor::matmul_tn_into(av.data(), g.data(), db.data_mut(), k, m, n);
                    acc(&mut adj, &mut pool, a.0, da);
                    acc(&mut adj, &mut pool, b.0, db);
                    pool.recycle(g);
                }
                Op::MatVec(mat, vec) => {
                    let vecv = nodes[vec.0].value.tensor();
                    let mut dm = pool.alloc(&[g.len(), vecv.len()]);
                    {
                        let n = vecv.len();
                        let o = dm.data_mut();
                        for (i, &gi) in g.data().iter().enumerate() {
                            for (r, &b) in o[i * n..(i + 1) * n].iter_mut().zip(vecv.data()) {
                                *r = gi * b;
                            }
                        }
                    }
                    let dv = nodes[mat.0].value.tensor().transpose().matvec(&g);
                    acc(&mut adj, &mut pool, mat.0, dm);
                    acc(&mut adj, &mut pool, vec.0, dv);
                    pool.recycle(g);
                }
                Op::Tanh(a) => {
                    let y = node.value.tensor();
                    let mut da = pool.alloc(y.shape());
                    for ((d, &gi), &yi) in da.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                        *d = gi * (1.0 - yi * yi);
                    }
                    acc(&mut adj, &mut pool, a.0, da);
                    pool.recycle(g);
                }
                Op::Sigmoid(a) => {
                    let y = node.value.tensor();
                    let mut da = pool.alloc(y.shape());
                    for ((d, &gi), &yi) in da.data_mut().iter_mut().zip(g.data()).zip(y.data()) {
                        *d = gi * yi * (1.0 - yi);
                    }
                    acc(&mut adj, &mut pool, a.0, da);
                    pool.recycle(g);
                }
                Op::Relu(a) => {
                    let x = nodes[a.0].value.tensor();
                    let mut da = pool.alloc(x.shape());
                    for ((d, &gi), &xi) in da.data_mut().iter_mut().zip(g.data()).zip(x.data()) {
                        *d = if xi > 0.0 { gi } else { 0.0 };
                    }
                    acc(&mut adj, &mut pool, a.0, da);
                    pool.recycle(g);
                }
                Op::Ln(a) => {
                    let x = nodes[a.0].value.tensor();
                    let mut da = pool.alloc(x.shape());
                    for ((d, &gi), &xi) in da.data_mut().iter_mut().zip(g.data()).zip(x.data()) {
                        *d = gi / xi.max(LN_EPS);
                    }
                    acc(&mut adj, &mut pool, a.0, da);
                    pool.recycle(g);
                }
                Op::Reshape(a) => {
                    let mut da = pool.alloc(nodes[a.0].value.tensor().shape());
                    da.data_mut().copy_from_slice(g.data());
                    acc(&mut adj, &mut pool, a.0, da);
                    pool.recycle(g);
                }
                Op::Unfold { x, window } => {
                    let xv = &nodes[x.0].value.tensor();
                    let (t, d) = (xv.rows(), xv.cols());
                    let window = *window;
                    let half = window / 2;
                    let mut dx = pool.alloc(&[t, d]);
                    // Inverted loop nest vs. the forward pass: iterate over
                    // *destination* (input-gradient) rows so each task owns a
                    // disjoint shard of `dx` — the scatter over overlapping
                    // windows becomes a per-row gather with no atomics.
                    // For dx row `src` the contributions are g[row, o·d..]
                    // with row = src + half − o; descending `o` replays the
                    // legacy ascending-`row` accumulation order exactly.
                    // Large grain: the gather is memory-bound, so small
                    // chunks would be dominated by dispatch overhead
                    // (64 Ki elements ≈ 16 µs per chunk).
                    let grain = (65536 / (window * d).max(1)).max(1);
                    let g_data = g.data();
                    imre_tensor::pool::for_rows(dx.data_mut(), t, d, grain, |lo, hi, shard| {
                        for src in lo..hi {
                            let dst = &mut shard[(src - lo) * d..(src - lo + 1) * d];
                            for o in (0..window).rev() {
                                let row = src as isize + half as isize - o as isize;
                                if row < 0 || row >= t as isize {
                                    continue;
                                }
                                let g_off = row as usize * window * d + o * d;
                                let gsl = &g_data[g_off..g_off + d];
                                for (a, &b) in dst.iter_mut().zip(gsl) {
                                    *a += b;
                                }
                            }
                        }
                    });
                    acc(&mut adj, &mut pool, x.0, dx);
                    pool.recycle(g);
                }
                Op::PiecewiseMax {
                    x,
                    segments,
                    argmax,
                } => {
                    let xv = &nodes[x.0].value.tensor();
                    let cols = xv.cols();
                    let mut dx = pool.alloc(&[xv.rows(), cols]);
                    for (s, seg_argmax) in argmax.iter().enumerate().take(segments.len()) {
                        for (c, &r) in seg_argmax.iter().enumerate() {
                            *dx.at_mut(r, c) += g.data()[s * cols + c];
                        }
                    }
                    acc(&mut adj, &mut pool, x.0, dx);
                    pool.recycle(g);
                }
                Op::SliceRow { x, row } => {
                    let xv = &nodes[x.0].value.tensor();
                    let mut dx = pool.alloc(&[xv.rows(), xv.cols()]);
                    dx.row_mut(*row).copy_from_slice(g.data());
                    acc(&mut adj, &mut pool, x.0, dx);
                    pool.recycle(g);
                }
                Op::MeanRows(x) => {
                    let xv = &nodes[x.0].value.tensor();
                    let (rows, cols) = (xv.rows(), xv.cols());
                    let inv = 1.0 / rows as f32;
                    let mut dx = pool.alloc(&[rows, cols]);
                    for r in 0..rows {
                        for (d, &gi) in dx.row_mut(r).iter_mut().zip(g.data()) {
                            *d = gi * inv;
                        }
                    }
                    acc(&mut adj, &mut pool, x.0, dx);
                    pool.recycle(g);
                }
                Op::StackRows(rows) => {
                    let cols = node.value.tensor().cols();
                    for (r, var) in rows.iter().enumerate() {
                        let mut slice = pool.alloc(&[cols]);
                        slice
                            .data_mut()
                            .copy_from_slice(&g.data()[r * cols..(r + 1) * cols]);
                        acc(&mut adj, &mut pool, var.0, slice);
                    }
                    pool.recycle(g);
                }
                Op::Concat(parts) => {
                    let mut off = 0;
                    for var in parts {
                        let n = nodes[var.0].value.tensor().len();
                        let mut slice = pool.alloc(&[n]);
                        slice.data_mut().copy_from_slice(&g.data()[off..off + n]);
                        acc(&mut adj, &mut pool, var.0, slice);
                        off += n;
                    }
                    pool.recycle(g);
                }
                Op::ConcatCols(parts) => {
                    let rows = node.value.tensor().rows();
                    let total_cols = node.value.tensor().cols();
                    let mut off = 0;
                    for var in parts {
                        let pc = nodes[var.0].value.tensor().cols();
                        let mut slice = pool.alloc(&[rows, pc]);
                        for r in 0..rows {
                            let src = &g.data()[r * total_cols + off..r * total_cols + off + pc];
                            slice.data_mut()[r * pc..(r + 1) * pc].copy_from_slice(src);
                        }
                        acc(&mut adj, &mut pool, var.0, slice);
                        off += pc;
                    }
                    pool.recycle(g);
                }
                Op::Softmax(a) => {
                    // dx = y ⊙ (g − ⟨g, y⟩)
                    let y = node.value.tensor();
                    let gy: f32 = g.dot(y);
                    let mut da = pool.alloc(y.shape());
                    for ((d, &yi), &gi) in da.data_mut().iter_mut().zip(y.data()).zip(g.data()) {
                        *d = yi * (gi - gy);
                    }
                    acc(&mut adj, &mut pool, a.0, da);
                    pool.recycle(g);
                }
                Op::ScaleByVar { x, s } => {
                    let sv = nodes[s.0].value.tensor().data()[0];
                    let mut dx = pool.alloc(g.shape());
                    g.scale_into(sv, &mut dx);
                    let mut ds = pool.alloc(&[1]);
                    ds.data_mut()[0] = g.dot(nodes[x.0].value.tensor());
                    acc(&mut adj, &mut pool, x.0, dx);
                    acc(&mut adj, &mut pool, s.0, ds);
                    pool.recycle(g);
                }
                Op::WeightedSumRows { mat, weights } => {
                    let m = &nodes[mat.0].value.tensor();
                    let w = &nodes[weights.0].value.tensor();
                    let cols = m.cols();
                    let mut dm = pool.alloc(&[m.rows(), cols]);
                    let mut dw = pool.alloc(&[w.len()]);
                    for (i, &wi) in w.data().iter().enumerate() {
                        let row = m.row(i);
                        let drow = dm.row_mut(i);
                        for (d, &gi) in drow.iter_mut().zip(g.data()) {
                            *d = wi * gi;
                        }
                        dw.data_mut()[i] = g.data().iter().zip(row).map(|(&gi, &xi)| gi * xi).sum();
                    }
                    acc(&mut adj, &mut pool, mat.0, dm);
                    acc(&mut adj, &mut pool, weights.0, dw);
                    pool.recycle(g);
                }
                Op::SoftmaxCrossEntropy {
                    logits,
                    target,
                    probs,
                } => {
                    let g0 = g.data()[0];
                    let mut dl = copy_of(&mut pool, probs);
                    dl.data_mut()[*target] -= 1.0;
                    for x in dl.data_mut() {
                        *x *= g0;
                    }
                    acc(&mut adj, &mut pool, logits.0, dl);
                    pool.recycle(g);
                }
            }
        }

        // Return every owned forward value to the arena before handing the
        // pool back for the next step.
        for node in nodes {
            if let Val::Owned(t) = node.value {
                pool.recycle(t);
            }
            if let Op::SoftmaxCrossEntropy { probs, .. } = node.op {
                pool.recycle(probs);
            }
        }
        pool
    }

    /// [`Tape::backward_scaled`] with seed 1.
    pub fn backward(self, loss: Var, grads: &mut GradStore) -> BufferPool {
        self.backward_scaled(loss, 1.0, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;
    use imre_tensor::{assert_close, TensorRng};

    fn setup() -> (ParamStore, TensorRng) {
        (ParamStore::new(), TensorRng::seed(42))
    }

    #[test]
    fn add_backward_distributes() {
        let (mut store, _) = setup();
        let a = store.register("a", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = store.register("b", Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let (va, vb) = (tape.param(a), tape.param(b));
        let s = tape.add(va, vb);
        let w = tape.leaf(Tensor::from_vec(vec![2.0, -1.0], &[2]));
        let m = tape.mul(s, w);
        // loss = 2*(a0+b0) - (a1+b1); use concat+softmax_ce? simpler: reduce via weighted sum
        let ones = tape.leaf(Tensor::ones(&[2]));
        let mat = tape.stack_rows(&[m]);
        let loss_vec = tape.matvec(mat, ones);
        let loss = tape.reshape(loss_vec, &[1]);
        tape.backward(loss, &mut grads);
        assert_eq!(grads.get(a).data(), &[2.0, -1.0]);
        assert_eq!(grads.get(b).data(), &[2.0, -1.0]);
    }

    #[test]
    fn matmul_backward_shapes_and_values() {
        let (mut store, mut rng) = setup();
        let a = store.register("a", Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng));
        let b = store.register("b", Tensor::rand_uniform(&[3, 2], -1.0, 1.0, &mut rng));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let (va, vb) = (tape.param(a), tape.param(b));
        let c = tape.matmul(va, vb); // [2,2]
        let flat = tape.reshape(c, &[4]);
        let loss = tape.softmax_cross_entropy(flat, 0);
        tape.backward(loss, &mut grads);
        assert_eq!(grads.get(a).shape(), &[2, 3]);
        assert_eq!(grads.get(b).shape(), &[3, 2]);
        assert!(grads.get(a).norm_l2() > 0.0);
    }

    #[test]
    fn softmax_cross_entropy_grad_is_p_minus_onehot() {
        let (mut store, _) = setup();
        let l = store.register("logits", Tensor::from_vec(vec![1.0, 2.0, 0.5], &[3]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vl = tape.param(l);
        let loss = tape.softmax_cross_entropy(vl, 1);
        let p = store.get(l).softmax();
        tape.backward(loss, &mut grads);
        let expect = vec![p.data()[0], p.data()[1] - 1.0, p.data()[2]];
        assert_close(grads.get(l).data(), &expect, 1e-5);
    }

    #[test]
    fn gather_scatters_gradient_sparsely() {
        let (mut store, mut rng) = setup();
        let table = store.register("emb", Tensor::rand_uniform(&[5, 3], -1.0, 1.0, &mut rng));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let rows = tape.gather(table, &[1, 3, 1]);
        let pooled = tape.piecewise_max(rows, &[(0, 3)]);
        let loss = tape.softmax_cross_entropy(pooled, 0);
        tape.backward(loss, &mut grads);
        let g = grads.get(table);
        // rows 0, 2, 4 never touched
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(g.row(2), &[0.0, 0.0, 0.0]);
        assert_eq!(g.row(4), &[0.0, 0.0, 0.0]);
        assert!(g.row(1).iter().chain(g.row(3)).any(|&x| x != 0.0));
    }

    #[test]
    fn piecewise_max_routes_to_argmax_rows() {
        let (mut store, _) = setup();
        let x = store.register(
            "x",
            Tensor::from_vec(
                vec![
                    1.0, 9.0, //
                    5.0, 2.0, //
                    3.0, 7.0, //
                    0.0, 8.0, //
                ],
                &[4, 2],
            ),
        );
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        let pooled = tape.piecewise_max(vx, &[(0, 2), (2, 4)]); // len 4
        let loss = tape.softmax_cross_entropy(pooled, 0);
        tape.backward(loss, &mut grads);
        let g = grads.get(x);
        // segment 1 argmax col0 = row1(5.0), col1 = row0(9.0)
        assert_ne!(g.at(1, 0), 0.0);
        assert_ne!(g.at(0, 1), 0.0);
        assert_eq!(g.at(0, 0), 0.0);
        assert_eq!(g.at(1, 1), 0.0);
        // segment 2 argmax col0 = row2(3.0), col1 = row3(8.0)
        assert_ne!(g.at(2, 0), 0.0);
        assert_ne!(g.at(3, 1), 0.0);
        assert_eq!(g.at(3, 0), 0.0);
        assert_eq!(g.at(2, 1), 0.0);
    }

    #[test]
    fn unfold_forward_zero_pads() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]));
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        let u = tape.unfold(vx, 3);
        assert_eq!(tape.value(u).shape(), &[3, 3]);
        assert_eq!(tape.value(u).row(0), &[0.0, 1.0, 2.0]); // left pad
        assert_eq!(tape.value(u).row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(tape.value(u).row(2), &[2.0, 3.0, 0.0]); // right pad
    }

    #[test]
    fn weighted_sum_rows_matches_manual() {
        let (mut store, _) = setup();
        let m = store.register("m", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let w = store.register("w", Tensor::from_vec(vec![0.25, 0.75], &[2]));
        let mut tape = Tape::new(&store);
        let (vm, vw) = (tape.param(m), tape.param(w));
        let out = tape.weighted_sum_rows(vm, vw);
        assert_close(tape.value(out).data(), &[0.25 + 2.25, 0.5 + 3.0], 1e-6);
    }

    #[test]
    fn scale_by_var_gradients() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let s = store.register("s", Tensor::from_vec(vec![0.5], &[1]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let (vx, vs) = (tape.param(x), tape.param(s));
        let y = tape.scale_by_var(vx, vs);
        let loss = tape.softmax_cross_entropy(y, 0);
        tape.backward(loss, &mut grads);
        // ds = dot(dL/dy, x); dL/dy = s_grad_direction — just check non-zero & finite
        assert!(grads.get(s).data()[0].is_finite());
        assert!(grads.get(x).norm_l2() > 0.0);
    }

    #[test]
    fn softmax_node_backward_sums_to_zero() {
        // Softmax Jacobian rows sum to zero ⇒ gradient wrt logits sums to ~0.
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![0.2, -0.3, 1.1], &[3]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        let sm = tape.softmax(vx);
        let w = tape.leaf(Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]));
        let weighted = tape.mul(sm, w);
        let mat = tape.stack_rows(&[weighted]);
        let ones = tape.leaf(Tensor::ones(&[3]));
        let sum_vec = tape.matvec(mat, ones);
        let loss = tape.reshape(sum_vec, &[1]);
        tape.backward(loss, &mut grads);
        let total: f32 = grads.get(x).data().iter().sum();
        assert!(total.abs() < 1e-5, "softmax grad sum {total}");
    }

    #[test]
    fn backward_seed_scales_gradients() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![1.0, -1.0], &[2]));
        let mut g1 = GradStore::zeros_like(&store);
        let mut g2 = GradStore::zeros_like(&store);
        for (seed, grads) in [(1.0, &mut g1), (2.5, &mut g2)] {
            let mut tape = Tape::new(&store);
            let vx = tape.param(x);
            let loss = tape.softmax_cross_entropy(vx, 0);
            tape.backward_scaled(loss, seed, grads);
        }
        assert_close(g2.get(x).data(), g1.get(x).scale(2.5).data(), 1e-6);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = x + x should give dy/dx = 2
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![0.7], &[1]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        let y = tape.add(vx, vx);
        tape.backward(y, &mut grads);
        assert_close(grads.get(x).data(), &[2.0], 1e-6);
    }

    #[test]
    fn concat_cols_backward_splits_gradient() {
        let (mut store, _) = setup();
        let a = store.register("a", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = store.register("b", Tensor::from_vec(vec![5.0, 6.0], &[2, 1]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let (va, vb) = (tape.param(a), tape.param(b));
        let cat = tape.concat_cols(&[va, vb]); // [2,3]
        assert_eq!(tape.value(cat).shape(), &[2, 3]);
        assert_eq!(tape.value(cat).row(0), &[1.0, 2.0, 5.0]);
        let flat = tape.reshape(cat, &[6]);
        let loss = tape.softmax_cross_entropy(flat, 2); // index 2 = b's first row
        tape.backward(loss, &mut grads);
        assert_eq!(grads.get(a).shape(), &[2, 2]);
        assert_eq!(grads.get(b).shape(), &[2, 1]);
        // gradient of CE wrt logit 2 is p−1 < 0, lands in b's row 0
        assert!(grads.get(b).at(0, 0) < 0.0);
        assert!(
            grads.get(a).data().iter().all(|&g| g > 0.0),
            "non-target logits get p > 0"
        );
    }

    #[test]
    fn ln_backward_is_reciprocal() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![2.0, 4.0], &[2]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        let lx = tape.ln(vx);
        assert_close(tape.value(lx).data(), &[2.0f32.ln(), 4.0f32.ln()], 1e-6);
        // reduce via weighted pick of element 0 only
        let picker = tape.leaf(Tensor::from_vec(vec![1.0, 0.0], &[2]));
        let prod = tape.mul(lx, picker);
        let mat = tape.stack_rows(&[prod]);
        let ones = tape.leaf(Tensor::ones(&[2]));
        let summed = tape.matvec(mat, ones);
        let loss = tape.reshape(summed, &[1]);
        tape.backward(loss, &mut grads);
        assert_close(grads.get(x).data(), &[0.5, 0.0], 1e-6);
    }

    #[test]
    fn mean_rows_backward_distributes_evenly() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        let m = tape.mean_rows(vx); // [2]
        let loss = tape.softmax_cross_entropy(m, 0);
        tape.backward(loss, &mut grads);
        let g = grads.get(x);
        // every row receives the same per-column gradient (1/rows share)
        assert_close(g.row(0), g.row(1), 1e-6);
        assert!(
            g.at(0, 0) < 0.0,
            "target column pushed up ⇒ negative CE grad"
        );
    }

    #[test]
    fn relu_backward_masks_negatives() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        let r = tape.relu(vx);
        let loss = tape.softmax_cross_entropy(r, 1);
        tape.backward(loss, &mut grads);
        assert_eq!(
            grads.get(x).data()[0],
            0.0,
            "negative input blocks gradient"
        );
        assert_ne!(grads.get(x).data()[1], 0.0);
    }

    #[test]
    fn inference_tape_matches_recording_forward() {
        let (mut store, mut rng) = setup();
        let w = store.register("w", Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng));
        let emb = store.register("emb", Tensor::rand_uniform(&[6, 4], -1.0, 1.0, &mut rng));
        let run = |tape: &mut Tape| -> Vec<f32> {
            let rows = tape.gather(emb, &[0, 2, 5]);
            let wv = tape.param(w);
            let h = tape.matmul(rows, wv);
            let t = tape.tanh(h);
            let pooled = tape.piecewise_max(t, &[(0, 2), (2, 3)]);
            let sm = tape.softmax(pooled);
            tape.value(sm).data().to_vec()
        };
        let mut rec = Tape::new(&store);
        let mut inf = Tape::inference(&store);
        assert_eq!(run(&mut rec), run(&mut inf));
        assert!(!inf.is_recording());
    }

    #[test]
    fn inference_tape_reset_reuses_allocation() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let mut tape = Tape::inference(&store);
        let first = {
            let vx = tape.param(x);
            let y = tape.tanh(vx);
            tape.value(y).data().to_vec()
        };
        assert_eq!(tape.len(), 2);
        tape.reset();
        assert!(tape.is_empty());
        let second = {
            let vx = tape.param(x);
            let y = tape.tanh(vx);
            tape.value(y).data().to_vec()
        };
        assert_eq!(first, second);
    }

    #[test]
    fn warm_inference_tape_hits_pool_only() {
        // After one warm-up forward, a reused inference tape must serve
        // every tensor from recycled buffers: zero pool misses per pass.
        let (mut store, mut rng) = setup();
        let w = store.register("w", Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng));
        let emb = store.register("emb", Tensor::rand_uniform(&[6, 4], -1.0, 1.0, &mut rng));
        let mut tape = Tape::inference(&store);
        let run = |tape: &mut Tape| {
            let rows = tape.gather(emb, &[0, 2, 5]);
            let wv = tape.param(w);
            let h = tape.matmul(rows, wv);
            let t = tape.tanh(h);
            let pooled = tape.piecewise_max(t, &[(0, 2), (2, 3)]);
            let sm = tape.softmax(pooled);
            let _ = tape.softmax_cross_entropy(sm, 1);
        };
        run(&mut tape);
        tape.reset();
        let warm = tape.pool_stats();
        for _ in 0..50 {
            run(&mut tape);
            tape.reset();
        }
        let steady = tape.pool_stats().since(&warm);
        assert_eq!(steady.misses, 0, "warm tape must not allocate: {steady:?}");
        assert!(steady.hits > 0);
    }

    #[test]
    fn backward_returns_reusable_arena() {
        // Threading the arena through repeated train steps reaches zero
        // misses, and gradients stay identical to fresh-tape steps.
        let (mut store, mut rng) = setup();
        let w = store.register("w", Tensor::rand_uniform(&[3, 2], -1.0, 1.0, &mut rng));
        let step = |tape: &mut Option<Tape>, grads: &mut GradStore| {
            let mut t = tape.take().expect("tape present");
            let vw = t.param(w);
            let x = t.leaf(Tensor::from_vec(vec![1.0, -0.5, 2.0], &[1, 3]));
            let h = t.matmul(x, vw);
            let flat = t.reshape(h, &[2]);
            let loss = t.softmax_cross_entropy(flat, 0);
            t.backward(loss, grads)
        };
        let mut fresh = GradStore::zeros_like(&store);
        let mut pooled_grads = GradStore::zeros_like(&store);
        {
            let mut t = Some(Tape::new(&store));
            step(&mut t, &mut fresh);
        }
        let mut pool = BufferPool::new();
        for i in 0..5 {
            let mut t = Some(Tape::with_pool(&store, pool));
            let before = t.as_ref().unwrap().pool_stats();
            pooled_grads.zero();
            pool = step(&mut t, &mut pooled_grads);
            if i > 0 {
                let d = pool.stats().since(&before);
                assert_eq!(d.misses, 0, "warm train step must not allocate: {d:?}");
            }
        }
        assert_eq!(pooled_grads.get(w).data(), fresh.get(w).data());
    }

    #[test]
    #[should_panic(expected = "cannot differentiate an inference tape")]
    fn backward_on_inference_tape_panics() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::inference(&store);
        let vx = tape.param(x);
        let loss = tape.softmax_cross_entropy(vx, 0);
        tape.backward(loss, &mut grads);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_nonscalar_panics() {
        let (mut store, _) = setup();
        let x = store.register("x", Tensor::zeros(&[2]));
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let vx = tape.param(x);
        tape.backward(vx, &mut grads);
    }
}
