//! Inverted dropout.
//!
//! At train time each element is kept with probability `1 − p` and scaled by
//! `1/(1 − p)` so activations keep their expected magnitude; at eval time the
//! layer is the identity. The paper uses p = 0.5 on the sentence encoding.

use crate::tape::{Tape, Var};
use imre_tensor::{Tensor, TensorRng};

/// Dropout configuration.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "Dropout: p must be in [0,1), got {p}"
        );
        Dropout { p }
    }

    /// Applies dropout when `training`, otherwise passes through.
    ///
    /// The mask is sampled from `rng`, recorded as a constant leaf, and the
    /// gradient flows through the surviving elements only.
    pub fn forward(&self, tape: &mut Tape, x: Var, training: bool, rng: &mut TensorRng) -> Var {
        if !training || self.p == 0.0 {
            return x;
        }
        let shape = tape.value(x).shape().to_vec();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let n: usize = shape.iter().product();
        let mask_data: Vec<f32> = (0..n)
            .map(|_| if rng.bernoulli(keep) { scale } else { 0.0 })
            .collect();
        let mask = tape.leaf(Tensor::from_vec(mask_data, &shape));
        tape.mul(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;

    #[test]
    fn eval_mode_is_identity() {
        let store = ParamStore::new();
        let mut rng = TensorRng::seed(1);
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::ones(&[10]));
        let y = Dropout::new(0.5).forward(&mut tape, x, false, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn train_mode_zeroes_and_rescales() {
        let store = ParamStore::new();
        let mut rng = TensorRng::seed(2);
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::ones(&[10_000]));
        let y = Dropout::new(0.5).forward(&mut tape, x, true, &mut rng);
        let out = tape.value(y);
        let zeros = out.data().iter().filter(|&&v| v == 0.0).count();
        let twos = out
            .data()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + twos, 10_000, "values must be 0 or 1/(1-p)");
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.03);
        // expectation preserved
        assert!((out.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn p_zero_is_identity_even_training() {
        let store = ParamStore::new();
        let mut rng = TensorRng::seed(3);
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::ones(&[5]));
        let y = Dropout::new(0.0).forward(&mut tape, x, true, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn invalid_p_panics() {
        let _ = Dropout::new(1.0);
    }
}
