//! Persistent model parameters and their gradient buffers.
//!
//! Parameters live outside any single computation tape so that one set of
//! weights can be trained across many [`crate::Tape`]s (one per bag/batch).
//! Gradients accumulate in a parallel [`GradStore`]; the optimizer consumes
//! both and the grad store is zeroed between steps.

use imre_tensor::{Tensor, TensorRng};

/// Handle to a parameter registered in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter inside its store.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A named collection of trainable tensors.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor as a trainable parameter.
    ///
    /// # Panics
    /// If a parameter with the same name already exists.
    pub fn register(&mut self, name: &str, tensor: Tensor) -> ParamId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "ParamStore::register: duplicate parameter name {name:?}"
        );
        self.names.push(name.to_string());
        self.tensors.push(tensor);
        ParamId(self.tensors.len() - 1)
    }

    /// Registers a Xavier-initialised `[fan_in, fan_out]` weight.
    pub fn xavier(
        &mut self,
        name: &str,
        fan_in: usize,
        fan_out: usize,
        rng: &mut TensorRng,
    ) -> ParamId {
        self.register(name, Tensor::xavier(fan_in, fan_out, rng))
    }

    /// Registers a zero-initialised tensor (typical for biases).
    pub fn zeros(&mut self, name: &str, shape: &[usize]) -> ParamId {
        self.register(name, Tensor::zeros(shape))
    }

    /// Registers a uniformly-initialised tensor (typical for embeddings).
    pub fn uniform(
        &mut self,
        name: &str,
        shape: &[usize],
        bound: f32,
        rng: &mut TensorRng,
    ) -> ParamId {
        self.register(name, Tensor::rand_uniform(shape, -bound, bound, rng))
    }

    /// Borrow a parameter's current value.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutably borrow a parameter (used by optimizers and tests).
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Overwrites a parameter's value (e.g. loading pre-trained embeddings).
    ///
    /// # Panics
    /// If the new tensor's shape differs from the registered one.
    pub fn set(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.tensors[id.0].shape(),
            value.shape(),
            "ParamStore::set: shape mismatch for {:?}",
            self.names[id.0]
        );
        self.tensors[id.0] = value;
    }

    /// Copies every parameter value from `other` into this store — the
    /// broadcast half of data-parallel training: after the optimizer steps
    /// the primary replica, the updated values are memcpy'd into every
    /// other replica's store. Both stores must have been built by the same
    /// architecture (same registration order, names, and shapes).
    ///
    /// # Panics
    /// If the stores differ in parameter count or any tensor shape.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.tensors.len(),
            other.tensors.len(),
            "ParamStore::copy_values_from: parameter count mismatch"
        );
        for (i, (dst, src)) in self.tensors.iter_mut().zip(&other.tensors).enumerate() {
            assert_eq!(
                dst.shape(),
                src.shape(),
                "ParamStore::copy_values_from: shape mismatch for {:?}",
                self.names[i]
            );
            dst.data_mut().copy_from_slice(src.data());
        }
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of trainable scalars across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Iterates over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.names
            .iter()
            .zip(&self.tensors)
            .enumerate()
            .map(|(i, (n, t))| (ParamId(i), n.as_str(), t))
    }
}

/// Gradient buffers mirroring a [`ParamStore`].
pub struct GradStore {
    grads: Vec<Tensor>,
}

impl GradStore {
    /// Creates zeroed gradient buffers matching `store`'s parameter shapes.
    pub fn zeros_like(store: &ParamStore) -> Self {
        GradStore {
            grads: store
                .tensors
                .iter()
                .map(|t| Tensor::zeros(t.shape()))
                .collect(),
        }
    }

    /// Borrow the gradient of a parameter.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutably borrow the gradient of a parameter.
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Accumulates `delta` into a parameter's gradient.
    pub fn accumulate(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0].add_assign(delta);
    }

    /// Accumulates every gradient buffer of `other` into this store — the
    /// pairwise combine of the data-parallel tree all-reduce. Summation
    /// order inside each buffer is the element order, so for a fixed pair
    /// the result is bit-identical no matter which thread runs it.
    ///
    /// # Panics
    /// If the stores differ in buffer count or any tensor shape.
    pub fn add_from(&mut self, other: &GradStore) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "GradStore::add_from: buffer count mismatch"
        );
        for (dst, src) in self.grads.iter_mut().zip(&other.grads) {
            dst.add_assign(src);
        }
    }

    /// Zeroes all gradients (between optimizer steps).
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm over all gradients (used for clipping).
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| {
                let n = g.norm_l2();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients by a constant (used for clipping / batch mean).
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.grads {
            g.map_in_place(|x| x * s);
        }
    }

    /// Number of gradient buffers.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_set_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones(&[2, 2]));
        assert_eq!(store.get(id).data(), &[1.0; 4]);
        store.set(id, Tensor::zeros(&[2, 2]));
        assert_eq!(store.get(id).data(), &[0.0; 4]);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.find("w"), Some(id));
        assert_eq!(store.find("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.zeros("w", &[1]);
        store.zeros("w", &[1]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_wrong_shape_panics() {
        let mut store = ParamStore::new();
        let id = store.zeros("w", &[2]);
        store.set(id, Tensor::zeros(&[3]));
    }

    #[test]
    fn scalar_count() {
        let mut store = ParamStore::new();
        store.zeros("a", &[2, 3]);
        store.zeros("b", &[4]);
        assert_eq!(store.num_scalars(), 10);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut store = ParamStore::new();
        let id = store.zeros("w", &[2]);
        let mut grads = GradStore::zeros_like(&store);
        grads.accumulate(id, &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        grads.accumulate(id, &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(grads.get(id).data(), &[2.0, 4.0]);
        grads.zero();
        assert_eq!(grads.get(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn global_norm_and_scale() {
        let mut store = ParamStore::new();
        let a = store.zeros("a", &[1]);
        let b = store.zeros("b", &[1]);
        let mut grads = GradStore::zeros_like(&store);
        grads.accumulate(a, &Tensor::from_vec(vec![3.0], &[1]));
        grads.accumulate(b, &Tensor::from_vec(vec![4.0], &[1]));
        assert!((grads.global_norm() - 5.0).abs() < 1e-6);
        grads.scale(0.5);
        assert_eq!(grads.get(a).data(), &[1.5]);
    }

    #[test]
    fn copy_values_from_broadcasts() {
        let mut a = ParamStore::new();
        let id = a.register("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let mut b = ParamStore::new();
        b.register("w", Tensor::zeros(&[2]));
        b.copy_values_from(&a);
        assert_eq!(b.get(id).data(), &[1.0, 2.0]);
        // Independent storage: mutating the source must not leak.
        a.get_mut(id).data_mut()[0] = 9.0;
        assert_eq!(b.get(id).data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_values_from_shape_mismatch_panics() {
        let a = {
            let mut s = ParamStore::new();
            s.zeros("w", &[2]);
            s
        };
        let mut b = ParamStore::new();
        b.zeros("w", &[3]);
        b.copy_values_from(&a);
    }

    #[test]
    fn add_from_accumulates_pairwise() {
        let mut store = ParamStore::new();
        let id = store.zeros("w", &[2]);
        let mut a = GradStore::zeros_like(&store);
        let mut b = GradStore::zeros_like(&store);
        a.accumulate(id, &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        b.accumulate(id, &Tensor::from_vec(vec![10.0, 20.0], &[2]));
        a.add_from(&b);
        assert_eq!(a.get(id).data(), &[11.0, 22.0]);
        assert_eq!(b.get(id).data(), &[10.0, 20.0], "source unchanged");
    }

    #[test]
    fn iter_yields_all() {
        let mut store = ParamStore::new();
        store.zeros("a", &[1]);
        store.zeros("b", &[2]);
        let names: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
