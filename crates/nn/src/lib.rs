//! # imre-nn
//!
//! Tape-based automatic differentiation and the neural-network layers used by
//! the `imre` reproduction of Kuang et al., *Improving Neural Relation
//! Extraction with Implicit Mutual Relations* (ICDE 2020).
//!
//! The crate is deliberately small and auditable:
//!
//! * [`ParamStore`] / [`GradStore`] hold persistent weights and their
//!   gradient buffers across training steps.
//! * [`Tape`] records one forward computation (typically one sentence bag)
//!   and plays it backwards to accumulate gradients. The op set — embedding
//!   gather, conv unfold, piecewise max pooling with argmax routing, rank-1
//!   softmax, selective-attention primitives, softmax cross-entropy — is
//!   exactly what the paper's CNN/PCNN/GRU relation extractors require.
//! * Layers: [`Linear`], [`Conv1d`] (+ the PCNN pooling helpers),
//!   [`GruCell`] / [`BiGru`], [`Dropout`].
//! * Optimizers: [`Sgd`] (the paper's choice, lr 0.3) and [`Adam`].
//! * [`gradcheck`] verifies every backward rule against central finite
//!   differences; downstream crates reuse it in their own tests.

pub mod conv;
pub mod dropout;
pub mod gradcheck;
pub mod gru;
pub mod linear;
pub mod optim;
pub mod param;
pub mod serialize;
pub mod tape;

pub use conv::{
    max_pool_tanh, pcnn_segments, pcnn_segments_array, piecewise_max_pool_tanh, Conv1d,
};
pub use dropout::Dropout;
pub use gru::{BiGru, GruCell, GruVars};
pub use linear::Linear;
pub use optim::{Adam, Sgd};
pub use param::{GradStore, ParamId, ParamStore};
pub use serialize::{load_params, read_params, save_params, write_params};
pub use tape::{Segment, Tape, Var, LN_EPS};
