//! Optimizers: plain SGD (the paper trains with SGD, lr 0.3) and Adam
//! (used for the graph-embedding substrate where it converges faster).

use crate::param::{GradStore, ParamStore};
use imre_tensor::Tensor;

/// Stochastic gradient descent with optional weight decay, gradient clipping
/// and multiplicative learning-rate decay.
pub struct Sgd {
    /// Current learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient (0 disables).
    pub weight_decay: f32,
    /// Global-norm clip threshold (`None` disables).
    pub clip_norm: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate, no decay, no clipping.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            weight_decay: 0.0,
            clip_norm: None,
        }
    }

    /// Builder: sets L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Builder: sets global-norm gradient clipping.
    pub fn with_clip_norm(mut self, c: f32) -> Self {
        self.clip_norm = Some(c);
        self
    }

    /// Applies one update: `θ ← θ − lr · (g + wd·θ)`, then zeroes the grads.
    pub fn step(&self, params: &mut ParamStore, grads: &mut GradStore) {
        if let Some(c) = self.clip_norm {
            let n = grads.global_norm();
            if n > c && n > 0.0 {
                grads.scale(c / n);
            }
        }
        for i in 0..params.len() {
            let id = crate::param::ParamId(i);
            if self.weight_decay > 0.0 {
                let decay: Tensor = params.get(id).scale(self.weight_decay);
                grads.get_mut(id).add_assign(&decay);
            }
            let g = grads.get(id).clone();
            params.get_mut(id).axpy(-self.lr, &g);
        }
        grads.zero();
    }

    /// Multiplies the learning rate by `factor` (epoch-level decay).
    pub fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with default moments (β₁ 0.9, β₂ 0.999, ε 1e-8), buffers sized
    /// to match `params`.
    pub fn new(lr: f32, params: &ParamStore) -> Self {
        let m = params
            .iter()
            .map(|(_, _, t)| Tensor::zeros(t.shape()))
            .collect();
        let v = params
            .iter()
            .map(|(_, _, t)| Tensor::zeros(t.shape()))
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m,
            v,
        }
    }

    /// Rebuilds an Adam optimizer from checkpointed state: the step count
    /// and both moment vectors, exactly as returned by [`Adam::steps`] and
    /// [`Adam::moments`]. Resuming training from a checkpoint restored this
    /// way is bit-identical to never having stopped.
    ///
    /// # Panics
    /// If the moment vectors disagree in length.
    pub fn restore(lr: f32, t: u64, m: Vec<Tensor>, v: Vec<Tensor>) -> Self {
        assert_eq!(m.len(), v.len(), "Adam::restore: moment count mismatch");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t,
            m,
            v,
        }
    }

    /// Number of optimizer steps taken so far (the bias-correction clock).
    /// Data-parallel training must advance this exactly once per combined
    /// mini-batch, no matter how many replicas contributed gradients.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The first and second moment buffers, in parameter order (for
    /// checkpointing).
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Applies one Adam update and zeroes the grads.
    ///
    /// # Panics
    /// If `params` gained parameters since construction.
    pub fn step(&mut self, params: &mut ParamStore, grads: &mut GradStore) {
        assert_eq!(
            params.len(),
            self.m.len(),
            "Adam::step: parameter count changed since Adam::new"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let id = crate::param::ParamId(i);
            let g = grads.get(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let p = params.get_mut(id);
            for ((pi, &mi), &vi) in p.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        grads.zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{GradStore, ParamStore};
    use crate::tape::Tape;

    fn quadratic_loss_grad(
        params: &ParamStore,
        grads: &mut GradStore,
        id: crate::param::ParamId,
    ) -> f32 {
        // loss = Σ x² via tape: softmax CE won't do; just compute grad = 2x manually
        let x = params.get(id).clone();
        grads.accumulate(id, &x.scale(2.0));
        x.data().iter().map(|v| v * v).sum()
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut params = ParamStore::new();
        let id = params.register("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut grads = GradStore::zeros_like(&params);
        let sgd = Sgd::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let loss = quadratic_loss_grad(&params, &mut grads, id);
            assert!(loss <= last + 1e-6, "loss increased: {loss} > {last}");
            last = loss;
            sgd.step(&mut params, &mut grads);
        }
        assert!(params.get(id).norm_l2() < 0.01);
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let mut params = ParamStore::new();
        let id = params.register("x", Tensor::from_vec(vec![1.0], &[1]));
        let mut grads = GradStore::zeros_like(&params);
        let sgd = Sgd::new(0.1).with_weight_decay(0.5);
        sgd.step(&mut params, &mut grads); // zero grad, only decay applies
        assert!((params.get(id).data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn sgd_clips_large_gradients() {
        let mut params = ParamStore::new();
        let id = params.register("x", Tensor::from_vec(vec![0.0], &[1]));
        let mut grads = GradStore::zeros_like(&params);
        grads.accumulate(id, &Tensor::from_vec(vec![100.0], &[1]));
        let sgd = Sgd::new(1.0).with_clip_norm(1.0);
        sgd.step(&mut params, &mut grads);
        assert!(
            (params.get(id).data()[0] + 1.0).abs() < 1e-5,
            "clip should bound the step to lr·clip"
        );
    }

    #[test]
    fn lr_decay() {
        let mut sgd = Sgd::new(0.3);
        sgd.decay_lr(0.5);
        assert!((sgd.lr - 0.15).abs() < 1e-7);
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut params = ParamStore::new();
        let id = params.register("x", Tensor::from_vec(vec![5.0, -3.0, 2.0], &[3]));
        let mut grads = GradStore::zeros_like(&params);
        let mut adam = Adam::new(0.1, &params);
        for _ in 0..300 {
            let _ = quadratic_loss_grad(&params, &mut grads, id);
            adam.step(&mut params, &mut grads);
        }
        assert!(
            params.get(id).norm_l2() < 0.05,
            "norm {}",
            params.get(id).norm_l2()
        );
    }

    #[test]
    fn adam_restore_resumes_bit_identically() {
        let mut params_a = ParamStore::new();
        let id_a = params_a.register("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut params_b = ParamStore::new();
        let id_b = params_b.register("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut grads_a = GradStore::zeros_like(&params_a);
        let mut grads_b = GradStore::zeros_like(&params_b);

        let mut adam_a = Adam::new(0.1, &params_a);
        let mut adam_b = Adam::new(0.1, &params_b);
        for _ in 0..5 {
            let _ = quadratic_loss_grad(&params_a, &mut grads_a, id_a);
            adam_a.step(&mut params_a, &mut grads_a);
            let _ = quadratic_loss_grad(&params_b, &mut grads_b, id_b);
            adam_b.step(&mut params_b, &mut grads_b);
        }
        assert_eq!(adam_a.steps(), 5);

        // Checkpoint b, rebuild it, continue both: trajectories must agree
        // exactly.
        let (m, v) = adam_b.moments();
        let mut adam_b = Adam::restore(adam_b.lr, adam_b.steps(), m.to_vec(), v.to_vec());
        for _ in 0..5 {
            let _ = quadratic_loss_grad(&params_a, &mut grads_a, id_a);
            adam_a.step(&mut params_a, &mut grads_a);
            let _ = quadratic_loss_grad(&params_b, &mut grads_b, id_b);
            adam_b.step(&mut params_b, &mut grads_b);
        }
        assert_eq!(params_a.get(id_a).data(), params_b.get(id_b).data());
        assert_eq!(adam_a.steps(), adam_b.steps());
    }

    #[test]
    fn optimizers_zero_grads_after_step() {
        let mut params = ParamStore::new();
        let id = params.register("x", Tensor::ones(&[2]));
        let mut grads = GradStore::zeros_like(&params);
        grads.accumulate(id, &Tensor::ones(&[2]));
        Sgd::new(0.1).step(&mut params, &mut grads);
        assert_eq!(grads.get(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn sgd_trains_through_tape() {
        // End-to-end sanity: minimise CE of a linear layer on one example.
        use imre_tensor::TensorRng;
        let mut rng = TensorRng::seed(0);
        let mut params = ParamStore::new();
        let w = params.xavier("w", 4, 3, &mut rng);
        let mut grads = GradStore::zeros_like(&params);
        let sgd = Sgd::new(0.5);
        let x_data = Tensor::rand_uniform(&[1, 4], -1.0, 1.0, &mut rng);
        let mut losses = Vec::new();
        for _ in 0..30 {
            let mut tape = Tape::new(&params);
            let x = tape.leaf(x_data.clone());
            let wv = tape.param(w);
            let h = tape.matmul(x, wv);
            let hv = tape.reshape(h, &[3]);
            let loss = tape.softmax_cross_entropy(hv, 2);
            losses.push(tape.value(loss).data()[0]);
            tape.backward(loss, &mut grads);
            sgd.step(&mut params, &mut grads);
        }
        assert!(
            losses[29] < losses[0] * 0.5,
            "loss did not halve: {} → {}",
            losses[0],
            losses[29]
        );
    }
}
