//! Binary persistence for parameter stores.
//!
//! A released relation-extraction system must save trained weights and load
//! them later (the paper's pipeline trains LINE offline, then reuses the
//! embeddings across every model). This module implements a small
//! self-describing little-endian format — no external serialisation crate:
//!
//! ```text
//! magic "IMRP" | u32 version | u32 n_params
//! per param: u32 name_len | name bytes | u32 rank | u64 dims… | f32 data…
//! ```

use crate::param::ParamStore;
use imre_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"IMRP";
const VERSION: u32 = 1;

/// Writes every parameter of `store` to `w`.
pub fn write_params<W: Write>(store: &ParamStore, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, tensor) in store.iter() {
        let name_bytes = name.as_bytes();
        w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        w.write_all(name_bytes)?;
        w.write_all(&(tensor.rank() as u32).to_le_bytes())?;
        for &d in tensor.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in tensor.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a parameter store written by [`write_params`].
///
/// # Errors
/// On malformed input (wrong magic, truncated data, bad version).
pub fn read_params<R: Read>(r: &mut R) -> io::Result<ParamStore> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an IMRP parameter file",
        ));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported IMRP version {version}"),
        ));
    }
    let n = read_u32(r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..n {
        let name_len = read_u32(r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_u32(r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(r)? as usize);
        }
        let len: usize = shape.iter().product();
        let mut data = vec![0f32; len];
        let mut buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        store.register(&name, Tensor::from_vec(data, &shape));
    }
    Ok(store)
}

/// Saves a parameter store to a file.
pub fn save_params(store: &ParamStore, path: &Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_params(store, &mut file)
}

/// Loads a parameter store from a file.
pub fn load_params(path: &Path) -> io::Result<ParamStore> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    read_params(&mut file)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_tensor::TensorRng;

    fn sample_store() -> ParamStore {
        let mut rng = TensorRng::seed(3);
        let mut store = ParamStore::new();
        store.xavier("layer.w", 4, 6, &mut rng);
        store.zeros("layer.b", &[6]);
        store.uniform("emb", &[10, 3], 0.5, &mut rng);
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_params(&store, &mut buf).unwrap();
        let loaded = read_params(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for (id, name, tensor) in store.iter() {
            let lid = loaded.find(name).expect("param present");
            assert_eq!(loaded.get(lid).shape(), tensor.shape());
            assert_eq!(loaded.get(lid).data(), tensor.data());
            let _ = id;
        }
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store();
        let dir = std::env::temp_dir().join("imre_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.imrp");
        save_params(&store, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.num_scalars(), store.num_scalars());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = match read_params(&mut buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("bad magic accepted"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_data_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_params(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(read_params(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_params(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ParamStore::new();
        let mut buf = Vec::new();
        write_params(&store, &mut buf).unwrap();
        let loaded = read_params(&mut buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
    }
}
