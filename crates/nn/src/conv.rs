//! 1-D convolution over a token sequence, implemented as unfold + matmul,
//! plus the max-pooling heads the paper's CNN/PCNN encoders use.

use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use imre_tensor::TensorRng;

/// Same-padded 1-D convolution: input `[T, in_dim] → [T, filters]`.
///
/// Zeng et al.'s relation-extraction CNN (and the PCNN variant the paper
/// builds on) slides `filters` windows of width `window` over the token
/// sequence. We realise it as `unfold(x, window) · W + b`, which reuses the
/// matmul kernel and gets the unfold's scatter gradient for free.
pub struct Conv1d {
    /// Weight parameter, shape `[window * in_dim, filters]`.
    pub w: ParamId,
    /// Bias parameter, shape `[filters]`.
    pub b: ParamId,
    window: usize,
    in_dim: usize,
    filters: usize,
}

impl Conv1d {
    /// Registers a convolution layer under `name`.
    ///
    /// # Panics
    /// If `window` is even or zero.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        filters: usize,
        window: usize,
        rng: &mut TensorRng,
    ) -> Self {
        assert!(
            window % 2 == 1 && window > 0,
            "Conv1d: window must be odd and positive, got {window}"
        );
        let w = store.xavier(&format!("{name}.w"), window * in_dim, filters, rng);
        let b = store.zeros(&format!("{name}.b"), &[filters]);
        Conv1d {
            w,
            b,
            window,
            in_dim,
            filters,
        }
    }

    /// Number of filters (output channels).
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Window (kernel) width.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Applies the convolution: `[T, in_dim] → [T, filters]`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let u = tape.unfold(x, self.window);
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        let c = tape.matmul(u, w);
        tape.add_row_broadcast(c, b)
    }
}

/// Global max pooling over the whole sequence, then tanh: `[T, k] → [k]`.
///
/// This is the pooling of the plain CNN encoder (Zeng et al. 2014).
pub fn max_pool_tanh(tape: &mut Tape, conv_out: Var) -> Var {
    let t = tape.value(conv_out).rows();
    let pooled = tape.piecewise_max(conv_out, &[(0, t)]);
    tape.tanh(pooled)
}

/// Piecewise max pooling (Zeng et al. 2015), then tanh: `[T, k] → [3k]`.
///
/// The sequence is cut into three segments by the two entity positions
/// (`head_pos ≤ tail_pos`); each segment is max-pooled separately so the
/// encoder keeps the structure *before / between / after* the entity pair.
/// Degenerate cuts (entity at the boundary) fall back to clamped non-empty
/// segments, matching the standard PCNN implementations.
pub fn piecewise_max_pool_tanh(
    tape: &mut Tape,
    conv_out: Var,
    head_pos: usize,
    tail_pos: usize,
) -> Var {
    let t = tape.value(conv_out).rows();
    let segments = pcnn_segments(t, head_pos, tail_pos);
    let pooled = tape.piecewise_max(conv_out, &segments);
    tape.tanh(pooled)
}

/// Computes the three non-empty PCNN segments for a sequence of length `t`
/// with entity mentions at `head_pos` and `tail_pos`.
///
/// # Panics
/// If `t == 0` or a position is out of range.
pub fn pcnn_segments(t: usize, head_pos: usize, tail_pos: usize) -> Vec<(usize, usize)> {
    pcnn_segments_array(t, head_pos, tail_pos).to_vec()
}

/// [`pcnn_segments`] without the heap allocation: the fixed three-segment
/// split as an array. The int8 inference path calls this per sentence inside
/// its zero-allocation steady state.
pub fn pcnn_segments_array(t: usize, head_pos: usize, tail_pos: usize) -> [(usize, usize); 3] {
    assert!(t > 0, "pcnn_segments: empty sequence");
    if t == 1 {
        return [(0, 1), (0, 1), (0, 1)];
    }
    let (p1, p2) = if head_pos <= tail_pos {
        (head_pos, tail_pos)
    } else {
        (tail_pos, head_pos)
    };
    assert!(
        p2 < t,
        "pcnn_segments: entity position {p2} out of range for length {t}"
    );
    // Boundary-sharing segments, each including its entity token(s), as in
    // the reference PCNN implementations: [0, p1], [p1, p2], [p2, t). Sharing
    // the entity rows keeps every segment non-empty for all positions.
    [(0, p1 + 1), (p1, p2 + 1), (p2, t)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::GradStore;
    use imre_tensor::{assert_close, Tensor};

    #[test]
    fn conv_shapes() {
        let mut rng = TensorRng::seed(1);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, "c", 5, 8, 3, &mut rng);
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::rand_uniform(&[7, 5], -1.0, 1.0, &mut rng));
        let y = conv.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), &[7, 8]);
    }

    #[test]
    fn conv_known_values_window1() {
        // window 1 degenerates to a per-position linear map — easy oracle.
        let mut rng = TensorRng::seed(2);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, "c", 2, 1, 1, &mut rng);
        store.set(conv.w, Tensor::from_vec(vec![2.0, -1.0], &[2, 1]));
        store.set(conv.b, Tensor::from_vec(vec![0.5], &[1]));
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 1.0, 3.0, 0.0], &[2, 2]));
        let y = conv.forward(&mut tape, x);
        assert_close(tape.value(y).data(), &[1.5, 6.5], 1e-6);
    }

    #[test]
    fn conv_window3_uses_neighbours() {
        let mut rng = TensorRng::seed(3);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, "c", 1, 1, 3, &mut rng);
        // W picks only the *previous* token: weights [1, 0, 0]
        store.set(conv.w, Tensor::from_vec(vec![1.0, 0.0, 0.0], &[3, 1]));
        store.set(conv.b, Tensor::zeros(&[1]));
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3, 1]));
        let y = conv.forward(&mut tape, x);
        // position 0 has zero-padded left neighbour
        assert_close(tape.value(y).data(), &[0.0, 10.0, 20.0], 1e-6);
    }

    #[test]
    #[should_panic(expected = "window must be odd")]
    fn even_window_panics() {
        let mut rng = TensorRng::seed(4);
        let mut store = ParamStore::new();
        let _ = Conv1d::new(&mut store, "c", 2, 2, 2, &mut rng);
    }

    #[test]
    fn pcnn_segments_cover_and_are_nonempty() {
        for t in 2..20 {
            for h in 0..t {
                for ta in 0..t {
                    let segs = pcnn_segments(t, h, ta);
                    assert_eq!(segs.len(), 3);
                    assert_eq!(segs[0].0, 0);
                    assert_eq!(segs[2].1, t);
                    let mut covered = vec![false; t];
                    for &(lo, hi) in &segs {
                        assert!(lo < hi, "empty segment {lo}..{hi} for t={t} h={h} ta={ta}");
                        assert!(hi <= t, "segment {lo}..{hi} exceeds length {t}");
                        for slot in covered[lo..hi].iter_mut() {
                            *slot = true;
                        }
                    }
                    assert!(
                        covered.iter().all(|&c| c),
                        "segments do not cover 0..{t} for h={h} ta={ta}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_pool_variants_shapes() {
        let mut rng = TensorRng::seed(5);
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::rand_uniform(&[9, 4], -1.0, 1.0, &mut rng));
        let g = max_pool_tanh(&mut tape, x);
        assert_eq!(tape.value(g).shape(), &[4]);
        let mut tape2 = Tape::new(&store);
        let x2 = tape2.leaf(Tensor::rand_uniform(&[9, 4], -1.0, 1.0, &mut rng));
        let p = piecewise_max_pool_tanh(&mut tape2, x2, 2, 6);
        assert_eq!(tape2.value(p).shape(), &[12]);
    }

    #[test]
    fn conv_gradients_flow() {
        let mut rng = TensorRng::seed(6);
        let mut store = ParamStore::new();
        let conv = Conv1d::new(&mut store, "c", 3, 4, 3, &mut rng);
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::rand_uniform(&[6, 3], -1.0, 1.0, &mut rng));
        let c = conv.forward(&mut tape, x);
        let pooled = piecewise_max_pool_tanh(&mut tape, c, 1, 4);
        let loss = tape.softmax_cross_entropy(pooled, 0);
        tape.backward(loss, &mut grads);
        assert!(grads.get(conv.w).norm_l2() > 0.0);
        assert!(grads.get(conv.b).norm_l2() > 0.0);
    }
}
