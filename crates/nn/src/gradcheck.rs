//! Finite-difference gradient checking.
//!
//! Used by this crate's own tests (and available to downstream crates' tests)
//! to verify that every autograd rule matches a central-difference estimate.

use crate::param::{GradStore, ParamId, ParamStore};

/// Result of a gradient check on one parameter.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference (|a−n| / max(1, |a|, |n|)).
    pub max_rel_diff: f32,
}

/// Compares the analytic gradient of `loss_fn` w.r.t. parameter `id` against
/// central finite differences with step `h`.
///
/// `loss_fn` must be a pure function of the parameter store: it is called
/// repeatedly with perturbed copies. The analytic gradient is read from a
/// fresh backward pass executed by `grad_fn`.
pub fn check_param_gradient(
    params: &mut ParamStore,
    id: ParamId,
    h: f32,
    loss_fn: &dyn Fn(&ParamStore) -> f32,
    grad_fn: &dyn Fn(&ParamStore, &mut GradStore),
) -> GradCheckReport {
    // analytic
    let mut grads = GradStore::zeros_like(params);
    grad_fn(params, &mut grads);
    let analytic = grads.get(id).clone();

    // numeric (central differences)
    let n = params.get(id).len();
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..n {
        let orig = params.get(id).data()[i];
        params.get_mut(id).data_mut()[i] = orig + h;
        let up = loss_fn(params);
        params.get_mut(id).data_mut()[i] = orig - h;
        let down = loss_fn(params);
        params.get_mut(id).data_mut()[i] = orig;
        let numeric = (up - down) / (2.0 * h);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{piecewise_max_pool_tanh, Conv1d};
    use crate::gru::GruCell;
    use crate::linear::Linear;
    use crate::tape::Tape;
    use imre_tensor::{Tensor, TensorRng};

    /// Tolerance for f32 central differences through deep composite graphs.
    const TOL: f32 = 2e-2;

    fn check_all_params(
        params: &mut ParamStore,
        loss_fn: &dyn Fn(&ParamStore) -> f32,
        grad_fn: &dyn Fn(&ParamStore, &mut GradStore),
    ) {
        for i in 0..params.len() {
            let id = ParamId(i);
            let name = params.name(id).to_string();
            let report = check_param_gradient(params, id, 1e-2, loss_fn, grad_fn);
            assert!(
                report.max_rel_diff < TOL,
                "gradient mismatch on {name}: rel {} abs {}",
                report.max_rel_diff,
                report.max_abs_diff
            );
        }
    }

    #[test]
    fn linear_softmax_ce_gradcheck() {
        let mut rng = TensorRng::seed(10);
        let mut params = ParamStore::new();
        let layer = Linear::new(&mut params, "fc", 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[4], -1.0, 1.0, &mut rng);
        let (w, b) = (layer.w, layer.b);
        let x2 = x.clone();
        let loss = move |store: &ParamStore| {
            let mut tape = Tape::new(store);
            let xv = tape.leaf(x2.reshape(&[1, 4]));
            let wv = tape.param(w);
            let bv = tape.param(b);
            let h = tape.matmul(xv, wv);
            let h = tape.add_row_broadcast(h, bv);
            let h = tape.reshape(h, &[3]);
            let l = tape.softmax_cross_entropy(h, 1);
            tape.value(l).data()[0]
        };
        let x3 = x.clone();
        let grad = move |store: &ParamStore, grads: &mut GradStore| {
            let mut tape = Tape::new(store);
            let xv = tape.leaf(x3.reshape(&[1, 4]));
            let wv = tape.param(w);
            let bv = tape.param(b);
            let h = tape.matmul(xv, wv);
            let h = tape.add_row_broadcast(h, bv);
            let h = tape.reshape(h, &[3]);
            let l = tape.softmax_cross_entropy(h, 1);
            tape.backward(l, grads);
        };
        check_all_params(&mut params, &loss, &grad);
    }

    #[test]
    fn conv_pcnn_gradcheck() {
        let mut rng = TensorRng::seed(11);
        let mut params = ParamStore::new();
        let conv = Conv1d::new(&mut params, "c", 3, 2, 3, &mut rng);
        let x = Tensor::rand_uniform(&[6, 3], -1.0, 1.0, &mut rng);
        let (w, b) = (conv.w, conv.b);

        fn forward<'a>(
            store: &'a ParamStore,
            x: &Tensor,
            w: ParamId,
            b: ParamId,
        ) -> (Tape<'a>, crate::tape::Var) {
            let mut tape = Tape::new(store);
            let xv = tape.leaf(x.clone());
            let u = tape.unfold(xv, 3);
            let wv = tape.param(w);
            let bv = tape.param(b);
            let c = tape.matmul(u, wv);
            let c = tape.add_row_broadcast(c, bv);
            let pooled = piecewise_max_pool_tanh(&mut tape, c, 1, 4);
            let l = tape.softmax_cross_entropy(pooled, 2);
            (tape, l)
        }
        let x1 = x.clone();
        let loss = move |store: &ParamStore| {
            let (tape, l) = forward(store, &x1, w, b);
            tape.value(l).data()[0]
        };
        let x2 = x.clone();
        let grad = move |store: &ParamStore, grads: &mut GradStore| {
            let (tape, l) = forward(store, &x2, w, b);
            tape.backward(l, grads);
        };
        check_all_params(&mut params, &loss, &grad);
    }

    #[test]
    fn gru_gradcheck() {
        let mut rng = TensorRng::seed(12);
        let mut params = ParamStore::new();
        let cell = GruCell::new(&mut params, "g", 2, 3, &mut rng);
        let x = Tensor::rand_uniform(&[4, 2], -1.0, 1.0, &mut rng);

        let cell_loss = {
            let x = x.clone();
            let cell = &cell;
            move |store: &ParamStore| {
                let mut tape = Tape::new(store);
                let xs = tape.leaf(x.clone());
                let hs = cell.run(&mut tape, xs);
                let pooled = tape.piecewise_max(hs, &[(0, 4)]);
                let l = tape.softmax_cross_entropy(pooled, 0);
                tape.value(l).data()[0]
            }
        };
        let cell_grad = {
            let x = x.clone();
            let cell = &cell;
            move |store: &ParamStore, grads: &mut GradStore| {
                let mut tape = Tape::new(store);
                let xs = tape.leaf(x.clone());
                let hs = cell.run(&mut tape, xs);
                let pooled = tape.piecewise_max(hs, &[(0, 4)]);
                let l = tape.softmax_cross_entropy(pooled, 0);
                tape.backward(l, grads);
            }
        };
        check_all_params(&mut params, &cell_loss, &cell_grad);
    }

    #[test]
    fn embedding_gather_gradcheck() {
        let mut rng = TensorRng::seed(13);
        let mut params = ParamStore::new();
        let emb = params.uniform("emb", &[6, 3], 0.5, &mut rng);
        let idx = vec![0usize, 2, 2, 5];

        let loss = {
            let idx = idx.clone();
            move |store: &ParamStore| {
                let mut tape = Tape::new(store);
                let rows = tape.gather(emb, &idx);
                let pooled = tape.mean_rows(rows);
                let t = tape.tanh(pooled);
                let l = tape.softmax_cross_entropy(t, 1);
                tape.value(l).data()[0]
            }
        };
        let grad = {
            let idx = idx.clone();
            move |store: &ParamStore, grads: &mut GradStore| {
                let mut tape = Tape::new(store);
                let rows = tape.gather(emb, &idx);
                let pooled = tape.mean_rows(rows);
                let t = tape.tanh(pooled);
                let l = tape.softmax_cross_entropy(t, 1);
                tape.backward(l, grads);
            }
        };
        let report = check_param_gradient(&mut params, emb, 1e-2, &loss, &grad);
        assert!(
            report.max_rel_diff < TOL,
            "emb gradcheck rel {}",
            report.max_rel_diff
        );
    }

    #[test]
    fn attention_primitives_gradcheck() {
        // weighted_sum_rows + matvec + softmax composite (the selective
        // attention datapath) against finite differences.
        let mut rng = TensorRng::seed(14);
        let mut params = ParamStore::new();
        let mat = params.uniform("mat", &[4, 3], 1.0, &mut rng);
        let query = params.uniform("query", &[3], 1.0, &mut rng);

        fn forward<'a>(
            store: &'a ParamStore,
            mat: ParamId,
            query: ParamId,
        ) -> (Tape<'a>, crate::tape::Var) {
            let mut tape = Tape::new(store);
            let m = tape.param(mat);
            let q = tape.param(query);
            let scores = tape.matvec(m, q);
            let alpha = tape.softmax(scores);
            let agg = tape.weighted_sum_rows(m, alpha);
            let l = tape.softmax_cross_entropy(agg, 2);
            (tape, l)
        }
        let loss = move |store: &ParamStore| {
            let (tape, l) = forward(store, mat, query);
            tape.value(l).data()[0]
        };
        let grad = move |store: &ParamStore, grads: &mut GradStore| {
            let (tape, l) = forward(store, mat, query);
            tape.backward(l, grads);
        };
        check_all_params(&mut params, &loss, &grad);
    }
}
