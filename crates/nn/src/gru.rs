//! Gated recurrent unit (GRU) cell and uni/bidirectional sequence encoders.
//!
//! The paper's RNN-based baselines (GRU+ATT, BGWA) encode each sentence with
//! a (bidirectional) GRU. Gates use separate weight matrices per gate, which
//! keeps the tape free of slicing ops:
//!
//! ```text
//! r_t = σ(x_t·W_r + h_{t−1}·U_r + b_r)
//! z_t = σ(x_t·W_z + h_{t−1}·U_z + b_z)
//! n_t = tanh(x_t·W_n + (r_t ⊙ h_{t−1})·U_n + b_n)
//! h_t = (1 − z_t) ⊙ h_{t−1} + z_t ⊙ n_t
//! ```

use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use imre_tensor::TensorRng;

/// One GRU cell's parameters.
pub struct GruCell {
    w_r: ParamId,
    u_r: ParamId,
    b_r: ParamId,
    w_z: ParamId,
    u_z: ParamId,
    b_z: ParamId,
    w_n: ParamId,
    u_n: ParamId,
    b_n: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl GruCell {
    /// Registers a GRU cell's nine parameter tensors under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let mat =
            |store: &mut ParamStore, suffix: &str, fi: usize, fo: usize, rng: &mut TensorRng| {
                store.xavier(&format!("{name}.{suffix}"), fi, fo, rng)
            };
        GruCell {
            w_r: mat(store, "w_r", in_dim, hidden, rng),
            u_r: mat(store, "u_r", hidden, hidden, rng),
            b_r: store.zeros(&format!("{name}.b_r"), &[hidden]),
            w_z: mat(store, "w_z", in_dim, hidden, rng),
            u_z: mat(store, "u_z", hidden, hidden, rng),
            b_z: store.zeros(&format!("{name}.b_z"), &[hidden]),
            w_n: mat(store, "w_n", in_dim, hidden, rng),
            u_n: mat(store, "u_n", hidden, hidden, rng),
            b_n: store.zeros(&format!("{name}.b_n"), &[hidden]),
            in_dim,
            hidden,
        }
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Records the cell's parameters on the tape once; [`GruCell::step`]
    /// reuses them across every timestep (recording them per step would
    /// copy all nine matrices T times).
    pub fn vars(&self, tape: &mut Tape) -> GruVars {
        GruVars {
            w_r: tape.param(self.w_r),
            u_r: tape.param(self.u_r),
            b_r: tape.param(self.b_r),
            w_z: tape.param(self.w_z),
            u_z: tape.param(self.u_z),
            b_z: tape.param(self.b_z),
            w_n: tape.param(self.w_n),
            u_n: tape.param(self.u_n),
            b_n: tape.param(self.b_n),
        }
    }

    /// One step: `x_t` is rank-1 `[in_dim]`, `h_prev` rank-1 `[hidden]`.
    /// Returns the new hidden state, rank-1 `[hidden]`.
    pub fn step(&self, tape: &mut Tape, vars: &GruVars, x_t: Var, h_prev: Var) -> Var {
        let x2 = tape.reshape(x_t, &[1, self.in_dim]);
        let h2 = tape.reshape(h_prev, &[1, self.hidden]);

        let gate = |tape: &mut Tape, w: Var, u: Var, b: Var, h_in: Var| {
            let xw = tape.matmul(x2, w);
            let hu = tape.matmul(h_in, u);
            let s = tape.add(xw, hu);
            tape.add_row_broadcast(s, b)
        };

        let r_pre = gate(tape, vars.w_r, vars.u_r, vars.b_r, h2);
        let r = tape.sigmoid(r_pre);
        let z_pre = gate(tape, vars.w_z, vars.u_z, vars.b_z, h2);
        let z = tape.sigmoid(z_pre);

        let rh = tape.mul(r, h2);
        let n_pre = gate(tape, vars.w_n, vars.u_n, vars.b_n, rh);
        let n = tape.tanh(n_pre);

        // h = (1 − z) ⊙ h_prev + z ⊙ n  ==  h_prev + z ⊙ (n − h_prev)
        let n_minus_h = tape.sub(n, h2);
        let delta = tape.mul(z, n_minus_h);
        let h_new = tape.add(h2, delta);
        tape.reshape(h_new, &[self.hidden])
    }

    /// Runs the cell over a `[T, in_dim]` sequence from a zero initial state,
    /// returning all hidden states stacked as `[T, hidden]`.
    pub fn run(&self, tape: &mut Tape, xs: Var) -> Var {
        let t = tape.value(xs).rows();
        let vars = self.vars(tape);
        let mut h = tape.zeros_leaf(&[self.hidden]);
        let mut hs = Vec::with_capacity(t);
        for step in 0..t {
            let x_t = row_of(tape, xs, step);
            h = self.step(tape, &vars, x_t, h);
            hs.push(h);
        }
        tape.stack_rows(&hs)
    }

    /// Runs the cell right-to-left, returning states stacked in the
    /// *original* (left-to-right) order.
    pub fn run_reverse(&self, tape: &mut Tape, xs: Var) -> Var {
        let t = tape.value(xs).rows();
        let vars = self.vars(tape);
        let mut h = tape.zeros_leaf(&[self.hidden]);
        let mut hs = vec![None; t];
        for step in (0..t).rev() {
            let x_t = row_of(tape, xs, step);
            h = self.step(tape, &vars, x_t, h);
            hs[step] = Some(h);
        }
        let ordered: Vec<Var> = hs
            .into_iter()
            .map(|o| o.expect("all steps filled"))
            .collect();
        tape.stack_rows(&ordered)
    }
}

/// The nine parameter vars of a [`GruCell`], recorded once per tape.
pub struct GruVars {
    w_r: Var,
    u_r: Var,
    b_r: Var,
    w_z: Var,
    u_z: Var,
    b_z: Var,
    w_n: Var,
    u_n: Var,
    b_n: Var,
}

/// Extracts row `r` of a rank-2 var as a rank-1 var.
fn row_of(tape: &mut Tape, mat: Var, r: usize) -> Var {
    tape.slice_row(mat, r)
}

/// A bidirectional GRU: concatenates forward and backward states per token,
/// `[T, in_dim] → [T, 2·hidden]`.
pub struct BiGru {
    fwd: GruCell,
    bwd: GruCell,
}

impl BiGru {
    /// Registers both directions under `name`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut TensorRng,
    ) -> Self {
        BiGru {
            fwd: GruCell::new(store, &format!("{name}.fwd"), in_dim, hidden, rng),
            bwd: GruCell::new(store, &format!("{name}.bwd"), in_dim, hidden, rng),
        }
    }

    /// Per-token output width (`2 · hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// Encodes a `[T, in_dim]` sequence to `[T, 2·hidden]`.
    pub fn forward(&self, tape: &mut Tape, xs: Var) -> Var {
        let f = self.fwd.run(tape, xs);
        let b = self.bwd.run_reverse(tape, xs);
        tape.concat_cols(&[f, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::GradStore;
    use imre_tensor::{assert_close, Tensor};

    #[test]
    fn step_output_bounded() {
        // h is a convex combination of h_prev (=0) and tanh output ⇒ |h| < 1.
        let mut rng = TensorRng::seed(1);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 4, 3, &mut rng);
        let mut tape = Tape::new(&store);
        let x = tape.leaf(Tensor::rand_uniform(&[4], -2.0, 2.0, &mut rng));
        let h0 = tape.leaf(Tensor::zeros(&[3]));
        let vars = cell.vars(&mut tape);
        let h1 = cell.step(&mut tape, &vars, x, h0);
        assert_eq!(tape.value(h1).shape(), &[3]);
        assert!(tape.value(h1).data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn run_shapes_and_state_evolution() {
        let mut rng = TensorRng::seed(2);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 5, &mut rng);
        let mut tape = Tape::new(&store);
        let xs = tape.leaf(Tensor::rand_uniform(&[6, 3], -1.0, 1.0, &mut rng));
        let hs = cell.run(&mut tape, xs);
        assert_eq!(tape.value(hs).shape(), &[6, 5]);
        // consecutive states differ (the cell is actually recurring)
        let h0 = tape.value(hs).row(0).to_vec();
        let h5 = tape.value(hs).row(5).to_vec();
        assert!(h0.iter().zip(&h5).any(|(a, b)| (a - b).abs() > 1e-6));
    }

    #[test]
    fn reverse_run_mirrors_forward_on_reversed_input() {
        let mut rng = TensorRng::seed(3);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 2, 3, &mut rng);
        let seq = Tensor::rand_uniform(&[4, 2], -1.0, 1.0, &mut rng);
        let mut rev_rows: Vec<Vec<f32>> = (0..4).map(|r| seq.row(3 - r).to_vec()).collect();

        let mut tape = Tape::new(&store);
        let xs = tape.leaf(seq.clone());
        let back = cell.run_reverse(&mut tape, xs);

        let mut tape2 = Tape::new(&store);
        let xs_rev = tape2.leaf(Tensor::from_rows(&std::mem::take(&mut rev_rows)));
        let fwd = cell.run(&mut tape2, xs_rev);

        // run_reverse output at position t equals forward-on-reversed at 3−t
        for t in 0..4 {
            assert_close(tape.value(back).row(t), tape2.value(fwd).row(3 - t), 1e-5);
        }
    }

    #[test]
    fn bigru_output_width() {
        let mut rng = TensorRng::seed(4);
        let mut store = ParamStore::new();
        let bi = BiGru::new(&mut store, "bi", 3, 4, &mut rng);
        let mut tape = Tape::new(&store);
        let xs = tape.leaf(Tensor::rand_uniform(&[5, 3], -1.0, 1.0, &mut rng));
        let hs = bi.forward(&mut tape, xs);
        assert_eq!(tape.value(hs).shape(), &[5, 8]);
        assert_eq!(bi.out_dim(), 8);
    }

    #[test]
    fn gradients_reach_all_gates() {
        let mut rng = TensorRng::seed(5);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 4, &mut rng);
        let mut grads = GradStore::zeros_like(&store);
        let mut tape = Tape::new(&store);
        let xs = tape.leaf(Tensor::rand_uniform(&[5, 3], -1.0, 1.0, &mut rng));
        let hs = cell.run(&mut tape, xs);
        let pooled = tape.piecewise_max(hs, &[(0, 5)]);
        let loss = tape.softmax_cross_entropy(pooled, 1);
        tape.backward(loss, &mut grads);
        for (id, name, _) in store.iter() {
            assert!(grads.get(id).norm_l2() > 0.0, "no gradient reached {name}");
        }
    }
}
