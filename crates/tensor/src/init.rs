//! Random initialisation. Every stochastic component in the workspace is
//! seeded through [`TensorRng`] so that experiments are reproducible.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable random source for tensor initialisation and sampling.
///
/// Thin wrapper over [`rand::rngs::StdRng`] so the rest of the workspace
/// never has to name a concrete RNG type; all randomness flows through here.
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a deterministic RNG from a seed.
    pub fn seed(seed: u64) -> Self {
        TensorRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// If `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TensorRng::below: empty range");
        self.rng.gen_range(0..n)
    }

    /// Standard normal sample (Box–Muller; no extra dependency needed).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller transform from two uniforms in (0, 1].
        let u1: f32 = 1.0 - self.rng.gen::<f32>();
        let u2: f32 = self.rng.gen::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.rng.gen::<f32>() < p
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        self.rng.gen()
    }

    /// Uniform `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Derives an independent RNG stream (for per-worker seeding).
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed(self.u64())
    }
}

impl Tensor {
    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut TensorRng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Tensor with i.i.d. normal entries, mean 0 and the given std-dev.
    pub fn rand_normal(shape: &[usize], std: f32, rng: &mut TensorRng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Tensor::from_vec(data, shape)
    }

    /// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight.
    ///
    /// Entries are uniform in `±sqrt(6 / (fan_in + fan_out))` — the standard
    /// initialisation the paper's stack (and most CNN/RNN RE models) uses.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(&[fan_in, fan_out], -bound, bound, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = TensorRng::seed(7);
        let mut b = TensorRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed(1);
        let mut b = TensorRng::seed(2);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = TensorRng::seed(3);
        let t = Tensor::rand_uniform(&[100], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = TensorRng::seed(11);
        let t = Tensor::rand_normal(&[20_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound() {
        let mut rng = TensorRng::seed(5);
        let w = Tensor::xavier(30, 50, &mut rng);
        let bound = (6.0f32 / 80.0).sqrt();
        assert_eq!(w.shape(), &[30, 50]);
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
        // not degenerate
        assert!(w.data().iter().any(|&x| x.abs() > bound * 0.5));
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = TensorRng::seed(13);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed(17);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left slice in order (astronomically unlikely)");
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut parent1 = TensorRng::seed(42);
        let mut parent2 = TensorRng::seed(42);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..10 {
            assert_eq!(c1.u64(), c2.u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut rng = TensorRng::seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
