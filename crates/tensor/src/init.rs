//! Random initialisation. Every stochastic component in the workspace is
//! seeded through [`TensorRng`] so that experiments are reproducible.

use crate::Tensor;

/// A seedable random source for tensor initialisation and sampling.
///
/// Self-contained xoshiro256** generator (Blackman & Vigna) seeded through
/// SplitMix64, so the workspace carries no external RNG dependency and every
/// stochastic component draws from one reproducible stream.
pub struct TensorRng {
    state: [u64; 4],
}

impl TensorRng {
    /// Creates a deterministic RNG from a seed.
    pub fn seed(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into four non-zero words.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TensorRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.f32() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// If `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TensorRng::below: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample (Box–Muller; no extra dependency needed).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller transform from two uniforms in (0, 1].
        let u1: f32 = 1.0 - self.f32();
        let u2: f32 = self.f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.f32() < p
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        // 24 high-quality bits → the full f32 mantissa range in [0, 1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent RNG stream (for per-worker seeding).
    pub fn fork(&mut self) -> TensorRng {
        TensorRng::seed(self.u64())
    }
}

impl Tensor {
    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut TensorRng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Tensor with i.i.d. normal entries, mean 0 and the given std-dev.
    pub fn rand_normal(shape: &[usize], std: f32, rng: &mut TensorRng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Tensor::from_vec(data, shape)
    }

    /// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight.
    ///
    /// Entries are uniform in `±sqrt(6 / (fan_in + fan_out))` — the standard
    /// initialisation the paper's stack (and most CNN/RNN RE models) uses.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(&[fan_in, fan_out], -bound, bound, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = TensorRng::seed(7);
        let mut b = TensorRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed(1);
        let mut b = TensorRng::seed(2);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = TensorRng::seed(3);
        let t = Tensor::rand_uniform(&[100], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = TensorRng::seed(11);
        let t = Tensor::rand_normal(&[20_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound() {
        let mut rng = TensorRng::seed(5);
        let w = Tensor::xavier(30, 50, &mut rng);
        let bound = (6.0f32 / 80.0).sqrt();
        assert_eq!(w.shape(), &[30, 50]);
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
        // not degenerate
        assert!(w.data().iter().any(|&x| x.abs() > bound * 0.5));
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = TensorRng::seed(13);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed(17);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut parent1 = TensorRng::seed(42);
        let mut parent2 = TensorRng::seed(42);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..10 {
            assert_eq!(c1.u64(), c2.u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut rng = TensorRng::seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
