//! Elementwise and broadcast arithmetic on [`Tensor`].
//!
//! Elementwise ops are chunk-parallel on the [`crate::pool`] backend: the
//! flat buffer is split into fixed [`ELEM_GRAIN`]-sized ranges (shape-derived,
//! thread-count independent) and each element is written by exactly one task,
//! so results are bit-identical to a sequential run. The binary ops, `scale`,
//! `add_assign`, `axpy`, and the row broadcasts dispatch through
//! [`crate::simd`] (per-lane IEEE ops — backend choice never changes bits);
//! generic `map` closures and the reductions (`dot`, `norm_l2`) stay scalar
//! to keep their accumulation order fixed.

use crate::pool;
use crate::simd;
use crate::simd::EwOp;
use crate::Tensor;

/// Elements per parallel task for elementwise kernels. These kernels are
/// memory-bound (≲ 1 ns/element), so a chunk must be large for its compute
/// to dwarf the ~650 ns dispatch cost; small tensors (the common case in
/// this workspace) stay on the inline single-chunk path.
const ELEM_GRAIN: usize = 128 * 1024;

impl Tensor {
    // ------------------------------------------------------------------
    // Elementwise binary ops (shapes must match exactly)
    // ------------------------------------------------------------------

    fn zip_with(&self, other: &Tensor, op_name: &str, op: EwOp) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::{op_name}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let (a, b) = (self.data(), other.data());
        let be = simd::backend();
        simd::note(be);
        let mut out = Tensor::zeros(self.shape());
        pool::for_rows(out.data_mut(), a.len(), 1, ELEM_GRAIN, |lo, hi, shard| {
            simd::ew(be, op, &a[lo..hi], &b[lo..hi], shard);
        });
        out
    }

    /// Destination-passing core of the elementwise binary ops: fully
    /// overwrites `out`, which must already have `self`'s shape (the pool
    /// hands out pre-shaped buffers). Identical op order to [`zip_with`],
    /// so results are bit-identical to the allocating path.
    fn zip_with_into(&self, other: &Tensor, op_name: &str, out: &mut Tensor, op: EwOp) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::{op_name}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            self.shape(),
            "Tensor::{op_name}: destination shape {:?} for operands {:?}",
            out.shape(),
            self.shape()
        );
        let (a, b) = (self.data(), other.data());
        let be = simd::backend();
        simd::note(be);
        pool::for_rows(out.data_mut(), a.len(), 1, ELEM_GRAIN, |lo, hi, shard| {
            simd::ew(be, op, &a[lo..hi], &b[lo..hi], shard);
        });
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "add", EwOp::Add)
    }

    /// Elementwise sum written into `out` (pre-shaped, fully overwritten).
    pub fn add_into(&self, other: &Tensor, out: &mut Tensor) {
        self.zip_with_into(other, "add_into", out, EwOp::Add)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "sub", EwOp::Sub)
    }

    /// Elementwise difference written into `out`.
    pub fn sub_into(&self, other: &Tensor, out: &mut Tensor) {
        self.zip_with_into(other, "sub_into", out, EwOp::Sub)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "mul", EwOp::Mul)
    }

    /// Elementwise product written into `out`.
    pub fn mul_into(&self, other: &Tensor, out: &mut Tensor) {
        self.zip_with_into(other, "mul_into", out, EwOp::Mul)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "div", EwOp::Div)
    }

    /// Elementwise quotient written into `out`.
    pub fn div_into(&self, other: &Tensor, out: &mut Tensor) {
        self.zip_with_into(other, "div_into", out, EwOp::Div)
    }

    /// In-place elementwise accumulate: `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::add_assign: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let b = other.data();
        let n = b.len();
        let be = simd::backend();
        simd::note(be);
        pool::for_rows(self.data_mut(), n, 1, ELEM_GRAIN, |lo, hi, shard| {
            simd::add_assign(be, shard, &b[lo..hi]);
        });
    }

    /// In-place `self += alpha * other` (axpy). The multiply and add stay
    /// unfused on every backend, preserving the bits of the scalar loop.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "Tensor::axpy: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let b = other.data();
        let n = b.len();
        let be = simd::backend();
        simd::note(be);
        pool::for_rows(self.data_mut(), n, 1, ELEM_GRAIN, |lo, hi, shard| {
            simd::axpy(be, shard, alpha, &b[lo..hi]);
        });
    }

    // ------------------------------------------------------------------
    // Scalar ops
    // ------------------------------------------------------------------

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let a = self.data();
        let be = simd::backend();
        simd::note(be);
        let mut out = Tensor::zeros(self.shape());
        pool::for_rows(out.data_mut(), a.len(), 1, ELEM_GRAIN, |lo, hi, shard| {
            simd::scale(be, &a[lo..hi], s, shard);
        });
        out
    }

    /// Scaled copy written into `out` (pre-shaped, fully overwritten).
    pub fn scale_into(&self, s: f32, out: &mut Tensor) {
        assert_eq!(
            out.shape(),
            self.shape(),
            "Tensor::scale_into: destination shape {:?} for source {:?}",
            out.shape(),
            self.shape()
        );
        let a = self.data();
        let be = simd::backend();
        simd::note(be);
        pool::for_rows(out.data_mut(), a.len(), 1, ELEM_GRAIN, |lo, hi, shard| {
            simd::scale(be, &a[lo..hi], s, shard);
        });
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let a = self.data();
        let mut out = Tensor::zeros(self.shape());
        pool::for_rows(out.data_mut(), a.len(), 1, ELEM_GRAIN, |lo, hi, shard| {
            for (s, &x) in shard.iter_mut().zip(&a[lo..hi]) {
                *s = f(x);
            }
        });
        out
    }

    /// Applies `f` to every element, writing into `out` (pre-shaped, fully
    /// overwritten). Same partition and op order as [`Tensor::map`].
    pub fn map_into(&self, out: &mut Tensor, f: impl Fn(f32) -> f32 + Sync) {
        assert_eq!(
            out.shape(),
            self.shape(),
            "Tensor::map_into: destination shape {:?} for source {:?}",
            out.shape(),
            self.shape()
        );
        let a = self.data();
        pool::for_rows(out.data_mut(), a.len(), 1, ELEM_GRAIN, |lo, hi, shard| {
            for (s, &x) in shard.iter_mut().zip(&a[lo..hi]) {
                *s = f(x);
            }
        });
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let n = self.len();
        pool::for_rows(self.data_mut(), n, 1, ELEM_GRAIN, |_, _, shard| {
            for x in shard {
                *x = f(*x);
            }
        });
    }

    /// Sets every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data_mut().fill(0.0);
    }

    // ------------------------------------------------------------------
    // Broadcast ops
    // ------------------------------------------------------------------

    /// Adds a rank-1 `bias` of length `cols` to every row of a rank-2 tensor.
    ///
    /// # Panics
    /// If `self` is not rank-2 or `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let cols = self.cols();
        assert_eq!(
            bias.len(),
            cols,
            "Tensor::add_row_broadcast: bias of len {} for {} columns",
            bias.len(),
            cols
        );
        let rows = self.rows();
        let a = self.data();
        let b = bias.data();
        let be = simd::backend();
        simd::note(be);
        let mut out = Tensor::zeros(self.shape());
        let grain = (ELEM_GRAIN / cols.max(1)).max(1);
        pool::for_rows(out.data_mut(), rows, cols, grain, |lo, _, shard| {
            for (ri, row) in shard.chunks_mut(cols).enumerate() {
                let src = &a[(lo + ri) * cols..(lo + ri + 1) * cols];
                simd::ew(be, EwOp::Add, src, b, row);
            }
        });
        out
    }

    /// Row-broadcast bias addition written into `out` (pre-shaped, fully
    /// overwritten). Computes `out[r][c] = self[r][c] + bias[c]` in one pass;
    /// the single `+` per element is the same float op the allocating
    /// clone-then-accumulate path performs, so results are bit-identical.
    pub fn add_row_broadcast_into(&self, bias: &Tensor, out: &mut Tensor) {
        let (rows, cols) = (self.rows(), self.cols());
        assert_eq!(
            bias.len(),
            cols,
            "Tensor::add_row_broadcast_into: bias of len {} for {} columns",
            bias.len(),
            cols
        );
        assert_eq!(
            out.shape(),
            self.shape(),
            "Tensor::add_row_broadcast_into: destination shape {:?} for source {:?}",
            out.shape(),
            self.shape()
        );
        let a = self.data();
        let b = bias.data();
        let be = simd::backend();
        simd::note(be);
        let grain = (ELEM_GRAIN / cols.max(1)).max(1);
        pool::for_rows(out.data_mut(), rows, cols, grain, |lo, _, shard| {
            for (ri, row) in shard.chunks_mut(cols).enumerate() {
                let src = &a[(lo + ri) * cols..(lo + ri + 1) * cols];
                simd::ew(be, EwOp::Add, src, b, row);
            }
        });
    }

    /// Multiplies each row elementwise by a rank-1 `scale` of length `cols`.
    ///
    /// # Panics
    /// If `self` is not rank-2 or `scale.len() != self.cols()`.
    pub fn mul_row_broadcast(&self, scale: &Tensor) -> Tensor {
        let cols = self.cols();
        assert_eq!(
            scale.len(),
            cols,
            "Tensor::mul_row_broadcast: scale of len {} for {} columns",
            scale.len(),
            cols
        );
        let rows = self.rows();
        let a = self.data();
        let s = scale.data();
        let be = simd::backend();
        simd::note(be);
        let mut out = Tensor::zeros(self.shape());
        let grain = (ELEM_GRAIN / cols.max(1)).max(1);
        pool::for_rows(out.data_mut(), rows, cols, grain, |lo, _, shard| {
            for (ri, row) in shard.chunks_mut(cols).enumerate() {
                let src = &a[(lo + ri) * cols..(lo + ri + 1) * cols];
                simd::ew(be, EwOp::Mul, src, s, row);
            }
        });
        out
    }

    /// Row-broadcast scaling written into `out` (pre-shaped, fully
    /// overwritten); see [`Tensor::add_row_broadcast_into`] for the
    /// bit-identity argument.
    pub fn mul_row_broadcast_into(&self, scale: &Tensor, out: &mut Tensor) {
        let (rows, cols) = (self.rows(), self.cols());
        assert_eq!(
            scale.len(),
            cols,
            "Tensor::mul_row_broadcast_into: scale of len {} for {} columns",
            scale.len(),
            cols
        );
        assert_eq!(
            out.shape(),
            self.shape(),
            "Tensor::mul_row_broadcast_into: destination shape {:?} for source {:?}",
            out.shape(),
            self.shape()
        );
        let a = self.data();
        let s = scale.data();
        let be = simd::backend();
        simd::note(be);
        let grain = (ELEM_GRAIN / cols.max(1)).max(1);
        pool::for_rows(out.data_mut(), rows, cols, grain, |lo, _, shard| {
            for (ri, row) in shard.chunks_mut(cols).enumerate() {
                let src = &a[(lo + ri) * cols..(lo + ri + 1) * cols];
                simd::ew(be, EwOp::Mul, src, s, row);
            }
        });
    }

    // ------------------------------------------------------------------
    // Vector ops
    // ------------------------------------------------------------------

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Panics
    /// If element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.len(),
            other.len(),
            "Tensor::dot: length mismatch {} vs {}",
            self.len(),
            other.len()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm of the flat buffer.
    pub fn norm_l2(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Cosine similarity between two tensors viewed as flat vectors.
    ///
    /// Returns 0 when either vector has zero norm.
    pub fn cosine(&self, other: &Tensor) -> f32 {
        let d = self.dot(other);
        let n = self.norm_l2() * other.norm_l2();
        if n == 0.0 {
            0.0
        } else {
            d / n
        }
    }

    // ------------------------------------------------------------------
    // Activations (forward only; derivatives live in imre-nn's tape)
    // ------------------------------------------------------------------

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise tanh written into `out`.
    pub fn tanh_into(&self, out: &mut Tensor) {
        self.map_into(out, f32::tanh)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise sigmoid written into `out`.
    pub fn sigmoid_into(&self, out: &mut Tensor) {
        self.map_into(out, |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise ReLU written into `out`.
    pub fn relu_into(&self, out: &mut Tensor) {
        self.map_into(out, |x| x.max(0.0))
    }
}

/// Numerically stable logistic sigmoid for scalars, shared across the workspace.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()])
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = t(&[1.0]).add(&t(&[1.0, 2.0]));
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = t(&[1.0, 1.0]);
        a.add_assign(&t(&[2.0, 3.0]));
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.axpy(0.5, &t(&[2.0, 2.0]));
        assert_eq!(a.data(), &[4.0, 5.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut a = t(&[1.0, 2.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn row_broadcasts() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0]);
        assert_eq!(m.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.mul_row_broadcast(&b).data(), &[10.0, 40.0, 30.0, 80.0]);
    }

    #[test]
    #[should_panic(expected = "add_row_broadcast")]
    fn broadcast_bad_len_panics() {
        let m = Tensor::zeros(&[2, 2]);
        let _ = m.add_row_broadcast(&t(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn dot_norm_cosine() {
        let a = t(&[3.0, 4.0]);
        let b = t(&[4.0, 3.0]);
        assert_eq!(a.dot(&b), 24.0);
        assert_eq!(a.norm_l2(), 5.0);
        assert_close(&[a.cosine(&b)], &[24.0 / 25.0], 1e-6);
        assert_eq!(a.cosine(&t(&[0.0, 0.0])), 0.0);
    }

    #[test]
    fn activations() {
        let a = t(&[0.0, 1.0, -1.0]);
        assert_close(a.tanh().data(), &[0.0, 0.76159, -0.76159], 1e-4);
        assert_close(a.sigmoid().data(), &[0.5, 0.73106, 0.26894], 1e-4);
        assert_eq!(a.relu().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_scalar_stable_at_extremes() {
        assert!((sigmoid_scalar(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid_scalar(-100.0).abs() < 1e-6);
        assert!(sigmoid_scalar(100.0).is_finite());
        assert!(sigmoid_scalar(-100.0).is_finite());
        assert_close(
            &[sigmoid_scalar(0.3)],
            &[1.0 / (1.0 + (-0.3f32).exp())],
            1e-7,
        );
    }
}
